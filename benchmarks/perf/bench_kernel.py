"""Kernel throughput bench (pytest flavour, ``perf`` marker).

Tier-1 never collects this file (``bench_*`` naming + the ``perf``
marker); run it explicitly::

    PYTHONPATH=src python -m pytest benchmarks/perf/bench_kernel.py -v

It asserts the *shape* of the activity-driven kernel's claim on small
windows — idle-heavy workloads get a multiple, saturated workloads never
regress, both kernels agree on the outcome — while the tracked numbers
live in ``BENCH_kernel.json`` via ``scripts/run_perf_bench.py``.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT))

from scripts.run_perf_bench import (  # noqa: E402
    build_idle_heavy,
    build_saturated,
    run_workload,
)

pytestmark = pytest.mark.perf


def test_idle_heavy_speedup():
    reference = run_workload(build_idle_heavy, True, 6_000, 1)
    activity = run_workload(build_idle_heavy, False, 6_000, 1)
    assert activity["flits_forwarded"] == reference["flits_forwarded"]
    assert activity["completed_txns"] == reference["completed_txns"]
    # Acceptance floor is 3x vs the seed kernel; vs the in-repo reference
    # (which shares the router surgery) we still demand a clear multiple.
    assert activity["wall_s"] * 2.0 < reference["wall_s"]
    # Once drained, the quiescent SoC leaves the schedule entirely.
    assert activity["final_active_components"] == 0


def test_saturated_never_regresses():
    reference = run_workload(build_saturated, True, 1_500, 1)
    activity = run_workload(build_saturated, False, 1_500, 1)
    assert activity["flits_forwarded"] == reference["flits_forwarded"]
    assert activity["completed_txns"] == reference["completed_txns"]
    # Scheduler overhead must stay within noise of the reference sweep.
    assert activity["wall_s"] < reference["wall_s"] * 1.15


def test_bench_writer_schema(tmp_path):
    from scripts.run_perf_bench import main

    out = tmp_path / "BENCH_kernel.json"
    assert main(["--quick", "--out", str(out)]) == 0
    import json

    data = json.loads(out.read_text())
    # --quick runs land in their own section (PR 4) so short windows
    # never overwrite or get compared against full-window numbers.
    for workload in ("idle_heavy", "saturated"):
        entry = data["quick_workloads"][workload]
        assert entry["reference"]["cycles_per_s"] > 0
        assert entry["activity"]["cycles_per_s"] > 0
        assert entry["speedup"] > 0
        assert entry["activity"]["cycles_skipped"] >= 0
        assert entry["reference"]["cycles_skipped"] == 0  # strict never skips
