"""E2 — one packet format absorbs all three ordering models (claim C3).

The same fabric carries a fully-ordered AHB master, a threaded OCP master
and an ID-based AXI master; every run must finish with zero ordering
violations.  The second half sweeps the outstanding-transaction budget of
an AXI NIU (the paper's gates-vs-performance knob) and an ablation of the
tag-policy multi-target flag.
"""

import pytest

from benchmarks.conftest import build_noc, mixed_targets
from repro.core.ordering import OrderingModel
from repro.ip.masters import random_workload
from repro.niu.tag_policy import TagPolicy
from repro.soc import InitiatorSpec, TargetSpec

RANGES = [(0, 0x4000), (0x4000, 0x4000)]


def three_model_soc():
    inits = [
        InitiatorSpec("ahb", "AHB",
                      random_workload("ahb", RANGES, count=60, seed=1,
                                      rate=0.5)),
        InitiatorSpec("ocp", "OCP",
                      random_workload("ocp", RANGES, count=60, seed=2,
                                      threads=4, rate=0.5),
                      protocol_kwargs={"threads": 4}),
        InitiatorSpec("axi", "AXI",
                      random_workload("axi", RANGES, count=60, seed=3,
                                      tags=4, rate=0.5),
                      protocol_kwargs={"id_count": 4}),
    ]
    return build_noc(inits, mixed_targets())


def axi_soc(outstanding, multi_target=True):
    policy = TagPolicy(
        ordering=OrderingModel.ID_BASED,
        tag_bits=4,
        max_outstanding=outstanding,
        per_stream_outstanding=outstanding,
        multi_target=multi_target,
    )
    inits = [
        InitiatorSpec(
            "axi", "AXI",
            random_workload("axi", RANGES, count=150, seed=7, tags=4,
                            rate=1.0, burst_beats=(1, 4)),
            policy=policy,
            protocol_kwargs={"id_count": 4,
                             "max_outstanding_reads": outstanding,
                             "max_outstanding_writes": outstanding},
        )
    ]
    return build_noc(inits, mixed_targets())


def test_e2_three_ordering_models_one_fabric(benchmark, heading):
    heading("E2: AHB + OCP + AXI ordering models on one packet format")
    soc = three_model_soc()
    cycles = soc.run_to_completion(max_cycles=500_000)
    print(f"{'master':<8}{'model':<16}{'txns':>6}{'mean lat':>10}"
          f"{'violations':>12}")
    for name, master in soc.masters.items():
        lat = soc.master_latency(name)
        print(f"{name:<8}{master.ordering_model.value:<16}"
              f"{master.completed:>6}{lat['mean']:>10.1f}"
              f"{len(master.checker.violations):>12}")
    assert soc.ordering_violations() == 0
    assert soc.total_completed() == 180
    models = {m.ordering_model for m in soc.masters.values()}
    assert models == set(OrderingModel)
    benchmark.extra_info["cycles"] = cycles
    benchmark(lambda: three_model_soc().run_to_completion(max_cycles=500_000))


def test_e2_throughput_scales_with_outstanding(benchmark, heading):
    heading("E2b: AXI NIU outstanding-transaction budget sweep")
    print(f"{'outstanding':>12}{'cycles':>9}{'txns/kcycle':>13}")
    cycles_by_budget = {}
    for outstanding in (1, 2, 4, 8):
        soc = axi_soc(outstanding)
        cycles = soc.run_to_completion(max_cycles=500_000)
        cycles_by_budget[outstanding] = cycles
        print(f"{outstanding:>12}{cycles:>9}"
              f"{1000 * soc.total_completed() / cycles:>13.1f}")
        assert soc.ordering_violations() == 0
    # Deeper budgets finish the same work in fewer cycles.
    assert cycles_by_budget[8] < cycles_by_budget[1]
    benchmark(lambda: axi_soc(4).run_to_completion(max_cycles=500_000))


def test_e2_ablation_multi_target_policy(benchmark, heading):
    heading("E2c: ablation — multi-target streams vs stall-on-target-switch")
    results = {}
    for multi_target in (False, True):
        soc = axi_soc(8, multi_target=multi_target)
        cycles = soc.run_to_completion(max_cycles=500_000)
        results[multi_target] = cycles
        label = "multi-target (reorder)" if multi_target else "single-target"
        print(f"{label:<24}{cycles:>9} cycles")
        assert soc.ordering_violations() == 0
    # Allowing several targets in flight is never slower.
    assert results[True] <= results[False]
    benchmark(lambda: axi_soc(8, multi_target=False)
              .run_to_completion(max_cycles=500_000))
