"""E5 — layer independence: switching mode invisible above transport.

Paper §1: "wormhole or store-and-forward packet handling makes no
difference at the transaction level".  The same seeded workload runs
under all three switching modes; the transaction fingerprint (completion
counts, error counts, final memory images) must be identical while
transport metrics (cycles, flits, buffering) differ.
"""

import pytest

from benchmarks.conftest import build_noc, mixed_initiators, mixed_targets
from repro.transport.switching import SwitchingMode


def run(mode):
    soc = build_noc(mixed_initiators(count=30), mixed_targets(),
                    mode=mode, buffer_capacity=16)
    cycles = soc.run_to_completion(max_cycles=500_000)
    fingerprint = (
        {name: (m.completed, m.errors, m.exokay, m.excl_failures)
         for name, m in soc.masters.items()},
        soc.memory_image(),
    )
    return {
        "cycles": cycles,
        "fingerprint": fingerprint,
        "flits": soc.fabric.total_flits_forwarded(),
        "latency": soc.aggregate_latency(),
    }


def test_e5_switching_mode_transparency(benchmark, heading):
    heading("E5: switching modes — identical transactions, different transport")
    results = {mode: run(mode) for mode in SwitchingMode}
    print(f"{'mode':<22}{'cycles':>8}{'flits':>8}{'mean lat':>10}"
          f"{'p95 lat':>9}")
    for mode, r in results.items():
        print(f"{mode.value:<22}{r['cycles']:>8}{r['flits']:>8}"
              f"{r['latency']['mean']:>10.1f}{r['latency']['p95']:>9.0f}")

    fingerprints = [r["fingerprint"] for r in results.values()]
    assert fingerprints[0] == fingerprints[1] == fingerprints[2], (
        "transaction-level results must not depend on the switching mode"
    )
    # ... while the transport level is genuinely different:
    wormhole = results[SwitchingMode.WORMHOLE]
    saf = results[SwitchingMode.STORE_AND_FORWARD]
    assert saf["latency"]["mean"] > wormhole["latency"]["mean"]

    benchmark.extra_info["cycles_by_mode"] = {
        m.value: r["cycles"] for m, r in results.items()
    }
    benchmark(lambda: run(SwitchingMode.WORMHOLE)["cycles"])


def test_e5_routing_and_arbiter_transparency(benchmark, heading):
    heading("E5b: routing scheme and arbiter are also transaction-invisible")
    variants = {
        "table+priority": dict(routing="table", arbiter="priority"),
        "xy+priority": dict(routing="xy", arbiter="priority"),
        "table+age": dict(routing="table", arbiter="age"),
        "table+rr": dict(routing="table", arbiter="round-robin"),
    }
    fingerprints = {}
    for label, kwargs in variants.items():
        soc = build_noc(mixed_initiators(count=25), mixed_targets(), **kwargs)
        cycles = soc.run_to_completion(max_cycles=500_000)
        fingerprints[label] = (
            {name: m.completed for name, m in soc.masters.items()},
            soc.memory_image(),
        )
        print(f"{label:<18}{cycles:>8} cycles")
    reference = fingerprints["table+priority"]
    for label, fp in fingerprints.items():
        assert fp == reference, f"{label} changed transaction-level results"
    benchmark(lambda: build_noc(
        mixed_initiators(count=10), mixed_targets(), routing="xy"
    ).run_to_completion(max_cycles=500_000))
