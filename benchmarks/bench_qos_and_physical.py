"""E7 — QoS at the transport layer, width at the physical layer.

Paper §1: "the transport layer focuses on quality of service and
scalability, physical layers on … achieving raw bandwidth".  Part one
separates a latency-critical flow from best-effort traffic with packet
priorities; part two sweeps the flit width (physical serialization) and
shows bandwidth scaling with no transaction-level change.
"""

import pytest

from benchmarks.conftest import build_noc, mixed_targets
from repro.ip.masters import random_workload, video_workload
from repro.phys.link import phits_per_flit
from repro.soc import InitiatorSpec, TargetSpec
from repro.transport import topology as topo


def qos_soc(priority_on):
    # Bulk masters stream 8-beat writes at full rate so contention sits
    # in the fabric (many payload flits per packet at 96-bit flits), not
    # in the memory controller — transport QoS can only help with fabric
    # contention.
    inits = [
        InitiatorSpec(
            "video", "AXI",
            video_workload("video", base=0x0, bytes_total=2048,
                           priority=2 if priority_on else 0, gap_cycles=2),
            protocol_kwargs={"id_count": 2},
        ),
    ]
    for i in range(3):
        inits.append(
            InitiatorSpec(
                f"bulk{i}", "BVCI",
                random_workload(f"bulk{i}", [(0, 0x4000)], count=60,
                                seed=20 + i, rate=1.0, read_fraction=0.0,
                                burst_beats=(8,), priority=0),
            )
        )
    return build_noc(inits,
                     [TargetSpec("dram", size=0x4000, read_latency=2,
                                 write_latency=1)],
                     topology=topo.ring(5, endpoints=5),
                     arbiter="priority",
                     flit_payload_bits=96)


def run_qos(priority_on):
    soc = qos_soc(priority_on)
    soc.run_to_completion(max_cycles=500_000)
    bulk = [soc.master_latency(f"bulk{i}")["mean"] for i in range(3)]
    return {
        "video_mean": soc.master_latency("video")["mean"],
        "video_p95": soc.master_latency("video")["p95"],
        "bulk_mean": sum(bulk) / len(bulk),
    }


def test_e7_priority_separates_classes(benchmark, heading):
    heading("E7: transport-layer QoS — video vs bulk traffic")
    off = run_qos(priority_on=False)
    on = run_qos(priority_on=True)
    print(f"{'config':<16}{'video mean':>12}{'video p95':>11}"
          f"{'bulk mean':>11}")
    print(f"{'no priority':<16}{off['video_mean']:>12.1f}"
          f"{off['video_p95']:>11.0f}{off['bulk_mean']:>11.1f}")
    print(f"{'video prio=2':<16}{on['video_mean']:>12.1f}"
          f"{on['video_p95']:>11.0f}{on['bulk_mean']:>11.1f}")
    # Priorities must help the critical flow.
    assert on["video_mean"] < off["video_mean"]
    assert on["video_p95"] <= off["video_p95"]
    benchmark.extra_info.update(off=off, on=on)
    benchmark(lambda: run_qos(True))


def test_e7_physical_width_sweep(benchmark, heading):
    heading("E7b: physical width sweep (flit serialization)")
    from benchmarks.conftest import mixed_initiators

    print(f"{'flit bits':>10}{'cycles':>9}{'flits':>8}{'mean lat':>10}"
          f"{'phits/flit @72w':>17}")
    cycles_by_width = {}
    fingerprints = {}
    for width in (96, 128, 256):
        soc = build_noc(mixed_initiators(count=25), mixed_targets(),
                        flit_payload_bits=width)
        cycles = soc.run_to_completion(max_cycles=500_000)
        cycles_by_width[width] = cycles
        fingerprints[width] = soc.memory_image()
        print(f"{width:>10}{cycles:>9}"
              f"{soc.fabric.total_flits_forwarded():>8}"
              f"{soc.aggregate_latency()['mean']:>10.1f}"
              f"{phits_per_flit(width, 72):>17}")
    # Narrower flits -> more flits per packet -> more cycles...
    assert cycles_by_width[96] >= cycles_by_width[256]
    # ...but identical transaction-level results (layer independence).
    assert fingerprints[96] == fingerprints[128] == fingerprints[256]
    benchmark(lambda: build_noc(
        mixed_initiators(count=10), mixed_targets(), flit_payload_bits=96
    ).run_to_completion(max_cycles=500_000))
