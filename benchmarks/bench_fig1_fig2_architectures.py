"""E1 — Fig 1 vs Fig 2: layered NoC vs reference-socket bus + bridges.

Identical five-socket IP set and workloads on both architectures.
Reported per architecture: completion cycles, mean/p95 transaction
latency, interconnect area proxy (gates), aggregate feature coverage.

Expected shape (paper C1): the NoC completes sooner with lower latency at
load, preserves 100% of socket features, and its per-socket attachment
area compares favourably with two-front-end bridges.
"""

import pytest

from benchmarks.conftest import build_noc, mixed_initiators, mixed_targets
from repro.bus import build_bus_soc, coverage_score
from repro.bus.coverage import format_matrix
from repro.core.layer import build_layer_config
from repro.niu.gate_count import bridge_gate_count, niu_gate_count
from repro.niu.tag_policy import TagPolicy
from repro.core.ordering import ordering_for_protocol

PROTOCOLS = ["AHB", "AXI", "OCP", "BVCI", "PROPRIETARY"]


def run_noc():
    soc = build_noc(mixed_initiators(), mixed_targets())
    cycles = soc.run_to_completion(max_cycles=500_000)
    return soc, cycles


def run_bus():
    soc = build_bus_soc(mixed_initiators(), mixed_targets())
    cycles = soc.run_to_completion(max_cycles=1_000_000)
    return soc, cycles


def attachment_gates():
    cfg = build_layer_config(PROTOCOLS, initiators=5, targets=2)
    niu_total = 0.0
    bridge_total = 0.0
    for protocol in PROTOCOLS:
        policy = TagPolicy(ordering=ordering_for_protocol(protocol))
        niu_total += niu_gate_count(protocol, policy, cfg.packet_format).total
        bridge_total += bridge_gate_count(protocol).total
    return niu_total, bridge_total


def test_e1_architecture_comparison(benchmark, heading):
    heading("E1: Fig-1 layered NoC vs Fig-2 bridged bus (same IP, same load)")
    noc, noc_cycles = run_noc()
    bus, bus_cycles = run_bus()
    noc_lat = noc.aggregate_latency()
    bus_lat = bus.aggregate_latency()
    niu_gates, bridge_gates = attachment_gates()
    noc_cov = sum(coverage_score(p, "niu") for p in PROTOCOLS) / len(PROTOCOLS)
    bus_cov = sum(coverage_score(p, "bridge") for p in PROTOCOLS) / len(PROTOCOLS)

    print(f"{'architecture':<14}{'cycles':>9}{'mean lat':>10}"
          f"{'p95 lat':>9}{'txns':>7}{'coverage':>10}{'attach gates':>14}")
    print(f"{'NoC (Fig 1)':<14}{noc_cycles:>9}{noc_lat['mean']:>10.1f}"
          f"{noc_lat['p95']:>9.0f}{noc.total_completed():>7}"
          f"{noc_cov:>10.2f}{niu_gates:>14,.0f}")
    print(f"{'bus (Fig 2)':<14}{bus_cycles:>9}{bus_lat['mean']:>10.1f}"
          f"{bus_lat['p95']:>9.0f}{bus.total_completed():>7}"
          f"{bus_cov:>10.2f}{bridge_gates:>14,.0f}")
    print()
    print(format_matrix("bridge"))

    # Shape assertions (paper C1).
    assert noc.total_completed() == bus.total_completed()
    assert noc_cycles < bus_cycles
    assert noc_lat["mean"] < bus_lat["mean"]
    assert noc_cov == 1.0 and bus_cov < 1.0
    assert noc.ordering_violations() == 0 and bus.ordering_violations() == 0

    benchmark.extra_info["noc_cycles"] = noc_cycles
    benchmark.extra_info["bus_cycles"] = bus_cycles
    benchmark(lambda: run_noc()[1])


def test_e1_gap_grows_with_load(benchmark, heading):
    heading("E1b: latency gap vs offered load")
    print(f"{'rate':>6}{'NoC mean':>10}{'bus mean':>10}{'bus/NoC':>9}")
    ratios = []
    for rate in (0.05, 0.2, 0.5):
        noc = build_noc(mixed_initiators(count=30, rate=rate), mixed_targets())
        noc.run_to_completion(max_cycles=500_000)
        bus = build_bus_soc(mixed_initiators(count=30, rate=rate),
                            mixed_targets())
        bus.run_to_completion(max_cycles=1_000_000)
        n, b = noc.aggregate_latency()["mean"], bus.aggregate_latency()["mean"]
        ratios.append(b / n)
        print(f"{rate:>6.2f}{n:>10.1f}{b:>10.1f}{b / n:>9.2f}")
    assert all(r > 1.0 for r in ratios)  # bus never wins
    benchmark(lambda: build_noc(
        mixed_initiators(count=10), mixed_targets()
    ).run_to_completion(max_cycles=500_000))
