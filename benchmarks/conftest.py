"""Shared workload builders for the experiment benches (E1..E8).

Every bench prints the rows EXPERIMENTS.md records and asserts the
*shape* of the paper's claim (who wins, what scales, what is unchanged),
then hands one representative simulation to pytest-benchmark for wall-
clock timing.
"""

from __future__ import annotations

import pytest

from repro.ip.masters import cpu_workload, dma_workload, random_workload
from repro.soc import InitiatorSpec, SocBuilder, TargetSpec


def mixed_initiators(count=40, rate=0.25):
    """The Fig-1/Fig-2 SoC: five socket families, one of each."""
    ranges = [(0, 0x4000), (0x4000, 0x4000)]
    return [
        InitiatorSpec("cpu_ahb", "AHB",
                      cpu_workload("cpu_ahb", ranges, count=count, seed=1)),
        InitiatorSpec("gpu_axi", "AXI",
                      random_workload("gpu_axi", ranges, count=count, seed=2,
                                      tags=4, rate=rate, burst_beats=(1, 4, 8)),
                      protocol_kwargs={"id_count": 4}),
        InitiatorSpec("dsp_ocp", "OCP",
                      random_workload("dsp_ocp", ranges, count=count, seed=3,
                                      threads=2, rate=rate),
                      protocol_kwargs={"threads": 2}),
        InitiatorSpec("io_bvci", "BVCI",
                      random_workload("io_bvci", ranges, count=count, seed=4,
                                      rate=rate)),
        InitiatorSpec("acc_msg", "PROPRIETARY",
                      dma_workload("acc_msg", base=0x2000, bytes_total=1024)),
    ]


def mixed_targets():
    return [
        TargetSpec("dram", size=0x4000, read_latency=6, write_latency=3),
        TargetSpec("sram", size=0x4000, read_latency=2, write_latency=1),
    ]


def build_noc(initiators, targets, **kwargs):
    builder = SocBuilder(**kwargs)
    for spec in initiators:
        builder.add_initiator(spec)
    for spec in targets:
        builder.add_target(spec)
    return builder.build()


@pytest.fixture
def heading(request):
    def print_heading(title):
        print()
        print("=" * 72)
        print(title)
        print("=" * 72)
    return print_heading
