"""E8 — per-bridge penalty decomposition (claim C1 in detail).

For each socket family: unloaded round-trip latency through its NIU on
the NoC vs through its bridge on the bus; attachment gate counts; and the
feature-coverage matrix entries.  "Bridges introduce area and latency
penalties, but worse, they also do not support the full set of VC
transactions."
"""

import pytest

from repro.bus import build_bus_soc, coverage_score
from repro.bus.coverage import PROTOCOL_FEATURES
from repro.core.layer import build_layer_config
from repro.core.ordering import ordering_for_protocol
from repro.core.transaction import make_read
from repro.ip.traffic import ScriptedTraffic
from repro.niu.gate_count import bridge_gate_count, niu_gate_count
from repro.niu.tag_policy import TagPolicy
from repro.soc import InitiatorSpec, SocBuilder, TargetSpec

PROTOCOLS = ["AHB", "AXI", "OCP", "PVCI", "BVCI", "AVCI", "PROPRIETARY"]


def unloaded_latency_noc(protocol):
    builder = SocBuilder()
    builder.add_initiator(
        InitiatorSpec("m", protocol,
                      ScriptedTraffic([make_read(0x40)]))
    )
    builder.add_target(TargetSpec("mem", size=0x1000, read_latency=4))
    soc = builder.build()
    soc.run_to_completion(max_cycles=10_000)
    return soc.master_latency("m")["mean"]


def unloaded_latency_bus(protocol, bridge_latency=2):
    soc = build_bus_soc(
        [InitiatorSpec("m", protocol, ScriptedTraffic([make_read(0x40)]))],
        [TargetSpec("mem", size=0x1000, read_latency=4)],
        bridge_latency=bridge_latency,
    )
    soc.run_to_completion(max_cycles=10_000)
    return soc.master_latency("m")["mean"]


def test_e8_per_protocol_penalties(benchmark, heading):
    heading("E8: per-socket attachment penalties (NIU vs bridge)")
    fmt = build_layer_config(PROTOCOLS, initiators=7, targets=1).packet_format
    print(f"{'protocol':<13}{'NoC lat':>9}{'bus lat':>9}{'bridge pen.':>12}"
          f"{'NIU gates':>11}{'bridge gates':>14}{'coverage':>10}")
    for protocol in PROTOCOLS:
        noc_lat = unloaded_latency_noc(protocol)
        bus_lat = unloaded_latency_bus(protocol)
        # Bridge penalty = bridged bus vs an (unrealizable) zero-latency
        # bridge on the same bus: what the conversion itself costs.
        bus_ideal = unloaded_latency_bus(protocol, bridge_latency=0)
        penalty = bus_lat - bus_ideal
        policy = TagPolicy(ordering=ordering_for_protocol(protocol),
                           tag_bits=fmt.tag_bits)
        niu = niu_gate_count(protocol, policy, fmt).total
        bridge = bridge_gate_count(protocol).total
        cov = coverage_score(protocol, "bridge")
        print(f"{protocol:<13}{noc_lat:>9.0f}{bus_lat:>9.0f}{penalty:>12.0f}"
              f"{niu:>11,.0f}{bridge:>14,.0f}{cov:>10.2f}")
        # Every bridge pays conversion latency (claim C1)...
        assert penalty >= 2
        # ...while the NoC attachment keeps full socket semantics.
        assert coverage_score(protocol, "niu") == 1.0
    benchmark(lambda: [unloaded_latency_noc("AXI"),
                       unloaded_latency_bus("AXI")])


def test_e8_feature_loss_counts(heading):
    heading("E8b: feature losses per protocol through a bridge")
    from repro.bus.coverage import BRIDGE_COVERAGE, FeatureSupport

    total_features = 0
    total_lost = 0
    total_emulated = 0
    print(f"{'protocol':<13}{'features':>9}{'native':>8}{'emulated':>10}"
          f"{'lost':>6}")
    for protocol in PROTOCOLS:
        matrix = BRIDGE_COVERAGE[protocol]
        native = sum(1 for s in matrix.values()
                     if s is FeatureSupport.NATIVE)
        emulated = sum(1 for s in matrix.values()
                       if s is FeatureSupport.EMULATED)
        lost = sum(1 for s in matrix.values() if s is FeatureSupport.LOST)
        total_features += len(matrix)
        total_lost += lost
        total_emulated += emulated
        print(f"{protocol:<13}{len(matrix):>9}{native:>8}{emulated:>10}"
              f"{lost:>6}")
        assert set(matrix) == set(PROTOCOL_FEATURES[protocol])
    print(f"{'TOTAL':<13}{total_features:>9}"
          f"{total_features - total_lost - total_emulated:>8}"
          f"{total_emulated:>10}{total_lost:>6}")
    # The paper's qualitative claim, quantified: bridges lose features.
    assert total_lost > 0 and total_emulated > 0


def test_e8_burst_splitting_cost(benchmark, heading):
    heading("E8c: long-burst splitting on the reference bus")
    from repro.core.transaction import make_write

    print(f"{'beats':>7}{'bus transfers':>15}{'cycles':>9}")
    for beats in (8, 16, 32, 64):
        soc = build_bus_soc(
            [InitiatorSpec(
                "m", "AXI",
                ScriptedTraffic([make_write(0x0, list(range(beats)))]),
            )],
            [TargetSpec("mem", size=0x1000)],
        )
        cycles = soc.run_to_completion(max_cycles=50_000)
        transfers = soc.bus.transfers
        print(f"{beats:>7}{transfers:>15}{cycles:>9}")
        import math
        assert transfers == math.ceil(beats / 16)
    benchmark(lambda: build_bus_soc(
        [InitiatorSpec("m", "AXI",
                       ScriptedTraffic([make_write(0x0, list(range(32)))]))],
        [TargetSpec("mem", size=0x1000)],
    ).run_to_completion(max_cycles=50_000))
