"""E6 — feature locality: adding a socket feature touches only the NIU.

Paper §2's two-question process: (1) does the feature need NIU state? →
add a state-table field; (2) does it need information between NIUs? → add
a packet user bit.  "Since neither adding bits to the packets nor state
in the NIUs impacts transaction or physical layers, supporting
VC-specific features in the NoC only impacts the corresponding NIU."

This bench *measures* which configuration artifacts change when features
are added, and contrasts the one-bit exclusive-access service with the
transport-leaking LOCK service.
"""

import pytest

from repro.core.layer import build_layer_config
from repro.core.packet import UserBit
from repro.core.services import NocService


def artifact_snapshot(cfg):
    """Every separately-owned configuration artifact of the stack."""
    fmt = cfg.packet_format
    return {
        "packet_header_bits": fmt.header_bits(),
        "packet_user_bits": tuple(b.name for b in fmt.user_bits),
        "slv_addr_bits": fmt.slv_addr_bits,
        "mst_addr_bits": fmt.mst_addr_bits,
        "tag_bits": fmt.tag_bits,
        "services": tuple(sorted(s.value for s in cfg.services)),
        "transport_support": tuple(
            s.value for s in cfg.requires_transport_support()
        ),
    }


def diff(before, after):
    return {k: (before[k], after[k]) for k in before if before[k] != after[k]}


def test_e6_exclusive_access_cost(benchmark, heading):
    heading("E6: cost of adding AXI/OCP exclusive access to an AHB/VCI NoC")
    before = build_layer_config(["AHB", "BVCI"], initiators=4, targets=4)
    after = build_layer_config(["AHB", "BVCI", "AXI", "OCP"],
                               initiators=6, targets=4)
    # Hold node counts equal to isolate the feature cost:
    after_iso = build_layer_config(["AHB", "BVCI", "AXI", "OCP"],
                                   initiators=4, targets=4)
    changed = diff(artifact_snapshot(before), artifact_snapshot(after_iso))
    print("changed artifacts:")
    for key, (b, a) in changed.items():
        print(f"  {key}: {b} -> {a}")
    assert set(changed) == {
        "packet_header_bits", "packet_user_bits", "services",
    }
    delta_bits = (
        after_iso.packet_format.header_bits()
        - before.packet_format.header_bits()
    )
    print(f"header growth: {delta_bits} bit(s)")
    assert delta_bits == 1  # the paper's single user-defined bit
    assert after_iso.requires_transport_support() == \
        before.requires_transport_support()  # transport untouched
    benchmark(lambda: build_layer_config(
        ["AHB", "BVCI", "AXI", "OCP"], initiators=4, targets=4
    ))


def test_e6_lock_is_the_exception(heading):
    heading("E6b: the LOCK family is the one feature that leaks below")
    no_lock = build_layer_config(["OCP", "AXI"], initiators=4, targets=4)
    with_lock = build_layer_config(["OCP", "AXI", "AHB"],
                                   initiators=4, targets=4)
    print(f"without AHB: transport services = "
          f"{[s.value for s in no_lock.requires_transport_support()]}")
    print(f"with AHB:    transport services = "
          f"{[s.value for s in with_lock.requires_transport_support()]}")
    assert no_lock.requires_transport_support() == []
    assert with_lock.requires_transport_support() == [NocService.LEGACY_LOCK]
    # ...and yet it costs zero packet bits (it rides on opcodes).
    assert (with_lock.packet_format.header_bits()
            == no_lock.packet_format.header_bits())


def test_e6_arbitrary_feature_addition(heading):
    heading("E6c: adding a hypothetical socket feature (posted-write ack)")
    before = build_layer_config(["OCP"], initiators=2, targets=2)
    after = build_layer_config(
        ["OCP"], initiators=2, targets=2,
        extra_user_bits=[UserBit("posted_ack", 1,
                                 "ack side-band for posted writes")],
    )
    changed = diff(artifact_snapshot(before), artifact_snapshot(after))
    print("changed artifacts:", sorted(changed))
    assert set(changed) == {"packet_header_bits", "packet_user_bits"}
    assert after.packet_format.header_bits() == \
        before.packet_format.header_bits() + 1


def test_e6_proprietary_fence_is_niu_only(heading):
    heading("E6d: the MsgPort FENCE costs no packet bits at all")
    without = build_layer_config(["AHB"], initiators=2, targets=2)
    with_msg = build_layer_config(["AHB", "PROPRIETARY"],
                                  initiators=2, targets=2)
    assert (with_msg.packet_format.header_bits()
            == without.packet_format.header_bits())
    assert with_msg.services == without.services
    print("FENCE support changed: NIU behaviour only "
          "(drain state table, ack locally) — zero config artifacts")
