"""E3 — blocking LOCK/READEX vs non-blocking exclusive access (claim C4).

Two masters run semaphore-protected critical sections in each style while
a bystander master streams unrelated reads through the same fabric.
Reported: section throughput, bystander latency, transport lock stalls.

Expected shape: the lock style blocks the bystander (transport-level
stalls > 0, higher bystander latency); the exclusive style leaves it
untouched — which is why OCP/AXI introduced these transactions.
"""

import pytest

from repro.core.transaction import make_read
from repro.ip.masters import sync_workload
from repro.ip.traffic import ScriptedTraffic
from repro.soc import InitiatorSpec, SocBuilder, TargetSpec
from repro.transport import topology as topo


def sync_soc(style, transport_lock_support=None):
    """Two contenders + bystander; bystander shares the path to 'sema'."""
    builder = SocBuilder(topology=topo.ring(5, endpoints=5),
                         transport_lock_support=transport_lock_support)
    protocol = "AHB" if style == "lock" else "AXI"
    for i in range(2):
        builder.add_initiator(
            InitiatorSpec(
                f"sync{i}", protocol,
                sync_workload(f"sync{i}", style, sema_addr=0x0,
                              work_addr=0x100 + 0x40 * i,
                              iterations=6, work_ops=3, seed=i),
            )
        )
    builder.add_initiator(
        InitiatorSpec(
            "bystander", "BVCI",
            ScriptedTraffic([make_read(0x200 + 4 * i) for i in range(40)]),
        )
    )
    builder.add_target(TargetSpec("sema", size=0x1000))
    builder.add_target(TargetSpec("other", size=0x1000))
    return builder.build()


def run(style):
    soc = sync_soc(style)
    cycles = soc.run_to_completion(max_cycles=500_000)
    sections = sum(
        soc.masters[f"sync{i}"].traffic.sections_completed for i in range(2)
    )
    retries = sum(
        getattr(soc.masters[f"sync{i}"].traffic, "retries", 0)
        for i in range(2)
    )
    lock_stalls = (
        soc.fabric.total_lock_stall_cycles()
        + soc.target_nius["sema"].lock_blocked_cycles
    )
    return {
        "cycles": cycles,
        "sections": sections,
        "retries": retries,
        "bystander_mean": soc.master_latency("bystander")["mean"],
        "bystander_p95": soc.master_latency("bystander")["p95"],
        "lock_stalls": lock_stalls,
    }


def test_e3_lock_vs_exclusive(benchmark, heading):
    heading("E3: blocking LOCK vs non-blocking exclusive synchronization")
    lock = run("lock")
    excl = run("excl")
    print(f"{'style':<8}{'cycles':>8}{'sections':>10}{'retries':>9}"
          f"{'bystander mean':>16}{'p95':>7}{'lock stalls':>13}")
    for label, r in (("lock", lock), ("excl", excl)):
        print(f"{label:<8}{r['cycles']:>8}{r['sections']:>10}"
              f"{r['retries']:>9}{r['bystander_mean']:>16.1f}"
              f"{r['bystander_p95']:>7.0f}{r['lock_stalls']:>13}")

    # Both styles synchronize correctly.
    assert lock["sections"] == excl["sections"] == 12
    # The lock family leaks into transport: it stalls unrelated traffic.
    assert lock["lock_stalls"] > 0
    assert excl["lock_stalls"] == 0
    assert excl["bystander_mean"] <= lock["bystander_mean"]

    benchmark.extra_info.update(lock=lock, excl=excl)
    benchmark(lambda: run("excl"))


def test_e3_exclusive_scales_with_contention(benchmark, heading):
    heading("E3b: exclusive-access retry behaviour under contention")
    print(f"{'contenders':>11}{'sections':>10}{'retries':>9}{'cycles':>9}")
    for contenders in (1, 2, 4):
        builder = SocBuilder()
        for i in range(contenders):
            builder.add_initiator(
                InitiatorSpec(
                    f"sync{i}", "AXI",
                    sync_workload(f"sync{i}", "excl", sema_addr=0x0,
                                  work_addr=0x100 + 0x40 * i,
                                  iterations=4, seed=i),
                )
            )
        builder.add_target(TargetSpec("sema", size=0x1000))
        soc = builder.build()
        cycles = soc.run_to_completion(max_cycles=500_000)
        sections = sum(
            soc.masters[f"sync{i}"].traffic.sections_completed
            for i in range(contenders)
        )
        retries = sum(
            soc.masters[f"sync{i}"].traffic.retries
            for i in range(contenders)
        )
        print(f"{contenders:>11}{sections:>10}{retries:>9}{cycles:>9}")
        assert sections == 4 * contenders  # progress guaranteed
    benchmark(lambda: run("lock"))


def test_e3_ablation_lock_implementation(benchmark, heading):
    """DESIGN.md §5 ablation: where should LOCK semantics live?

    (a) transport-level port locking (the Arteris choice — "switches take
        specific decisions when they see LOCK-related packets", §3), vs
    (b) NIU-only serialization (the target NIU's lock manager alone).

    The ablation *demonstrates why the paper is right that LOCK must
    impact the transport level*: with NIU-only locking, a contender's
    stalled READEX sits at the head of the target's single request FIFO
    and head-of-line-blocks the lock **holder's** own release write
    queued behind it — classic deadlock.  Transport-level locking avoids
    it because a switch's per-input arbitration lets the holder's
    packets overtake the stalled contender on a different input port.
    """
    heading("E3c: ablation — transport-level LOCK vs NIU-only serialization")
    # (a) transport + NIU: completes.
    soc = sync_soc("lock", transport_lock_support=None)
    cycles = soc.run_to_completion(max_cycles=500_000)
    sections = sum(
        soc.masters[f"sync{i}"].traffic.sections_completed for i in range(2)
    )
    print(f"{'transport+NIU':<16}{cycles:>8} cycles  sections={sections}  "
          f"fabric stalls={soc.fabric.total_lock_stall_cycles()}")
    assert sections == 12

    # (b) NIU-only: deadlocks under contention (bounded run raises).
    from repro.sim.kernel import SimulationError

    soc2 = sync_soc("lock", transport_lock_support=False)
    with pytest.raises(SimulationError):
        soc2.run_to_completion(max_cycles=30_000)
    holder = soc2.target_nius["sema"].locks.holder
    blocked = soc2.target_nius["sema"].lock_blocked_cycles
    print(f"{'NIU-only':<16}DEADLOCK after 30k cycles: lock held by "
          f"initiator {holder}, contender head-of-line-blocks the "
          f"holder's release ({blocked} blocked cycles)")
    assert holder is not None  # lock stuck forever
    assert blocked > 0
    print()
    print("=> reproduces paper §3: READEX/LOCK genuinely *must* impact "
          "the transport level; NIU state alone cannot carry them.")
    benchmark(lambda: sync_soc("lock")
              .run_to_completion(max_cycles=500_000))
