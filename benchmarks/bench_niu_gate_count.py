"""E4 — NIU gate count scales with outstanding transactions and targets.

Paper C3: the field-assignment policy lets NIUs "support one or many
simultaneously outstanding transactions and/or targets, scaling their
gate count to their expected performance within the system".

The sweep regenerates that scaling surface: protocol × outstanding budget
× multi-target, plus the service-state costs and the bridge comparison.
"""

import pytest

from repro.core.layer import build_layer_config
from repro.core.ordering import OrderingModel, ordering_for_protocol
from repro.niu.gate_count import bridge_gate_count, niu_gate_count
from repro.niu.tag_policy import TagPolicy

PROTOCOLS = ["PVCI", "AHB", "BVCI", "OCP", "AVCI", "AXI", "PROPRIETARY"]
FMT = build_layer_config(PROTOCOLS, initiators=8, targets=8).packet_format


def policy_for(protocol, outstanding, multi_target=True):
    return TagPolicy(
        ordering=ordering_for_protocol(protocol),
        tag_bits=FMT.tag_bits,
        max_outstanding=outstanding,
        per_stream_outstanding=outstanding,
        multi_target=multi_target,
    )


def test_e4_gate_scaling_table(benchmark, heading):
    heading("E4: NIU gate count vs outstanding-transaction budget")
    budgets = (1, 2, 4, 8, 16, 32)
    print(f"{'protocol':<13}" + "".join(f"{b:>9}" for b in budgets))
    for protocol in PROTOCOLS:
        row = []
        for budget in budgets:
            total = niu_gate_count(
                protocol, policy_for(protocol, budget), FMT
            ).total
            row.append(total)
        print(f"{protocol:<13}" + "".join(f"{g:>9,.0f}" for g in row))
        # Monotone growth (linear state-table term dominates).
        assert row == sorted(row)
        assert row[-1] > 2 * row[0]
    benchmark(lambda: [
        niu_gate_count(p, policy_for(p, b), FMT)
        for p in PROTOCOLS for b in budgets
    ])


def test_e4_minimal_vs_performance_configs(heading):
    heading("E4b: minimal vs performance NIU configurations")
    print(f"{'protocol':<13}{'minimal':>10}{'performance':>13}{'ratio':>7}")
    for protocol in PROTOCOLS:
        minimal = niu_gate_count(
            protocol, policy_for(protocol, 1, multi_target=False), FMT
        ).total
        performance = niu_gate_count(
            protocol, policy_for(protocol, 16, multi_target=True), FMT,
            exclusive_monitor_entries=8,
        ).total
        print(f"{protocol:<13}{minimal:>10,.0f}{performance:>13,.0f}"
              f"{performance / minimal:>7.1f}")
        assert performance > minimal


def test_e4_breakdown_and_bridge_contrast(heading):
    heading("E4c: gate breakdown (AXI, 8 outstanding) + bridge contrast")
    report = niu_gate_count("AXI", policy_for("AXI", 8), FMT,
                            exclusive_monitor_entries=8)
    print(report.describe())
    bridge = bridge_gate_count("AXI")
    print()
    print(bridge.describe())
    assert "state_table" in report.breakdown
    assert "reorder_buffer" in report.breakdown
    # The bridge duplicates protocol machinery (two front-ends).
    fsm_keys = [k for k in bridge.breakdown if k.endswith("_fsm")]
    assert len(fsm_keys) == 2


def test_e4_format_width_term(heading):
    heading("E4d: packet-format width term (node-count scaling)")
    print(f"{'nodes':>7}{'header bits':>13}{'AXI NIU gates':>15}")
    last = 0.0
    for nodes in (4, 16, 64):
        fmt = build_layer_config(
            ["AXI"], initiators=nodes // 2, targets=nodes // 2
        ).packet_format
        policy = TagPolicy(ordering=OrderingModel.ID_BASED,
                           tag_bits=fmt.tag_bits, max_outstanding=8,
                           per_stream_outstanding=8)
        total = niu_gate_count("AXI", policy, fmt).total
        print(f"{nodes:>7}{fmt.header_bits():>13}{total:>15,.0f}")
        assert total >= last
        last = total
