#!/usr/bin/env python
"""Quickstart: build a small mixed-protocol SoC on the layered NoC.

An AXI CPU and an OCP DSP share two memories through the VC-neutral
transaction layer.  This is the smallest end-to-end use of the public
API: declare initiators and targets, build, run, read the metrics.

Run:  python examples/quickstart.py
"""

from repro.core.transaction import make_read, make_write
from repro.ip.traffic import ScriptedTraffic
from repro.soc import InitiatorSpec, SocBuilder, TargetSpec


def main() -> None:
    # 1. Declare the IP: what socket each block speaks, what it will do.
    cpu_program = ScriptedTraffic([
        make_write(0x0000, [0x11, 0x22, 0x33, 0x44]),  # 4-beat INCR burst
        make_read(0x0000, beats=4),
        make_read(0x2000),  # second memory
    ])
    dsp_program = ScriptedTraffic([
        make_write(0x2000, [0xAA], posted=True),  # OCP posted write
        make_read(0x0000),
    ])

    builder = SocBuilder(name="quickstart")
    builder.add_initiator(
        InitiatorSpec("cpu", "AXI", cpu_program,
                      protocol_kwargs={"id_count": 2})
    )
    builder.add_initiator(
        InitiatorSpec("dsp", "OCP", dsp_program,
                      protocol_kwargs={"threads": 2})
    )
    builder.add_target(TargetSpec("sram", size=0x2000, read_latency=2))
    builder.add_target(TargetSpec("dram", size=0x2000, read_latency=6))

    # 2. Build: the transaction layer is configured from the socket set.
    soc = builder.build()
    print("transaction layer:", soc.layer_config.describe())
    print()

    # 3. Run until all traffic completes.
    cycles = soc.run_to_completion()
    print(f"finished in {cycles} cycles")
    for name, master in soc.masters.items():
        lat = soc.master_latency(name)
        print(f"  {name} ({master.protocol_name}): "
              f"{master.completed} transactions, "
              f"mean latency {lat['mean']:.1f} cycles")

    # 4. The memories hold what the masters wrote.
    print()
    print(f"sram[0x0] = {soc.memories['sram'].read_beat(0x0, 4):#010x}")
    print(f"dram[0x0] = {soc.memories['dram'].read_beat(0x0, 4):#010x}")
    assert soc.ordering_violations() == 0
    print("ordering checks: clean")


if __name__ == "__main__":
    main()
