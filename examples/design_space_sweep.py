#!/usr/bin/env python
"""Design-space sweep: fork one warmed prefix across a VC x load grid.

A sweep normally pays the warm-up prefix once per configuration.  With
checkpoints it pays it once, total: run the baseline fabric to a steady
state, capture it, then fork what-if continuations — here three offered
loads (warm forks of the same checkpoint) and a 2-VC dateline-torus
variant (structural, so it runs cold with its own builder) — across a
process pool, and compare throughput/latency per configuration.

Run:  python examples/design_space_sweep.py
"""

import functools

from repro.ip.masters import cpu_workload, random_workload
from repro.soc import InitiatorSpec, SocBuilder, TargetSpec
from repro.sweep import Checkpoint, Override, fork
from repro.transport import topology as topo

RANGES = [(0, 0x2000), (0x2000, 0x2000)]
PREFIX_CYCLES = 1200
RUN_CYCLES = 2500


def _populate(builder: SocBuilder) -> SocBuilder:
    builder.add_initiator(
        InitiatorSpec("cpu", "AXI",
                      cpu_workload("cpu", RANGES, count=300, seed=11),
                      protocol_kwargs={"id_count": 4})
    )
    builder.add_initiator(
        InitiatorSpec("gpu", "AXI",
                      random_workload("gpu", RANGES, count=5000, seed=12,
                                      rate=0.3, tags=4),
                      protocol_kwargs={"id_count": 4})
    )
    builder.add_target(TargetSpec("sram", size=0x2000, read_latency=2))
    builder.add_target(TargetSpec("dram", size=0x2000, read_latency=6))
    return builder


def build_baseline():
    """The checkpointed fabric: single-VC 2x2 mesh."""
    return _populate(SocBuilder(name="sweep")).build()


def build_vc_torus():
    """Structural variant: 2-VC dateline torus (cold-run configuration)."""
    return _populate(
        SocBuilder(
            name="sweep-vc",
            topology=topo.torus(2, 2, endpoints=4),
            routing="dor",
            vcs=2,
            vc_policy="dateline",
        )
    ).build()


def set_gpu_rate(rate, soc):
    soc.masters["gpu"].traffic.rate = rate


def main() -> None:
    # 1. Warm the baseline fabric once and freeze it.
    soc = build_baseline()
    soc.run(PREFIX_CYCLES)
    checkpoint = Checkpoint.capture(soc)
    print(f"captured warm prefix at cycle {checkpoint.cycle} "
          f"({soc.total_completed()} transactions retired)")

    # 2. The grid: three loads forked warm, one structural cold variant.
    overrides = [
        Override(name=f"load={rate}",
                 apply=functools.partial(set_gpu_rate, rate))
        for rate in (0.1, 0.3, 0.6)
    ]
    overrides.append(Override(name="vc=2-torus", build=build_vc_torus))

    report = fork(
        checkpoint,
        overrides,
        builder=build_baseline,
        cycles=RUN_CYCLES,
        processes=2,
    )

    # 3. Deterministic comparison table, keyed by configuration.
    print(f"\nfork cycle {report['fork_cycle']}, "
          f"+{report['run_cycles']} cycles per configuration:")
    header = f"{'config':<14} {'mode':<5} {'done':>5} {'flits':>7} {'mean':>7} {'p99':>7}"
    print(header)
    print("-" * len(header))
    for name, entry in report["configs"].items():
        metrics = entry["metrics"]
        latency = metrics["latency"]
        print(f"{name:<14} {entry['mode']:<5} {metrics['completed']:>5} "
              f"{metrics['flits_forwarded']:>7} {latency['mean']:>7.1f} "
              f"{latency['p99']:>7.1f}")

    assert all(e["metrics"]["completed"] > 0 for e in report["configs"].values())
    print("\nsweep complete: one prefix, four futures")


if __name__ == "__main__":
    main()
