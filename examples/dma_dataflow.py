#!/usr/bin/env python
"""Programmable endpoints: DMA descriptor chains and a tree allreduce.

Two scenarios from the workload registry run end-to-end and report the
fabric's per-flow latency SLA surface:

- ``dma_chain`` — eight DMA engines executing chained
  read -> compute -> write descriptor programs between a slow source
  memory and a fast destination memory.
- ``collective_allreduce`` — eight masters on a 4x4 torus combining
  partials through scratch-memory slots in a binary reduction tree,
  then broadcasting the result (the allreduce).

Both are plain :class:`~repro.soc.builder.NocSoc` objects — the same
``run_to_completion`` / ``flow_stats`` surface every other workload
uses — because DMA engines are just ``TrafficSource``\\ s behind the
protocol masters.

Run:  PYTHONPATH=src python examples/dma_dataflow.py
"""

import repro.workloads as workloads


def print_flow_stats(soc) -> None:
    """Per-direction, per-priority latency percentiles (kernel cycles)."""
    print(f"{'direction':>10}{'prio':>6}{'count':>7}{'p50':>7}"
          f"{'p99':>7}{'p999':>7}")
    for direction, groups in soc.flow_stats().items():
        for prio, summary in sorted(groups["priority"].items()):
            print(f"{direction:>10}{prio:>6}{summary['count']:>7.0f}"
                  f"{summary['p50']:>7.0f}{summary['p99']:>7.0f}"
                  f"{summary['p999']:>7.0f}")


def main() -> None:
    print("=== scenario registry ===")
    for name in workloads.available():
        print(f"  {name}: {workloads.describe(name)}")

    print()
    print("=== dma_chain: descriptor programs with dependencies ===")
    soc = workloads.get("dma_chain").build()
    cycles = soc.run_to_completion()
    print(f"8 engines x 3-link chains completed at cycle {cycles} "
          f"({soc.total_completed()} transactions)")
    print_flow_stats(soc)

    print()
    print("=== collective_allreduce: tree reduction on a 4x4 torus ===")
    soc = workloads.get("collective_allreduce").build()
    cycles = soc.run_to_completion()
    print(f"8-node allreduce (3 combining rounds + broadcast) completed "
          f"at cycle {cycles} ({soc.total_completed()} transactions)")
    print_flow_stats(soc)

    print()
    print("Every number above came from the generic flow_stats surface —")
    print("the fabric never learned it was running DMA programs.")


if __name__ == "__main__":
    main()
