#!/usr/bin/env python
"""Layer separation in practice: tuning QoS and physical width
independently of the IP (paper §1).

A latency-critical video flow shares a DRAM port with three bulk
masters.  We sweep (a) the video flow's transport-layer priority and
(b) the fabric's physical flit width — without touching a single IP
block or NIU — and watch transaction latency respond.

Run:  python examples/qos_video_pipeline.py
"""

from repro.ip.masters import random_workload, video_workload
from repro.soc import InitiatorSpec, SocBuilder, TargetSpec
from repro.transport import topology as topo


def build(video_priority: int, flit_bits: int = 128):
    builder = SocBuilder(
        topology=topo.ring(5, endpoints=5),
        arbiter="priority",
        flit_payload_bits=flit_bits,
    )
    builder.add_initiator(
        InitiatorSpec(
            "video", "AXI",
            video_workload("video", base=0x0, bytes_total=4096,
                           priority=video_priority, gap_cycles=2),
            protocol_kwargs={"id_count": 2},
        )
    )
    for i in range(3):
        builder.add_initiator(
            InitiatorSpec(
                f"bulk{i}", "BVCI",
                random_workload(f"bulk{i}", [(0, 0x4000)], count=60,
                                seed=30 + i, rate=0.8, burst_beats=(4, 8)),
            )
        )
    builder.add_target(TargetSpec("dram", size=0x4000, read_latency=4))
    return builder.build()


def main() -> None:
    print("=== transport-layer QoS sweep (video priority) ===")
    print(f"{'priority':>9}{'video mean':>12}{'video p95':>11}"
          f"{'bulk mean':>11}")
    for priority in (0, 1, 2, 3):
        soc = build(video_priority=priority)
        soc.run_to_completion()
        video = soc.master_latency("video")
        bulk = sum(soc.master_latency(f"bulk{i}")["mean"]
                   for i in range(3)) / 3
        print(f"{priority:>9}{video['mean']:>12.1f}{video['p95']:>11.0f}"
              f"{bulk:>11.1f}")

    print()
    print("=== physical-layer width sweep (same IP, same NIUs) ===")
    print(f"{'flit bits':>10}{'cycles':>9}{'video mean':>12}")
    for flit_bits in (96, 128, 256):
        soc = build(video_priority=2, flit_bits=flit_bits)
        cycles = soc.run_to_completion()
        print(f"{flit_bits:>10}{cycles:>9}"
              f"{soc.master_latency('video')['mean']:>12.1f}")

    print()
    print("Neither sweep touched an IP model or NIU configuration —")
    print("exactly the independent optimization the layering promises.")


if __name__ == "__main__":
    main()
