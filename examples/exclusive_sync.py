#!/usr/bin/env python
"""Paper §3: legacy LOCK vs exclusive-access synchronization.

Two masters contend for a semaphore while a bystander streams unrelated
reads through the same fabric.  The legacy style (AHB READEX/locked
write) blocks switch ports along the path; the exclusive style (AXI
exclusive pair, one packet user bit + NIU monitor state) never blocks
anyone — it just retries on a lost reservation.

Run:  python examples/exclusive_sync.py
"""

from repro.core.transaction import make_read
from repro.ip.masters import sync_workload
from repro.ip.traffic import ScriptedTraffic
from repro.soc import InitiatorSpec, SocBuilder, TargetSpec
from repro.transport import topology as topo


def build(style: str):
    protocol = "AHB" if style == "lock" else "AXI"
    builder = SocBuilder(topology=topo.ring(5, endpoints=5))
    for i in range(2):
        builder.add_initiator(
            InitiatorSpec(
                f"sync{i}", protocol,
                sync_workload(f"sync{i}", style, sema_addr=0x0,
                              work_addr=0x100 + 0x40 * i,
                              iterations=8, work_ops=4, seed=i),
            )
        )
    builder.add_initiator(
        InitiatorSpec(
            "bystander", "BVCI",
            ScriptedTraffic([make_read(0x200 + 4 * i) for i in range(50)]),
        )
    )
    builder.add_target(TargetSpec("sema", size=0x1000))
    builder.add_target(TargetSpec("other", size=0x1000))
    return builder.build()


def run(style: str):
    soc = build(style)
    cycles = soc.run_to_completion()
    sections = sum(soc.masters[f"sync{i}"].traffic.sections_completed
                   for i in range(2))
    retries = sum(getattr(soc.masters[f"sync{i}"].traffic, "retries", 0)
                  for i in range(2))
    stalls = (soc.fabric.total_lock_stall_cycles()
              + soc.target_nius["sema"].lock_blocked_cycles)
    return dict(
        cycles=cycles,
        sections=sections,
        retries=retries,
        bystander=soc.master_latency("bystander")["mean"],
        stalls=stalls,
    )


def main() -> None:
    lock = run("lock")
    excl = run("excl")
    print("Two masters, 8 critical sections each, plus a bystander:")
    print()
    print(f"{'':14}{'lock (READEX)':>16}{'exclusive (excl bit)':>22}")
    print(f"{'cycles':<14}{lock['cycles']:>16}{excl['cycles']:>22}")
    print(f"{'sections':<14}{lock['sections']:>16}{excl['sections']:>22}")
    print(f"{'retries':<14}{lock['retries']:>16}{excl['retries']:>22}")
    print(f"{'bystander lat':<14}{lock['bystander']:>16.1f}"
          f"{excl['bystander']:>22.1f}")
    print(f"{'lock stalls':<14}{lock['stalls']:>16}{excl['stalls']:>22}")
    print()
    print("The LOCK family reaches into the transport layer: switches hold")
    print("ports for the locking master and the bystander pays for it.")
    print("The exclusive service is one packet bit plus monitor state in")
    print("the target NIU — the fabric never knows it happened.")


if __name__ == "__main__":
    main()
