#!/usr/bin/env python
"""The paper's Fig 1 vs Fig 2, runnable.

Five IP blocks with five different sockets (AHB CPU, AXI GPU, OCP DSP,
BVCI peripheral, proprietary accelerator) run the same workloads on

  (a) the layered NoC — each socket plugs in through its NIU, and
  (b) the reference-socket shared bus — each socket through a bridge,

then prints the latency, throughput and feature-coverage comparison of
paper claim C1.

Run:  python examples/mixed_protocol_soc.py
"""

from repro.bus import build_bus_soc, coverage_score
from repro.ip.masters import cpu_workload, dma_workload, random_workload
from repro.soc import InitiatorSpec, SocBuilder, TargetSpec

PROTOCOLS = ["AHB", "AXI", "OCP", "BVCI", "PROPRIETARY"]


def make_specs():
    ranges = [(0, 0x4000), (0x4000, 0x4000)]
    initiators = [
        InitiatorSpec("cpu_ahb", "AHB",
                      cpu_workload("cpu_ahb", ranges, count=50, seed=1)),
        InitiatorSpec("gpu_axi", "AXI",
                      random_workload("gpu_axi", ranges, count=50, seed=2,
                                      tags=4, burst_beats=(1, 4, 8)),
                      protocol_kwargs={"id_count": 4}),
        InitiatorSpec("dsp_ocp", "OCP",
                      random_workload("dsp_ocp", ranges, count=50, seed=3,
                                      threads=2),
                      protocol_kwargs={"threads": 2}),
        InitiatorSpec("io_bvci", "BVCI",
                      random_workload("io_bvci", ranges, count=30, seed=4)),
        InitiatorSpec("acc_msg", "PROPRIETARY",
                      dma_workload("acc_msg", base=0x1000,
                                   bytes_total=2048)),
    ]
    targets = [
        TargetSpec("dram", size=0x4000, read_latency=6, write_latency=3),
        TargetSpec("sram", size=0x4000, read_latency=2, write_latency=1),
    ]
    return initiators, targets


def main() -> None:
    print("=== Fig 1: layered NoC, one NIU per socket ===")
    initiators, targets = make_specs()
    builder = SocBuilder(name="fig1")
    for spec in initiators:
        builder.add_initiator(spec)
    for spec in targets:
        builder.add_target(spec)
    noc = builder.build()
    noc_cycles = noc.run_to_completion()
    print(f"packet format: {noc.fabric.packet_format.describe()}")
    print(f"completed {noc.total_completed()} transactions "
          f"in {noc_cycles} cycles")

    print()
    print("=== Fig 2: reference-socket bus, one bridge per socket ===")
    initiators, targets = make_specs()
    bus = build_bus_soc(initiators, targets)
    bus_cycles = bus.run_to_completion()
    print(f"completed {bus.total_completed()} transactions "
          f"in {bus_cycles} cycles "
          f"(bus busy {100 * bus.bus.utilization(bus_cycles):.0f}% "
          f"of the time)")

    print()
    print("=== comparison (paper claim C1) ===")
    print(f"{'master':<10}{'NoC mean lat':>14}{'bus mean lat':>14}"
          f"{'bridge coverage':>17}")
    for spec_protocol, name in [("AHB", "cpu_ahb"), ("AXI", "gpu_axi"),
                                 ("OCP", "dsp_ocp"), ("BVCI", "io_bvci"),
                                 ("PROPRIETARY", "acc_msg")]:
        noc_lat = noc.master_latency(name)["mean"]
        bus_lat = bus.master_latency(name)["mean"]
        cov = coverage_score(spec_protocol, "bridge")
        print(f"{name:<10}{noc_lat:>14.1f}{bus_lat:>14.1f}{cov:>17.2f}")
    speedup = bus_cycles / noc_cycles
    print()
    print(f"NoC finishes the same workload {speedup:.1f}x sooner, and "
          f"every socket keeps 100% of its features (bridges do not).")


if __name__ == "__main__":
    main()
