#!/usr/bin/env python
"""Kernel perf bench: activity-driven kernel vs brute-force reference.

Runs two representative SoC workloads built from the shared bench
builders (``benchmarks/conftest.py``):

- ``idle_heavy``  — the Fig-1/Fig-2 mixed SoC whose traffic drains early
  in a long measurement window, leaving the fabric quiescent for most
  cycles.  This is where idle-skipping pays: after drain the active set
  is empty and cycles cost almost nothing.
- ``saturated``   — the same SoC under open-loop high-rate traffic that
  keeps the routers arbitrating every cycle.  This bounds the scheduler
  overhead and shows the router hot-path surgery.
- ``phys_gals``   — the mixed SoC rebuilt with the physical layer at its
  least transparent: narrow serialized router links (phit-level
  serialization + wire pipelining), three clock domains and CDC
  synchronizers on every NIU↔router link.  Tracks the overhead of the
  phys path (PhysicalLink components + domain-gated ticking) across PRs.
- ``vc_torus``    — a 4x4 torus with 2 virtual channels, DOR routing and
  the dateline VC policy under mixed-priority traffic (best-effort mix
  plus a high-priority video stream).  This workload cannot run at all
  on the single-VC fabric (wraparound wormhole deadlocks); it tracks
  the cost of the per-VC router path across PRs.
- ``adaptive_hotspot`` — a 4x4 torus under hotspot + background traffic
  (half the masters hammer one slow target, the rest stream to fast
  ones) with ``routing="adaptive"`` and the escape VC policy.  Besides
  the usual reference-vs-activity pair, the same traffic is replayed
  under deterministic DOR + dateline and recorded as ``dor_baseline``;
  ``flits_vs_dor`` is the scenario headline — congestion-scored route
  choice forwards more flits through the same window because background
  flows route around the hotspot's backpressure tree.
- ``degraded_hotspot`` — the adaptive hotspot fabric with one mid-run
  link failure next to the hot target's home router.  Besides the
  reference-vs-activity pair, the identical traffic is replayed with
  the fault removed and ``throughput_retention_vs_healthy`` (degraded
  completed txns over healthy) is the scenario headline — the
  resilience SLA, hard-gated at >= 0.5.
- ``parallel_torus`` — a sharded 16x16 torus (``SocBuilder(shards=N)``)
  run single-process and as N shard-worker processes through
  :func:`repro.sweep.parallel.run_sharded` (``--processes``, default 4).
  Records ``parallel_speedup`` on the critical-path basis (per-round
  slowest-worker CPU time + coordinator overhead — single-core runners
  time-slice the workers, so raw wall clock cannot show the
  parallelism; the unadjusted wall times are recorded alongside), the
  safe-window mean, boundary batch/flit/credit counts, and
  ``fingerprint_match`` — the sharded run must be byte-identical to the
  single-process run, and ``--check-against`` gates both that and the
  speedup (> 1.5x at 4+ processes) absolutely.
- ``dma_chain`` / ``stream_pipeline`` / ``collective_allreduce`` — the
  programmable-endpoint scenarios from the ``repro.workloads`` registry
  (descriptor-chained DMA engines, credit-throttled stream pipelines,
  a tree allreduce over a torus).  Resolved through the scenario
  registry (``repro.workloads.get(name).build(...)``) so the bench
  exercises the same entry point users script against; their entries
  additionally record condensed ``flow_stats`` percentiles (count/p50/
  p99/p999 per direction and priority class) — the latency SLA surface
  the workload layer exists to measure.

``--list-workloads`` prints every bench workload (with its window) and
every registry scenario (with its ``describe()`` line) and exits.

Each workload runs under ``Simulator(strict=True)`` (tick everything,
commit everything) and under the default activity-driven kernel, and the
results land in ``BENCH_kernel.json`` next to the repo root so the perf
trajectory is tracked across PRs.

Full runs also record ``speedup_vs_seed_v0`` on *every* workload entry:
workloads that postdate the recorded seed baseline get a proxy measured
under the seed execution model (strict kernel + object router core) and
stored in ``baselines.seed_v0`` with a provenance marker.  Quick runs
additionally run the ``router_step`` microbenchmark — ns per
router-cycle at full load for each router core executor (``object`` /
``array`` / ``batched``) — whose per-core numbers the CI perf gate
bounds like any other workload (slower-than-threshold fails) — and the
``sweep_fork`` benchmark: a 4-way design-space sweep forked warm from
one checkpointed prefix vs the same sweep run cold, recording
``warm_start_speedup`` (gated > 1x) and ``results_match`` (forked
metrics must equal cold metrics per configuration).

``--check-against BASELINE.json`` turns the script into a perf gate: it
fails (exit 1) if any selected workload's activity-kernel
``cycles_per_s`` *or* ``flits_per_s`` drops more than
``--check-threshold`` (default 30%) below the baseline file's numbers
for that workload — this is what CI runs against the committed
``BENCH_kernel.json``.  Quick runs write to (and compare against) a
separate ``quick_workloads`` section, because short windows amortize
idle cycles very differently from the full ones.  ``--profile`` wraps
each activity run in cProfile and writes the top-25 cumulative hotspots
next to the JSON.  Every workload entry records the event-wheel
counters ``cycles_skipped`` (dead cycles the kernel jumped over) and
``wheel_events`` (timing-wheel re-activations scheduled).

Usage::

    PYTHONPATH=src python scripts/run_perf_bench.py [--out BENCH_kernel.json]
    PYTHONPATH=src python scripts/run_perf_bench.py --quick   # CI smoke
    PYTHONPATH=src python scripts/run_perf_bench.py --quick --workload vc_torus
    PYTHONPATH=src python scripts/run_perf_bench.py --list-workloads
    PYTHONPATH=src python scripts/run_perf_bench.py --quick \
        --check-against BENCH_kernel.json --out /tmp/fresh.json
"""

from __future__ import annotations

import argparse
import cProfile
import functools
import io
import json
import os
import platform
import pstats
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks.conftest import (  # noqa: E402
    build_noc,
    mixed_initiators,
    mixed_targets,
)
from repro.ip.masters import random_workload, video_workload  # noqa: E402
from repro.phys.link import LinkSpec  # noqa: E402
from repro.sim.fingerprint import reset_ids  # noqa: E402
from repro.soc import (  # noqa: E402
    FaultSchedule,
    InitiatorSpec,
    SocBuilder,
    TargetSpec,
)
from repro.sweep import Checkpoint, Override, fork  # noqa: E402
from repro.sweep.fork import run_cold  # noqa: E402
from repro.sweep.parallel import run_sharded  # noqa: E402
from repro.transport import topology as topo  # noqa: E402
from repro import workloads  # noqa: E402  (import registers scenarios)


def _reset_global_ids() -> None:
    """Fresh id streams per build so runs are comparable and repeatable.

    Uses the shared :func:`repro.sim.fingerprint.reset_ids` (SerialCounter
    streams, not bare ``itertools.count``) so the sweep_fork bench can
    snapshot/restore the counters like any other state.
    """
    reset_ids()


def build_idle_heavy(strict: bool, scale: int):
    """Traffic drains in the first few thousand cycles of the window."""
    _reset_global_ids()
    return build_noc(
        mixed_initiators(count=12 * scale, rate=0.25),
        mixed_targets(),
        strict_kernel=strict,
    )


def build_saturated(strict: bool, scale: int):
    """Open-loop load high enough to keep every router busy all window."""
    _reset_global_ids()
    return build_noc(
        mixed_initiators(count=100_000, rate=0.95),
        mixed_targets(),
        strict_kernel=strict,
    )


def build_phys_gals(strict: bool, scale: int):
    """Serialized links + GALS regions + CDC: the loaded physical path."""
    _reset_global_ids()
    initiators = mixed_initiators(count=24 * scale, rate=0.35)
    # Three clock regions spread round-robin over the initiators; the
    # targets sit in the io region so every NIU link crosses domains.
    regions = ("cpu", "io", "dsp")
    for index, spec in enumerate(initiators):
        spec.region = regions[index % len(regions)]
    targets = mixed_targets()
    for spec in targets:
        spec.region = "io"
    return build_noc(
        initiators,
        targets,
        strict_kernel=strict,
        links={
            "router": LinkSpec(phit_bits=48, pipeline_latency=1),
            "endpoint": LinkSpec(phit_bits=96),
        },
        clock_domains={"cpu": 2, "io": (3, 1), "dsp": 2, "fab": 1},
        fabric_region="fab",
    )


def build_vc_torus(strict: bool, scale: int):
    """4x4 torus, 2 VCs, dateline policy, mixed-priority traffic.

    The wraparound wormhole fabric this models deadlocks under a single
    VC; DOR routing plus the dateline policy make it safe with two.
    """
    _reset_global_ids()
    initiators = mixed_initiators(count=30 * scale, rate=0.35)
    initiators.append(
        InitiatorSpec(
            "vid_axi", "AXI",
            video_workload("vid_axi", base=0x1000, bytes_total=4096),
            protocol_kwargs={"id_count": 2},
        )
    )
    targets = mixed_targets()
    endpoints = len(initiators) + len(targets)
    return build_noc(
        initiators,
        targets,
        strict_kernel=strict,
        topology=topo.torus(4, 4, endpoints=endpoints),
        routing="dor",
        vcs=2,
        vc_policy="dateline",
    )


def build_adaptive_hotspot(
    strict: bool, scale: int, routing: str = "adaptive", faults=None
):
    """4x4 torus, hotspot + background traffic, adaptive vs DOR.

    Six masters hammer one slow target ("hot", long latencies and a
    shallow outstanding window, so its backpressure tree reaches deep
    into the fabric); six more stream to three fast background targets
    whose DOR paths share links with that tree.  Under adaptive routing
    the background flows route around the congested quadrant (and the
    hotspot flows spread over their minimal quadrants), so more flits
    move through the same cycle window.  ``routing="dor"`` replays the
    identical traffic on the deterministic fabric (2 VCs + dateline,
    DOR's canonical deadlock-free configuration) for the comparison.
    """
    _reset_global_ids()
    hot_range = [(0, 0x2000)]
    bg_ranges = [(0x2000, 0x2000), (0x4000, 0x2000), (0x6000, 0x2000)]
    initiators = []
    for index in range(12):
        hot = index % 2 == 0
        initiators.append(
            InitiatorSpec(
                f"ip{index}", "AXI",
                random_workload(
                    f"ip{index}",
                    hot_range if hot else bg_ranges,
                    count=100_000,
                    seed=20 + index,
                    rate=0.9 if hot else 0.7,
                    tags=4,
                    burst_beats=(4, 8),
                ),
                protocol_kwargs={"id_count": 4},
            )
        )
    targets = [
        TargetSpec("hot", size=0x2000, read_latency=14, write_latency=7,
                   max_outstanding=1),
        TargetSpec("bg0", size=0x2000, read_latency=2, write_latency=1),
        TargetSpec("bg1", size=0x2000, read_latency=2, write_latency=1),
        TargetSpec("bg2", size=0x2000, read_latency=2, write_latency=1),
    ]
    endpoints = len(initiators) + len(targets)
    kwargs = dict(
        topology=topo.torus(4, 4, endpoints=endpoints),
        strict_kernel=strict,
        faults=faults,
    )
    if routing == "adaptive":
        kwargs.update(routing="adaptive", vcs=3, vc_policy="escape")
    else:
        kwargs.update(routing="dor", vcs=2, vc_policy="dateline")
    return build_noc(initiators, targets, **kwargs)


def build_degraded_hotspot(strict: bool, scale: int, faulted: bool = True):
    """The adaptive hotspot fabric with one mid-run link failure.

    Identical traffic to ``adaptive_hotspot``, but at cycle 1000 the
    link between the hot target's home router (0, 3) (endpoint 12, the
    first target after the 12 initiators) and its neighbour (1, 3) goes
    down permanently: the fault epoch recomputes the adaptive tables on
    the surviving graph and every flow through that edge detours.  The
    scenario headline is ``throughput_retention_vs_healthy`` — completed
    transactions in the degraded window over the healthy replay's — the
    resilience SLA the ISSUE pins at >= 0.5.
    """
    faults = (
        FaultSchedule().link_down(1000, (0, 3), (1, 3)) if faulted else None
    )
    return build_adaptive_hotspot(strict, scale, faults=faults)


def _scenario_builder(name: str):
    """Bench builder for a registry scenario.

    Deliberately goes through :func:`repro.workloads.get` — the bench
    measures the same entry point users script against — with default
    parameters, so the recorded numbers stay comparable across PRs.
    """

    def build(strict: bool, scale: int):
        _reset_global_ids()
        return workloads.get(name).build(strict_kernel=strict)

    build.__name__ = f"build_{name}"
    build.__doc__ = workloads.describe(name)
    return build


#: Bench workloads resolved through the scenario registry; their entries
#: carry condensed flow_stats (the latency SLA surface).
SCENARIO_WORKLOADS = ("dma_chain", "stream_pipeline", "collective_allreduce")


def _condensed_flow_stats(soc) -> dict:
    """count/p50/p99/p999 per direction and priority class.

    The full :meth:`NocSoc.flow_stats` surface (per-pair histograms,
    mean/min/max/p95) stays available to scripts; the bench records just
    the tail-latency headline so BENCH_kernel.json tracks SLA drift
    without ballooning.
    """
    condensed = {}
    for direction, groups in soc.flow_stats().items():
        per_prio = {}
        for prio, summary in groups.get("priority", {}).items():
            per_prio[prio] = {
                "count": summary["count"],
                "p50": summary["p50"],
                "p99": summary["p99"],
                "p999": summary["p999"],
            }
        if per_prio:
            condensed[direction] = per_prio
    return condensed


def profile_workload(
    builder, cycles: int, scale: int, profile_path: Path
) -> None:
    """Run the activity kernel once more under cProfile.

    A *separate* run from the measured one: profiler overhead inflates
    wall time ~3x, which would poison the recorded numbers and trip the
    perf gate.  The hotspot report is what matters — it is written next
    to the JSON so future perf work starts from data.
    """
    soc = builder(False, scale)
    profiler = cProfile.Profile()
    profiler.enable()
    soc.run(cycles)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(25)
    profile_path.write_text(stream.getvalue())
    print(f"   wrote profile {profile_path}")


def run_workload(
    builder, strict: bool, cycles: int, scale: int, repeats: int = 1,
    flow_stats: bool = False,
) -> dict:
    """Run one (workload, kernel) pair; with ``repeats > 1`` the run is
    repeated and the best wall time kept — wall-clock throughput on a
    shared machine is a *minimum-noise* measurement (simulated behaviour
    is identical across repeats; only the timing varies).
    ``flow_stats=True`` adds the condensed per-priority latency
    percentiles (identical across repeats, taken from the kept run)."""
    best = None
    for _ in range(max(1, repeats)):
        soc = builder(strict, scale)
        t0 = time.perf_counter()
        soc.run(cycles)
        wall = time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, soc)
    wall, soc = best
    flits = soc.fabric.total_flits_forwarded()
    extra = {"flow_stats": _condensed_flow_stats(soc)} if flow_stats else {}
    return {
        **extra,
        "kernel": "reference" if strict else "activity",
        "cycles": cycles,
        "wall_s": round(wall, 4),
        "cycles_per_s": round(cycles / wall, 1),
        "flits_forwarded": flits,
        "flits_per_s": round(flits / wall, 1),
        "phits_carried": soc.fabric.total_phits_carried(),
        "completed_txns": soc.total_completed(),
        # Event-wheel counters (0 on the strict kernel, which never
        # skips): how much of the window was jumped over, and how many
        # timing-wheel re-activations were scheduled along the way.
        "cycles_skipped": soc.sim.cycles_skipped,
        "wheel_events": soc.sim.wheel_events,
        "final_active_components": soc.sim.active_count,
        "total_components": len(soc.sim.components),
        # Fault/degraded-mode counters (0 on healthy fabrics).
        "faults_hit": sum(
            r.faults_hit
            for plane in soc.fabric._planes
            for r in plane.routers.values()
        ),
        "packets_rerouted": sum(
            r.packets_rerouted
            for plane in soc.fabric._planes
            for r in plane.routers.values()
        ),
    }


WORKLOADS = {
    "idle_heavy": build_idle_heavy,
    "saturated": build_saturated,
    "phys_gals": build_phys_gals,
    "vc_torus": build_vc_torus,
    "adaptive_hotspot": build_adaptive_hotspot,
    "degraded_hotspot": build_degraded_hotspot,
}
for _name in SCENARIO_WORKLOADS:
    WORKLOADS[_name] = _scenario_builder(_name)

#: Router executors measured by the router_step microbench (the same
#: names SocBuilder(router_core=...) accepts).
ROUTER_CORES = ("object", "array", "batched")


def _with_router_core(core, fn, *args, **kwargs):
    """Run ``fn`` with REPRO_ROUTER_CORE pinned to ``core``."""
    saved = os.environ.get("REPRO_ROUTER_CORE")
    os.environ["REPRO_ROUTER_CORE"] = core
    try:
        return fn(*args, **kwargs)
    finally:
        if saved is None:
            os.environ.pop("REPRO_ROUTER_CORE", None)
        else:
            os.environ["REPRO_ROUTER_CORE"] = saved


def measure_seed_proxy(name, builder, cycles, scale) -> dict:
    """A seed-v0 stand-in for workloads the seed tree could not run.

    ``baselines.seed_v0`` was measured once on the seed kernel; later
    workloads (VCs, adaptive routing, faults) have no such number, so
    ``speedup_vs_seed_v0`` silently disappeared from their entries.
    The seed's execution model — tick every component every cycle,
    object-based routers — still exists as ``Simulator(strict=True)``
    plus ``router_core="object"``, so we measure that once and record
    it with a provenance marker; the uniform speedup loop then treats
    it exactly like a real seed number.
    """
    print(f"   measuring seed_v0 proxy for {name} (strict kernel, "
          f"object router core)")
    numbers = _with_router_core(
        "object", run_workload, builder, True, cycles, scale
    )
    return {
        "cycles": cycles,
        "wall_s": numbers["wall_s"],
        "flits": numbers["flits_forwarded"],
        "flits_per_s": numbers["flits_per_s"],
        "proxy": "strict kernel + object router core (the seed-v0 "
                 "execution model), measured retroactively — this "
                 "workload did not exist at seed v0",
    }


class _StepTimer:
    """Accumulates wall time spent inside wrapped router-step calls."""

    __slots__ = ("calls", "elapsed")

    def __init__(self) -> None:
        self.calls = 0
        self.elapsed = 0.0

    def wrap(self, fn):
        timer = time.perf_counter

        def timed(cycle, _fn=fn, _timer=timer):
            t0 = _timer()
            result = _fn(cycle)
            self.elapsed += _timer() - t0
            self.calls += 1
            return result

        return timed


def run_router_step_bench(
    warmup_cycles: int = 300, measure_cycles: int = 700
) -> dict:
    """ns per router-cycle at full load, per executor.

    Builds the ``saturated`` workload under each router core, warms the
    fabric into steady-state saturation, then wraps the router step
    entry points (``Router.tick`` / ``ArrayCore.tick`` /
    ``ArrayCore.step`` under the batched stepper) with a timing shim
    and measures the remainder of the window.  The per-call timer
    overhead (~100 ns) is identical across executors, so the *relative*
    number is what the CI gate watches.
    """
    cores = {}
    for core in ROUTER_CORES:
        soc = _with_router_core(core, build_saturated, False, 1)
        soc.run(warmup_cycles)
        timer = _StepTimer()
        for plane in soc.fabric._planes:
            stepper = plane.router_stepper
            if stepper is not None:
                for acore in stepper.cores:
                    acore.step = timer.wrap(acore.step)
            else:
                for router in plane.routers.values():
                    router.tick = timer.wrap(router.tick)
        soc.run(measure_cycles)
        ns = timer.elapsed * 1e9 / timer.calls if timer.calls else 0.0
        cores[core] = {
            "router_steps": timer.calls,
            "ns_per_router_cycle": round(ns, 1),
        }
        print(f"   router_step[{core}]: {ns:.0f} ns/router-cycle "
              f"({timer.calls} steps)")
    return {
        "workload": "saturated",
        "warmup_cycles": warmup_cycles,
        "measure_cycles": measure_cycles,
        "cores": cores,
    }


#: Targets of the parallel_torus bench (one address stripe each).
PARALLEL_TORUS_TARGETS = 16


def build_parallel_torus(shards: int, width: int = 16):
    """16x16 torus under saturating open-loop load, built sharded.

    The workload the sharded fabric exists for: a fabric too large for
    one process to step quickly, with traffic spread evenly (endpoints
    land 4 per column, targets striped across the address map) so every
    column-band shard carries comparable load.  Router links get a
    3-stage wire pipeline — physically a long-haul link, and exactly
    the lookahead the conservative protocol turns into its safe window
    (W = 4 cycles per round).
    """
    _reset_global_ids()
    ranges = [(i * 0x1000, 0x1000) for i in range(PARALLEL_TORUS_TARGETS)]
    n_initiators = 3 * width * width // 16
    endpoints = n_initiators + PARALLEL_TORUS_TARGETS
    builder = SocBuilder(
        shards=shards,
        topology=topo.torus(width, width, endpoints=endpoints),
        routing="dor",
        vcs=2,
        vc_policy="dateline",
        links={"router": LinkSpec(phit_bits=64, pipeline_latency=3)},
    )
    for index in range(n_initiators):
        builder.add_initiator(
            InitiatorSpec(
                f"ip{index}", "AXI",
                random_workload(
                    f"ip{index}", ranges, count=100_000, seed=30 + index,
                    rate=0.5, tags=4, burst_beats=(4, 8),
                ),
                protocol_kwargs={"id_count": 4},
            )
        )
    for index in range(PARALLEL_TORUS_TARGETS):
        builder.add_target(
            TargetSpec(f"mem{index}", size=0x1000, read_latency=3,
                       write_latency=2)
        )
    return builder.build()


def run_parallel_torus_bench(processes: int, cycles: int) -> dict:
    """Sharded 16x16 torus: one process vs ``processes`` shard workers.

    Runs the identical sharded build twice through
    :func:`repro.sweep.parallel.run_sharded` — single-process, then one
    worker per shard — and verifies the merged fingerprint is
    byte-identical (a mismatch is a correctness failure, reported as
    ``fingerprint_match`` and gated).  ``parallel_speedup`` is on the
    critical-path basis (per-round slowest worker CPU time plus
    coordinator overhead — what an unshared machine would see; workers
    time-slicing a shared core would otherwise be charged for their
    siblings), with the honest wall-clock numbers recorded alongside.
    """
    builder = functools.partial(build_parallel_torus, processes)
    single = run_sharded(builder, cycles=cycles, processes=0)
    parallel = run_sharded(builder, cycles=cycles, processes=processes)
    match = json.dumps(single["fingerprint"], sort_keys=True) == json.dumps(
        parallel["fingerprint"], sort_keys=True
    )
    single_cp = single["timing"]["critical_path_s"]
    parallel_cp = parallel["timing"]["critical_path_s"]
    speedup = single_cp / parallel_cp if parallel_cp else 0.0
    flits = parallel["metrics"]["flits_forwarded"]
    print(
        f"   single {single_cp:.3f}s vs {processes}-process critical path "
        f"{parallel_cp:.3f}s -> parallel_speedup {speedup:.2f}x "
        f"({flits} flits, {parallel['timing']['rounds']} rounds, "
        f"W_mean {parallel['timing']['safe_window_mean']:.1f}, "
        f"fingerprint_match={match})"
    )
    return {
        "processes": processes,
        "cycles": cycles,
        "fingerprint_match": match,
        "parallel_speedup": round(speedup, 2),
        "timing_basis": (
            "critical path: per-round max worker CPU time + coordinator "
            "overhead (single-core hosts time-slice workers, so wall "
            "clock cannot show the parallelism; wall_s is recorded "
            "unadjusted alongside)"
        ),
        "single_process": {
            "wall_s": round(single["timing"]["wall_s"], 4),
            "critical_path_s": round(single_cp, 4),
            "flits_forwarded": single["metrics"]["flits_forwarded"],
            "flits_per_s": round(
                single["metrics"]["flits_forwarded"] / single_cp, 1
            ) if single_cp else 0.0,
            "completed_txns": single["metrics"]["completed"],
        },
        "parallel": {
            "wall_s": round(parallel["timing"]["wall_s"], 4),
            "critical_path_s": round(parallel_cp, 4),
            "busy_total_s": round(parallel["timing"]["busy_total_s"], 4),
            "coordinator_s": round(parallel["timing"]["coordinator_s"], 4),
            "rounds": parallel["timing"]["rounds"],
            "safe_window_mean": round(
                parallel["timing"]["safe_window_mean"], 2
            ),
            "boundary_batches": parallel["timing"]["boundary_batches"],
            "boundary_flits": parallel["timing"]["boundary_flits"],
            "boundary_credits": parallel["timing"]["boundary_credits"],
            "flits_forwarded": flits,
            "flits_per_s": round(flits / parallel_cp, 1)
            if parallel_cp else 0.0,
            "completed_txns": parallel["metrics"]["completed"],
        },
        # The seed tree cannot shard at all: the single_process numbers
        # above are this entry's in-file baseline, so no seed_v0 proxy.
    }


#: Offered loads swept by the sweep_fork bench (gpu_axi traffic rate).
SWEEP_RATES = (0.1, 0.3, 0.6, 0.9)


def _build_sweep_soc():
    """Congruent builder for the sweep_fork bench.

    Open-loop traffic (huge count) so every forked continuation still has
    load to differentiate the rate overrides; the fork machinery reseeds
    the global id counters itself before each build."""
    return build_noc(
        mixed_initiators(count=100_000, rate=0.3),
        mixed_targets(),
        strict_kernel=False,
    )


def _set_sweep_rate(rate, soc):
    soc.masters["gpu_axi"].traffic.rate = rate


def run_sweep_fork_bench(
    prefix_cycles: int = 4_000, run_cycles: int = 1_000
) -> dict:
    """Warm-start design-space sweep vs the same sweep run cold.

    Warm path: run the common prefix once, :meth:`Checkpoint.capture` it,
    then :func:`fork` one continuation per rate override (serial, so the
    wall-clock comparison is apples-to-apples with the serial cold loop).
    Cold path: one full prefix + continuation per override, applying the
    identical override at the identical cycle.  ``warm_start_speedup``
    (cold wall over warm wall) is the headline the perf gate requires
    > 1x on this 4-way sweep, and ``results_match`` pins that forking is
    a pure wall-clock optimisation — every forked configuration's metrics
    equal its cold run's.
    """
    overrides = [
        Override(name=f"rate={rate}",
                 apply=functools.partial(_set_sweep_rate, rate))
        for rate in SWEEP_RATES
    ]
    t0 = time.perf_counter()
    _reset_global_ids()
    soc = _build_sweep_soc()
    soc.run(prefix_cycles)
    checkpoint = Checkpoint.capture(soc)
    report = fork(
        checkpoint, overrides, builder=_build_sweep_soc,
        cycles=run_cycles, processes=0,
    )
    warm_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    cold = {
        override.name: run_cold(
            _build_sweep_soc, override, prefix_cycles, run_cycles
        )
        for override in overrides
    }
    cold_s = time.perf_counter() - t0

    results_match = all(
        report["configs"][name]["metrics"] == metrics
        for name, metrics in cold.items()
    )
    speedup = cold_s / warm_s if warm_s else 0.0
    print(
        f"   sweep_fork: warm {warm_s:.3f}s vs cold {cold_s:.3f}s over "
        f"{len(overrides)} configs -> warm_start_speedup {speedup:.2f}x "
        f"(results_match={results_match})"
    )
    return {
        "prefix_cycles": prefix_cycles,
        "run_cycles": run_cycles,
        "sweep_width": len(overrides),
        "warm_s": round(warm_s, 4),
        "cold_s": round(cold_s, 4),
        "warm_start_speedup": round(speedup, 2),
        "results_match": results_match,
        "configs": {
            name: {
                "completed": entry["metrics"]["completed"],
                "flits_forwarded": entry["metrics"]["flits_forwarded"],
            }
            for name, entry in report["configs"].items()
        },
    }


def check_against(
    baseline_path: Path, results: dict, threshold: float, section: str,
    remeasure=None,
) -> int:
    """Perf-regression gate: compare activity-kernel throughput.

    Both views are gated with the same threshold: ``cycles_per_s`` (how
    fast simulated time advances — the time-skipping headline) and
    ``flits_per_s`` (how fast the fabric's actual work gets done — the
    router hot-path headline; a change that speeds up quiet cycles but
    slows down flit forwarding fails here).  Quick and full windows
    amortize idle cycles very differently, so a run only ever compares
    against the *same-window section* of the baseline (``workloads`` for
    full runs, ``quick_workloads`` for ``--quick`` runs) and skips
    entries whose measurement window still differs.  Workloads missing
    from the baseline are skipped too (new workloads cannot regress
    against numbers that do not exist yet).

    Wall-clock on shared runners is bursty: a neighbour stealing the
    CPU for a few seconds can sink whichever workload happened to be
    measuring, and which one that is changes run to run.  So before a
    drop counts, the workload is re-measured once via ``remeasure`` and
    the better number wins — a scheduling burst will not reproduce on
    the retry, a real regression will.  Returns the number of
    regressions past ``threshold``.
    """
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"!! cannot read perf baseline {baseline_path}: {exc}")
        return 1
    regressions = 0
    for name, entry in sorted(results[section].items()):
        base_entry = baseline.get(section, {}).get(name)
        if name == "sweep_fork":
            # Absolute gates, not baseline-relative: forking a warmed
            # prefix must beat paying the prefix per configuration, and
            # must change nothing observable (fork == cold, per config).
            speedup = entry.get("warm_start_speedup", 0.0)
            match = entry.get("results_match", False)
            verdict = "ok"
            if speedup <= 1.0:
                verdict = "REGRESSION (warm start did not beat cold runs)"
                regressions += 1
            elif not match:
                verdict = "REGRESSION (forked metrics != cold metrics)"
                regressions += 1
            print(
                f"   perf-gate sweep_fork: warm_start_speedup "
                f"{speedup:.2f}x, results_match={match} {verdict}"
            )
            continue
        if name == "parallel_torus":
            # Absolute gates, not baseline-relative: the sharded run must
            # be byte-identical to the single-process run, and splitting
            # the fabric must actually pay — > 1.5x on the critical-path
            # basis at 4+ workers (the ISSUE's bar), > 1x below that
            # (CI's 2-process smoke can't reach the 4-process number).
            match = entry.get("fingerprint_match", False)
            speedup = entry.get("parallel_speedup", 0.0)
            bar = 1.5 if entry.get("processes", 0) >= 4 else 1.0
            verdict = "ok"
            if not match:
                verdict = "REGRESSION (sharded fingerprint diverged)"
                regressions += 1
            elif speedup <= bar:
                verdict = (
                    f"REGRESSION (parallel_speedup <= {bar}x at "
                    f"{entry.get('processes')} processes)"
                )
                regressions += 1
            print(
                f"   perf-gate parallel_torus: parallel_speedup "
                f"{speedup:.2f}x at {entry.get('processes')} processes "
                f"(bar {bar}x), fingerprint_match={match} {verdict}"
            )
            continue
        if name == "router_step":
            # The microbench gates ns per router-cycle per executor:
            # *lower* is better, so the threshold bounds the slowdown.
            base_cores = (base_entry or {}).get("cores", {})
            cores = {
                core: numbers["ns_per_router_cycle"]
                for core, numbers in entry.get("cores", {}).items()
            }

            def _slow_cores():
                return [
                    core
                    for core, ns in cores.items()
                    if base_cores.get(core, {}).get("ns_per_router_cycle")
                    and ns / base_cores[core]["ns_per_router_cycle"]
                    > 1.0 + threshold
                ]

            note = ""
            if _slow_cores() and remeasure is not None:
                print("   perf-gate router_step: slow, re-measuring once")
                fresh = remeasure("router_step")
                for core, numbers in (fresh or {}).get("cores", {}).items():
                    if core in cores:
                        cores[core] = min(
                            cores[core], numbers["ns_per_router_cycle"]
                        )
                note = ", best of retry"
            for core, current_ns in sorted(cores.items()):
                base_ns = base_cores.get(core, {}).get(
                    "ns_per_router_cycle", 0
                )
                if not base_ns or not current_ns:
                    continue
                ratio = current_ns / base_ns
                verdict = "ok"
                if ratio > 1.0 + threshold:
                    verdict = f"REGRESSION (>{threshold:.0%} slower)"
                    regressions += 1
                print(
                    f"   perf-gate router_step[{core}]: {current_ns:.0f} "
                    f"vs baseline {base_ns:.0f} ns/router-cycle "
                    f"({ratio:.2f}x{note}) {verdict}"
                )
            continue
        if not base_entry or "activity" not in base_entry:
            continue  # no (or malformed) baseline for this workload
        if base_entry["activity"]["cycles"] != entry["activity"]["cycles"]:
            print(
                f"   perf-gate {name}: window changed "
                f"({base_entry['activity']['cycles']} -> "
                f"{entry['activity']['cycles']} cycles), skipping"
            )
            continue
        metrics = (("cycles_per_s", "cyc/s"), ("flits_per_s", "flits/s"))
        current = {m: entry["activity"].get(m, 0) for m, _ in metrics}

        def _dropped():
            return [
                m
                for m, _ in metrics
                if base_entry["activity"].get(m)
                and current[m] / base_entry["activity"][m] < 1.0 - threshold
            ]

        note = ""
        if _dropped() and remeasure is not None:
            print(f"   perf-gate {name}: slow, re-measuring once")
            fresh = remeasure(name)
            if fresh and fresh.get("cycles") == entry["activity"]["cycles"]:
                for m, _ in metrics:
                    current[m] = max(current[m], fresh.get(m, 0))
                note = ", best of retry"
        for metric, unit in metrics:
            base = base_entry["activity"].get(metric, 0)
            if not base:
                continue  # no flits forwarded, or an old-format baseline
            ratio = current[metric] / base
            verdict = "ok"
            if ratio < 1.0 - threshold:
                verdict = f"REGRESSION (>{threshold:.0%} drop)"
                regressions += 1
            print(
                f"   perf-gate {name}: {current[metric]:.0f} vs baseline "
                f"{base:.0f} {unit} ({ratio:.2f}x{note}) {verdict}"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_kernel.json"),
        help="output JSON path",
    )
    parser.add_argument(
        "--cycles", type=int, default=60_000,
        help="measurement window in cycles (idle_heavy)",
    )
    parser.add_argument(
        "--saturated-cycles", type=int, default=6_000,
        help="measurement window in cycles (saturated)",
    )
    parser.add_argument(
        "--phys-cycles", type=int, default=30_000,
        help="measurement window in cycles (phys_gals)",
    )
    parser.add_argument(
        "--vc-cycles", type=int, default=30_000,
        help="measurement window in cycles (vc_torus)",
    )
    parser.add_argument(
        "--hotspot-cycles", type=int, default=20_000,
        help="measurement window in cycles (adaptive_hotspot)",
    )
    parser.add_argument(
        "--scenario-cycles", type=int, default=10_000,
        help="measurement window in cycles (registry scenarios: "
             "dma_chain, stream_pipeline, collective_allreduce)",
    )
    parser.add_argument(
        "--parallel-cycles", type=int, default=2_000,
        help="measurement window in cycles (parallel_torus)",
    )
    parser.add_argument(
        "--processes", type=int, default=4,
        help="shard worker count for the parallel_torus bench (the build "
             "is sharded to match; CI's quick smoke passes 2)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small windows for CI smoke runs",
    )
    parser.add_argument(
        "--list-workloads", action="store_true",
        help="print every bench workload and registry scenario, then exit",
    )
    parser.add_argument(
        "--check-against", metavar="JSON", default=None,
        help="perf gate: fail if any selected workload's activity "
             "cycles_per_s drops more than --check-threshold below this "
             "baseline JSON (CI passes the committed BENCH_kernel.json)",
    )
    parser.add_argument(
        "--check-threshold", type=float, default=0.30,
        help="allowed fractional cycles_per_s drop before the gate fails "
             "(default 0.30)",
    )
    parser.add_argument(
        "--workload", action="append",
        choices=sorted([*WORKLOADS, "parallel_torus"]),
        metavar="NAME",
        help="run only this workload (repeatable; default: all); existing "
             "results for unselected workloads are preserved in the JSON",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="repeat each measured run this many times and keep the best "
             "wall time (noise floor on shared machines; simulated "
             "behaviour is identical across repeats)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="wrap each selected workload's activity run in cProfile and "
             "write the top-25 cumulative hotspots to "
             "<out>.<workload>.profile.txt next to the JSON, so future "
             "perf PRs start from data",
    )
    args = parser.parse_args(argv)

    windows = {
        "idle_heavy": 6_000 if args.quick else args.cycles,
        "saturated": 1_500 if args.quick else args.saturated_cycles,
        "phys_gals": 3_000 if args.quick else args.phys_cycles,
        "vc_torus": 3_000 if args.quick else args.vc_cycles,
        "adaptive_hotspot": 3_000 if args.quick else args.hotspot_cycles,
        "degraded_hotspot": 3_000 if args.quick else args.hotspot_cycles,
    }
    for name in SCENARIO_WORKLOADS:
        windows[name] = 2_500 if args.quick else args.scenario_cycles

    if args.list_workloads:
        print("bench workloads:")
        for name in sorted(WORKLOADS):
            doc = (WORKLOADS[name].__doc__ or "").strip().splitlines()[0]
            print(f"  {name:22s} {doc}")
        print("registry scenarios (repro.workloads.get(name).build(...)):")
        for name in workloads.available():
            print(f"  {name:22s} {workloads.describe(name)}")
        return 0
    scale = 1
    selected = {
        name: builder
        for name, builder in WORKLOADS.items()
        if not args.workload or name in args.workload
    }

    out = Path(args.out)
    # This run writes into the section matching its windows — "workloads"
    # for full runs, "quick_workloads" for --quick — so quick CI smoke
    # numbers never overwrite (or get compared against) full-window ones.
    section = "quick_workloads" if args.quick else "workloads"
    other = "workloads" if args.quick else "quick_workloads"
    # Baselines (e.g. the seed kernel, measured once per machine) are
    # preserved across reruns so the JSON shows the cross-PR trajectory;
    # with --workload filters, untouched workloads keep their previous
    # numbers too, and the other window section is carried over verbatim.
    baselines = {}
    previous_section = {}
    previous_other = {}
    if out.exists():
        try:
            previous = json.loads(out.read_text())
            baselines = previous.get("baselines", {})
            previous_section = previous.get(section, {})
            previous_other = previous.get(other, {})
        except (json.JSONDecodeError, OSError):
            pass

    results = {
        "meta": {
            "generated": time.strftime("%Y-%m-%d %H:%M:%S"),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "quick": args.quick,
            "repeats": args.repeats,
        },
        "baselines": baselines,
        other: previous_other,
        section: {
            name: numbers
            for name, numbers in previous_section.items()
            if name not in selected
        },
    }
    for name, builder in selected.items():
        cycles = windows[name]
        is_scenario = name in SCENARIO_WORKLOADS
        print(f"== {name} ({cycles} cycles) ==")
        reference = run_workload(
            builder, True, cycles, scale, repeats=args.repeats
        )
        activity = run_workload(
            builder, False, cycles, scale, repeats=args.repeats,
            flow_stats=is_scenario,
        )
        if args.profile:
            profile_workload(
                builder, cycles, scale,
                out.with_name(f"{out.stem}.{name}.profile.txt"),
            )
        speedup = reference["wall_s"] / activity["wall_s"]
        # The two kernels must agree on what the simulation *did*.
        if reference["flits_forwarded"] != activity["flits_forwarded"] or (
            reference["completed_txns"] != activity["completed_txns"]
        ):
            print(f"!! kernel mismatch on {name}: {reference} vs {activity}")
            return 1
        entry = {
            "reference": reference,
            "activity": activity,
            "speedup": round(speedup, 2),
        }
        print(
            f"   reference {reference['wall_s']:.3f}s  "
            f"activity {activity['wall_s']:.3f}s  speedup {speedup:.2f}x  "
            f"({activity['cycles_per_s']:.0f} cyc/s, "
            f"{activity['flits_forwarded']} flits)"
        )
        if name == "adaptive_hotspot":
            # Replay the identical traffic under deterministic DOR: the
            # scenario headline is fabric throughput, flits through the
            # same window (and flits_per_s for the wall-clock view).
            dor = run_workload(
                lambda strict, sc: build_adaptive_hotspot(
                    strict, sc, routing="dor"
                ),
                False, cycles, scale, repeats=args.repeats,
            )
            entry["dor_baseline"] = dor
            entry["flits_vs_dor"] = round(
                activity["flits_forwarded"] / dor["flits_forwarded"], 3
            )
            print(
                f"   dor replay {dor['wall_s']:.3f}s "
                f"({dor['flits_forwarded']} flits) -> adaptive carries "
                f"{entry['flits_vs_dor']:.2f}x the flits"
            )
            if activity["flits_forwarded"] <= dor["flits_forwarded"]:
                print("!! adaptive_hotspot: adaptive did not beat DOR")
                return 1
        if name == "degraded_hotspot":
            # Replay the identical traffic with the fault schedule
            # removed: the scenario headline is the resilience SLA —
            # completed transactions in the degraded window over the
            # healthy replay's, which the ISSUE pins at >= 0.5.
            healthy = run_workload(
                lambda strict, sc: build_degraded_hotspot(
                    strict, sc, faulted=False
                ),
                False, cycles, scale, repeats=args.repeats,
            )
            entry["healthy_replay"] = healthy
            retention = (
                activity["completed_txns"] / healthy["completed_txns"]
                if healthy["completed_txns"]
                else 0.0
            )
            entry["throughput_retention_vs_healthy"] = round(retention, 3)
            print(
                f"   healthy replay {healthy['completed_txns']} txns vs "
                f"degraded {activity['completed_txns']} -> retention "
                f"{retention:.2f} ({activity['packets_rerouted']} rerouted, "
                f"{activity['faults_hit']} fault-degraded grants)"
            )
            if retention < 0.5:
                print("!! degraded_hotspot: retention below the 0.5 SLA")
                return 1
            if activity["faults_hit"] == 0:
                print("!! degraded_hotspot: the fault never degraded a grant")
                return 1
        results[section][name] = entry

    if args.quick and not args.workload:
        print("== router_step microbench ==")
        results[section]["router_step"] = run_router_step_bench()
        print("== sweep_fork (warm-start sweep vs cold sweep) ==")
        results[section]["sweep_fork"] = run_sweep_fork_bench()

    if not args.workload or "parallel_torus" in args.workload:
        parallel_cycles = 1_000 if args.quick else args.parallel_cycles
        print(
            f"== parallel_torus (sharded fabric, {args.processes} "
            f"processes, {parallel_cycles} cycles) =="
        )
        entry = run_parallel_torus_bench(args.processes, parallel_cycles)
        results[section]["parallel_torus"] = entry
        if not entry["fingerprint_match"]:
            print("!! parallel_torus: sharded fingerprint diverged from "
                  "the single-process run")
            return 1

    # Every full-window workload gets a speedup_vs_seed_v0: workloads
    # missing from the recorded seed baseline (they postdate it) get a
    # proxy measured under the seed execution model, marked as such.
    if not args.quick:
        seed_workloads = baselines.setdefault("seed_v0", {}).setdefault(
            "workloads", {}
        )
        for name, builder in selected.items():
            if name not in seed_workloads:
                seed_workloads[name] = measure_seed_proxy(
                    name, builder, windows[name], scale
                )

    for name, base in baselines.items():
        for workload, numbers in base.get("workloads", {}).items():
            entry = results[section].get(workload)
            if entry and numbers.get("cycles") == entry["activity"]["cycles"]:
                entry[f"speedup_vs_{name}"] = round(
                    numbers["wall_s"] / entry["activity"]["wall_s"], 2
                )

    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    if args.check_against:

        def remeasure(name):
            # One fresh activity-kernel measurement of a workload whose
            # first sample fell past the gate threshold, so a transient
            # scheduling burst on the runner cannot fail the gate alone.
            if name == "router_step":
                return run_router_step_bench()
            if name not in WORKLOADS or name not in windows:
                return None
            return run_workload(
                WORKLOADS[name], False, windows[name], scale,
                repeats=args.repeats,
            )

        regressions = check_against(
            Path(args.check_against), results, args.check_threshold,
            section, remeasure=remeasure,
        )
        if regressions:
            print(f"!! perf gate failed: {regressions} regression(s)")
            return 1
        print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
