"""Declarative SoC specification records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.niu.tag_policy import TagPolicy

#: Socket families the builder knows how to instantiate.
KNOWN_PROTOCOLS = ("AHB", "AXI", "OCP", "PVCI", "BVCI", "AVCI", "PROPRIETARY")


@dataclass
class InitiatorSpec:
    """One master IP + socket + NIU attachment.

    ``traffic`` is any :class:`~repro.protocols.base.TrafficSource`;
    ``protocol_kwargs`` feed the master model constructor (e.g. OCP
    ``threads``, AXI ``id_count``); ``policy`` overrides the NIU's
    default tag policy (benchmarks sweep this).
    """

    name: str
    protocol: str
    traffic: object
    policy: Optional[TagPolicy] = None
    protocol_kwargs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.protocol = self.protocol.upper()
        if self.protocol not in KNOWN_PROTOCOLS:
            raise ValueError(
                f"initiator {self.name!r}: unknown protocol "
                f"{self.protocol!r}; known: {KNOWN_PROTOCOLS}"
            )


@dataclass
class TargetSpec:
    """One target IP (memory-like) + target NIU attachment.

    ``base=None`` lets the builder pack targets contiguously in the
    address map.
    """

    name: str
    size: int = 1 << 16
    base: Optional[int] = None
    read_latency: int = 4
    write_latency: int = 2
    per_beat_cycles: int = 0
    max_outstanding: int = 4
    error_ranges: Optional[list] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"target {self.name!r}: size must be > 0")
