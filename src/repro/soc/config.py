"""Declarative SoC specification records.

Physical-layer configuration is declarative too: a
:class:`~repro.phys.link.LinkSpec` (re-exported here) describes the wires
of one fabric connection class, :class:`~repro.phys.clocking.ClockDomain`
names a GALS clock, and every initiator/target spec can name the clock
``region`` its IP + NIU run in.  Defaults everywhere are the ideal
physical layer — full-width links, one clock domain — which builds a SoC
cycle-identical to one configured with no physical layer at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.niu.tag_policy import TagPolicy
from repro.phys.clocking import ClockDomain
from repro.phys.link import LinkSpec
from repro.transport.faults import (
    FabricPartitionError,
    FaultConfigError,
    FaultSchedule,
    NoSurvivingPathError,
    OverlappingFaultWindowError,
    UnknownFaultTargetError,
)
from repro.transport.routing import (
    DatelineVcPolicy,
    EscapeVcPolicy,
    PriorityVcPolicy,
    VcPolicy,
)

__all__ = [
    "ClockDomain",
    "DatelineVcPolicy",
    "EscapeVcPolicy",
    "FabricPartitionError",
    "FaultConfigError",
    "FaultSchedule",
    "InitiatorSpec",
    "KNOWN_PROTOCOLS",
    "LinkSpec",
    "NoSurvivingPathError",
    "OverlappingFaultWindowError",
    "PriorityVcPolicy",
    "TargetSpec",
    "UnknownFaultTargetError",
    "VcPolicy",
]

#: Socket families the builder knows how to instantiate.
KNOWN_PROTOCOLS = ("AHB", "AXI", "OCP", "PVCI", "BVCI", "AVCI", "PROPRIETARY")


@dataclass
class InitiatorSpec:
    """One master IP + socket + NIU attachment.

    ``traffic`` is any :class:`~repro.protocols.base.TrafficSource`, a
    declarative :class:`~repro.ip.traffic.TrafficSpec` (built against
    this initiator's name at build time), or ``None`` when the source is
    supplied later through ``SocBuilder(traffic=[...])`` /
    ``workload={...}`` — the builder raises at build time if it is still
    unresolved.  ``protocol_kwargs`` feed the master model constructor
    (e.g. OCP ``threads``, AXI ``id_count``); ``policy`` overrides the
    NIU's default tag policy (benchmarks sweep this).

    ``region`` names the clock domain (a key of the builder's
    ``clock_domains=`` mapping) that the master IP, its NIU and its
    injection/ejection ports run in.  ``None`` means the kernel reference
    clock.  If the region differs from the fabric's domain, the
    NIU↔router links get a CDC synchronizer automatically — the
    transaction layer never notices.
    """

    name: str
    protocol: str
    traffic: object = None
    policy: Optional[TagPolicy] = None
    protocol_kwargs: Dict[str, object] = field(default_factory=dict)
    region: Optional[str] = None

    def __post_init__(self) -> None:
        self.protocol = self.protocol.upper()
        if self.protocol not in KNOWN_PROTOCOLS:
            raise ValueError(
                f"initiator {self.name!r}: unknown protocol "
                f"{self.protocol!r}; known: {KNOWN_PROTOCOLS}"
            )


@dataclass
class TargetSpec:
    """One target IP (memory-like) + target NIU attachment.

    ``base=None`` lets the builder pack targets contiguously in the
    address map; an explicit ``base`` must not overlap any other target's
    range (the builder validates and raises).  ``region`` is the clock
    domain of the memory + target NIU, as for :class:`InitiatorSpec`.
    """

    name: str
    size: int = 1 << 16
    base: Optional[int] = None
    read_latency: int = 4
    write_latency: int = 2
    per_beat_cycles: int = 0
    max_outstanding: int = 4
    error_ranges: Optional[list] = None
    region: Optional[str] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"target {self.name!r}: size must be > 0")
