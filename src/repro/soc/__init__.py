"""SoC assembly: declarative specs → runnable simulated systems.

:class:`~repro.soc.builder.SocBuilder` produces a Fig-1 style system — a
layered NoC with one NIU per socket.  The same specs can be handed to
:func:`~repro.bus.shared_bus.build_bus_soc` to produce the Fig-2
baseline — a reference-socket bus with per-protocol bridges — which is
how benchmark E1 compares the two architectures on identical workloads.
"""

from repro.soc.builder import NocSoc, SocBuilder
from repro.soc.config import (
    ClockDomain,
    EscapeVcPolicy,
    FabricPartitionError,
    FaultConfigError,
    FaultSchedule,
    InitiatorSpec,
    LinkSpec,
    NoSurvivingPathError,
    OverlappingFaultWindowError,
    TargetSpec,
    UnknownFaultTargetError,
)

__all__ = [
    "ClockDomain",
    "EscapeVcPolicy",
    "FabricPartitionError",
    "FaultConfigError",
    "FaultSchedule",
    "InitiatorSpec",
    "LinkSpec",
    "NoSurvivingPathError",
    "NocSoc",
    "OverlappingFaultWindowError",
    "SocBuilder",
    "TargetSpec",
    "UnknownFaultTargetError",
]
