"""Build a Fig-1 style layered-NoC SoC from declarative specs."""

from __future__ import annotations

import math
from contextlib import nullcontext
from typing import Dict, List, Optional, Union

from repro.core.address_map import AddressMap
from repro.core.layer import TransactionLayerConfig, build_layer_config
from repro.core.services import ExclusiveMonitor, LockManager, NocService
from repro.ip.slaves import MemoryDevice
from repro.ip.traffic import TrafficSpec, WorkloadStallError
from repro.niu.ahb_niu import AhbInitiatorNiu
from repro.niu.axi_niu import AxiInitiatorNiu
from repro.niu.base import InitiatorNiu, TargetNiu
from repro.niu.ocp_niu import OcpInitiatorNiu
from repro.niu.proprietary_niu import MsgInitiatorNiu
from repro.niu.vci_niu import VciInitiatorNiu
from repro.phys.clocking import ClockDomain, make_clock_domain
from repro.phys.link import LinkSpec
from repro.protocols.ahb import AhbMaster
from repro.protocols.axi import AxiMaster
from repro.protocols.base import ProtocolMaster, SlaveSocket
from repro.protocols.ocp import OcpMaster
from repro.protocols.proprietary import MsgMaster
from repro.protocols.vci import AvciMaster, BvciMaster, PvciMaster
from repro.sim.kernel import RunBudgetExceededError, Simulator
from repro.sim.trace import Tracer
from repro.soc.config import EscapeVcPolicy, InitiatorSpec, TargetSpec
from repro.transport import topology as topo_mod
from repro.transport.network import Fabric
from repro.transport.router_core import resolve_router_core
from repro.transport.switching import SwitchingMode
from repro.transport.topology import Topology

_MASTER_CLASSES = {
    "AHB": AhbMaster,
    "AXI": AxiMaster,
    "OCP": OcpMaster,
    "PVCI": PvciMaster,
    "BVCI": BvciMaster,
    "AVCI": AvciMaster,
    "PROPRIETARY": MsgMaster,
}


def _make_initiator_niu(
    spec: InitiatorSpec,
    fabric: Fabric,
    endpoint: int,
    address_map: AddressMap,
    master: ProtocolMaster,
) -> InitiatorNiu:
    name = f"{spec.name}.niu"
    socket = master.socket
    if spec.protocol == "AHB":
        return AhbInitiatorNiu(name, fabric, endpoint, address_map, socket, spec.policy)
    if spec.protocol == "AXI":
        return AxiInitiatorNiu(name, fabric, endpoint, address_map, socket, spec.policy)
    if spec.protocol == "OCP":
        return OcpInitiatorNiu(name, fabric, endpoint, address_map, socket, spec.policy)
    if spec.protocol in ("PVCI", "BVCI", "AVCI"):
        return VciInitiatorNiu(
            name, fabric, endpoint, address_map, socket,
            flavor=spec.protocol, policy=spec.policy,
        )
    if spec.protocol == "PROPRIETARY":
        return MsgInitiatorNiu(name, fabric, endpoint, address_map, socket, spec.policy)
    raise ValueError(f"no NIU for protocol {spec.protocol!r}")


class NocSoc:
    """A built, runnable layered-NoC system."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        layer_config: TransactionLayerConfig,
        address_map: AddressMap,
        masters: Dict[str, ProtocolMaster],
        initiator_nius: Dict[str, InitiatorNiu],
        target_nius: Dict[str, TargetNiu],
        memories: Dict[str, MemoryDevice],
        shard_plan=None,
        shard_ownership=None,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.layer_config = layer_config
        self.address_map = address_map
        self.masters = masters
        self.initiator_nius = initiator_nius
        self.target_nius = target_nius
        self.memories = memories
        # Sharded builds (SocBuilder(shards=...)): the partition and the
        # component/queue -> shard ownership map (None otherwise).
        self.shard_plan = shard_plan
        self.shard_ownership = shard_ownership

    # ------------------------------------------------------------------ #
    def quiescent(self) -> bool:
        """All traffic drained everywhere."""
        return (
            all(m.finished() for m in self.masters.values())
            and self.fabric.idle()
            and all(m.idle() for m in self.memories.values())
            and all(t.outstanding == 0 for t in self.target_nius.values())
        )

    def run_to_completion(self, max_cycles: int = 200_000) -> int:
        """Run until every master's traffic fully completes.

        If the cycle budget elapses with at least one master's traffic
        unfinished, the bare kernel timeout is converted into a
        :class:`~repro.ip.traffic.WorkloadStallError` carrying every
        stuck source's own diagnosis (sources may implement
        ``diagnose_stall()`` — DMA engines name the halted/starved
        descriptor).  A timeout with all traffic retired — something
        stuck below the masters — re-raises untouched, as do the other
        SimulationError conditions (e.g. a partition watchdog).
        """
        try:
            return self.sim.run_until(self.quiescent, max_cycles=max_cycles)
        except RunBudgetExceededError as exc:
            reasons = []
            for name, master in sorted(self.masters.items()):
                if master.finished():
                    continue
                diagnose = getattr(master.traffic, "diagnose_stall", None)
                reason = diagnose() if diagnose is not None else None
                if reason is None:
                    reason = (
                        f"{name}: {master.outstanding} outstanding, "
                        f"pending intent="
                        f"{'yes' if master._pending is not None else 'no'}, "
                        f"traffic done={master.traffic.done()}"
                    )
                reasons.append(reason)
            if not reasons:
                raise
            raise WorkloadStallError(
                f"run_to_completion budget of {max_cycles} cycles elapsed "
                f"with stuck workload traffic: " + " | ".join(reasons)
            ) from exc

    def run(self, cycles: int) -> int:
        return self.sim.run(cycles)

    # ------------------------------------------------------------------ #
    # state capture
    # ------------------------------------------------------------------ #
    snapshot_version = 1

    def snapshot(self) -> dict:
        """Capture the full runtime state of the SoC as one state tree.

        The tree holds *live references* into the running system; hand it
        to :class:`repro.sweep.checkpoint.Checkpoint` (one shared-memo
        deepcopy) before stepping the simulator again.  Structure/wiring
        is not captured — restore targets a congruently rebuilt SoC.
        """
        from repro.core.transaction import _txn_ids
        from repro.transport.flit import _flit_packet_ids

        if self.shard_plan is not None:
            from repro.sim.shard import ShardConfigError

            raise ShardConfigError(
                "snapshot/checkpoint of sharded builds is out of scope "
                "for v1: per-source id streams are not captured, so a "
                "restore would not replay byte-identically — build "
                "without shards= for checkpoint sweeps"
            )

        return {
            "__v__": type(self).snapshot_version,
            "cycle": self.sim.cycle,
            "id_counters": {
                "txn": _txn_ids.snapshot(),
                "flit": _flit_packet_ids.snapshot(),
            },
            "sim": self.sim.snapshot(),
            "planes": {
                plane.name: plane.snapshot() for plane in self.fabric._planes
            },
        }

    def restore(self, state: dict) -> None:
        """Restore a state tree captured by :meth:`snapshot` into this
        (congruently built, typically fresh) SoC.  The caller owns
        defensive copying; the tree's objects are adopted directly."""
        from repro.core.transaction import _txn_ids
        from repro.sim.snapshot import SnapshotVersionError
        from repro.transport.flit import _flit_packet_ids

        version = state.get("__v__")
        if version != type(self).snapshot_version:
            raise SnapshotVersionError(
                f"NocSoc snapshot version {version!r} != "
                f"{type(self).snapshot_version}"
            )
        _txn_ids.restore(state["id_counters"]["txn"])
        _flit_packet_ids.restore(state["id_counters"]["flit"])
        self.sim.restore(state["sim"])
        for plane in self.fabric._planes:
            plane.restore(state["planes"][plane.name])

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def master_latency(self, name: str) -> Dict[str, float]:
        return self.sim.stats.latency(f"{name}.txn").histogram.summary()

    def aggregate_latency(self) -> Dict[str, float]:
        from repro.sim.stats import Histogram

        merged = Histogram("all-masters")
        for name in self.masters:
            hist = self.sim.stats.latency(f"{name}.txn").histogram
            for sample in hist.samples:
                merged.add(sample)
        return merged.summary()

    def flow_stats(self) -> Dict[str, Dict[str, Dict[str, Dict[str, float]]]]:
        """Per-flow latency percentiles — the fabric's SLA surface.

        Every delivered packet's injection-to-delivery latency (in kernel
        cycles, stamped at segmentation) is recorded by the ejection
        ports; this groups the histograms per direction::

            {"request"|"response": {
                "priority": {prio: summary},          # per priority class
                "pairs": {"src->dst": summary},       # per endpoint pair
            }}

        Each ``summary`` is :meth:`Histogram.summary` — count/mean/min/
        p50/p95/p99/p999/max.  On a ``vc_separation`` fabric both
        directions share one plane, so "request" and "response" return
        the same merged histograms.
        """
        out: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = {}
        registry = self.sim.stats._histograms
        for direction, plane in (
            ("request", self.fabric.request_plane),
            ("response", self.fabric.response_plane),
        ):
            prefix = f"{plane.name}.flow."
            by_prio: Dict[str, Dict[str, float]] = {}
            by_pair: Dict[str, Dict[str, float]] = {}
            for name in sorted(registry):
                if not name.startswith(prefix):
                    continue
                key = name[len(prefix):]
                summary = registry[name].summary()
                if key.startswith("prio"):
                    by_prio[key[4:]] = summary
                elif key.startswith("pair."):
                    by_pair[key[5:]] = summary
            out[direction] = {"priority": by_prio, "pairs": by_pair}
        return out

    def total_completed(self) -> int:
        return sum(m.completed for m in self.masters.values())

    def ordering_violations(self) -> int:
        return sum(len(m.checker.violations) for m in self.masters.values())

    def memory_image(self) -> Dict[str, Dict[int, int]]:
        """Byte image of every memory (layer-independence fingerprint)."""
        return {
            name: mem.store.image() for name, mem in sorted(self.memories.items())
        }


class SocBuilder:
    """Accumulates specs, then :meth:`build`\\ s a :class:`NocSoc`.

    Fabric-level knobs (switching mode, flit width, arbiter, routing,
    topology) are all constructor parameters so benchmarks can sweep them
    while holding the IP and NIU configuration constant — the layering
    experiments depend on exactly that separation.

    Physical-layer knobs (all default to the ideal physical layer, which
    is cycle-identical to a build that never mentions them):

    - ``links`` — a :class:`~repro.phys.link.LinkSpec` applied to every
      inter-router connection, or a mapping with keys ``"router"``
      (inter-router links) and/or ``"endpoint"`` (NIU↔router links);
    - ``clock_domains`` — mapping of domain name to
      :class:`~repro.phys.clocking.ClockDomain`, integer divisor, or
      ``(divisor, phase)`` tuple; these are the names initiator/target
      ``region=`` fields and ``fabric_region`` refer to;
    - ``fabric_region`` — the clock domain the routers (and the fabric
      side of every link) run in; ``None`` = kernel reference clock.
      Endpoints whose region differs from the fabric's domain get CDC
      synchronizers folded into their links automatically.

    Transport-layer VC knobs (defaults are the single-VC fabric,
    cycle-identical to a build that never mentions them):

    - ``vcs`` — virtual channels per link (per plane);
    - ``vc_policy`` — a :class:`~repro.transport.routing.VcPolicy`
      instance or name (``"keep"``, ``"priority"``, ``"dateline"``,
      ``"escape"``); the dateline policy plus ``routing="dor"`` makes
      ring/torus wormhole fabrics deadlock-free with 2 VCs;
    - ``vc_separation`` — carry requests and responses on disjoint VC
      classes of a *single* plane instead of two independent planes
      (``vcs`` must be even).

    Adaptive routing (``routing="adaptive"``): every hop may forward on
    any output of the minimal set, chosen per cycle by downstream
    congestion, with the top two VCs reserved as the deterministic
    escape subnetwork (DOR + dateline) that keeps the fabric
    deadlock-free — see :class:`~repro.transport.routing.EscapeVcPolicy`.
    ``adaptive_vcs=N`` sizes the adaptive class (total ``vcs`` becomes
    ``N + 2``); alternatively set ``vcs`` directly (defaults to 3 — one
    adaptive VC plus the escape pair — when neither is given).
    """

    _LINK_CLASSES = ("router", "endpoint")

    def __init__(
        self,
        name: str = "soc",
        mode: SwitchingMode = SwitchingMode.WORMHOLE,
        flit_payload_bits: int = 128,
        buffer_capacity: int = 8,
        arbiter: str = "priority",
        routing: str = "table",
        topology: Optional[Topology] = None,
        trace: Optional[Tracer] = None,
        transport_lock_support: Optional[bool] = None,
        strict_kernel: Optional[bool] = None,
        links: Optional[Union[LinkSpec, Dict[str, LinkSpec]]] = None,
        clock_domains: Optional[Dict[str, object]] = None,
        fabric_region: Optional[str] = None,
        vcs: int = 1,
        vc_policy=None,
        vc_separation: bool = False,
        adaptive_vcs: Optional[int] = None,
        stream_fast_path: bool = True,
        faults=None,
        router_core: Optional[str] = None,
        traffic=None,
        workload=None,
        shards=None,
    ) -> None:
        self.name = name
        self.mode = mode
        self.flit_payload_bits = flit_payload_bits
        self.buffer_capacity = buffer_capacity
        self.arbiter = arbiter
        self.routing = routing
        self.topology = topology
        self.trace = trace
        # None = derive from the socket set (LEGACY_LOCK service);
        # False = ablation: locks serialized at the target NIU only.
        self.transport_lock_support = transport_lock_support
        # None = activity-driven kernel (or REPRO_SIM_STRICT env);
        # True = brute-force tick-everything reference kernel.
        self.strict_kernel = strict_kernel
        self.links = links
        self.clock_domains = clock_domains
        self.fabric_region = fabric_region
        self.vcs = vcs
        self.vc_policy = vc_policy
        self.vc_separation = vc_separation
        self.adaptive_vcs = adaptive_vcs
        # Router body-flit streaming fast path (PR 5).  On by default —
        # byte-identical to the reference arbitration (pinned by
        # tests/test_event_wheel.py); the knob exists so experiments and
        # regressions can run the slow path declaratively.
        self.stream_fast_path = stream_fast_path
        # Deterministic fault schedule (PR 6): a
        # :class:`~repro.transport.faults.FaultSchedule` applied to every
        # plane of the fabric, validated at build time with named errors.
        self.faults = faults
        # Router hot-core executor (PR 7): "object" | "array" | "batched".
        # None resolves the REPRO_ROUTER_CORE env var, defaulting to the
        # batched struct-of-arrays stepper; the determinism suite pins
        # all three byte-identical (see transport.router_core).
        self.router_core = router_core
        # Declarative traffic (PR 9): traffic= is an iterable of
        # TrafficSpec records (each naming its master=), workload= maps
        # initiator name -> ready TrafficSource or TrafficSpec.  Both
        # override/fill the per-spec traffic at build time, so initiators
        # can be declared with traffic=None and wired by a scenario.
        self.traffic = traffic
        self.workload = workload
        # Sharded fabric (PR 10): shards=N partitions the topology into N
        # contiguous stripes (plan_shards), shards=ShardPlan(...) gives
        # the partition explicitly.  The build is then annotated with
        # ownership metadata and per-source id streams so the same SoC
        # runs byte-identically in one process or across N worker
        # processes (repro.sweep.parallel).  Incompatible knobs (faults,
        # strict kernel, enabled tracer, transparent inter-router links)
        # raise ShardConfigError at build time.
        self.shards = shards
        self.initiators: List[InitiatorSpec] = []
        self.targets: List[TargetSpec] = []

    # ------------------------------------------------------------------ #
    def add_initiator(self, spec: InitiatorSpec) -> "SocBuilder":
        if any(s.name == spec.name for s in self.initiators):
            raise ValueError(f"duplicate initiator {spec.name!r}")
        self.initiators.append(spec)
        return self

    def add_target(self, spec: TargetSpec) -> "SocBuilder":
        if any(s.name == spec.name for s in self.targets):
            raise ValueError(f"duplicate target {spec.name!r}")
        self.targets.append(spec)
        return self

    # ------------------------------------------------------------------ #
    def _resolve_traffic(self) -> Dict[str, object]:
        """Merge the ``traffic=``/``workload=`` knobs into one validated
        per-initiator source-override map."""
        overrides: Dict[str, object] = {}
        names = {spec.name for spec in self.initiators}

        def assign(name: str, value, knob: str) -> None:
            if name not in names:
                raise ValueError(
                    f"{knob}: no initiator named {name!r}; declared "
                    f"initiators: {sorted(names)}"
                )
            if name in overrides:
                raise ValueError(
                    f"{knob}: initiator {name!r} was given traffic twice"
                )
            overrides[name] = value

        for spec in self.traffic or []:
            if not isinstance(spec, TrafficSpec):
                raise ValueError(
                    f"traffic=[...] entries must be TrafficSpec instances, "
                    f"got {type(spec).__name__}"
                )
            if spec.master is None:
                raise ValueError(
                    "traffic=[...]: every TrafficSpec needs "
                    "master=<initiator name>"
                )
            assign(spec.master, spec, "traffic")
        for name, value in (self.workload or {}).items():
            assign(name, value, "workload")
        return overrides

    # ------------------------------------------------------------------ #
    def _default_topology(self, endpoints: int) -> Topology:
        width = max(2, math.ceil(math.sqrt(endpoints)))
        height = max(2, math.ceil(endpoints / width))
        return topo_mod.mesh(width, height, endpoints=endpoints)

    def _build_address_map(self) -> AddressMap:
        address_map = AddressMap()
        cursor = 0
        n_init = len(self.initiators)
        for index, spec in enumerate(self.targets):
            base = spec.base
            if base is None:
                base = cursor
            try:
                address_map.add_range(
                    base, spec.size, slv_addr=n_init + index, name=spec.name
                )
            except ValueError as exc:
                # Aliased targets are a spec bug: name the offender so
                # the fix points at the TargetSpec, not the map internals.
                raise ValueError(
                    f"target {spec.name!r}: explicit base {base:#x} aliases "
                    f"an already-assigned range in the SoC address map "
                    f"({exc})"
                ) from exc
            cursor = max(cursor, base + spec.size)
        return address_map

    # ------------------------------------------------------------------ #
    # physical-layer resolution
    # ------------------------------------------------------------------ #
    def _resolve_clock_domains(self) -> Dict[str, ClockDomain]:
        return {
            name: make_clock_domain(name, value)
            for name, value in (self.clock_domains or {}).items()
        }

    def _domain_for(
        self,
        region: Optional[str],
        domains: Dict[str, ClockDomain],
        owner: str,
    ) -> Optional[ClockDomain]:
        if region is None:
            return None
        try:
            return domains[region]
        except KeyError:
            raise ValueError(
                f"{owner}: unknown clock region {region!r}; declared "
                f"domains: {sorted(domains) or '(none)'}"
            ) from None

    def _resolve_links(self) -> Dict[str, Optional[LinkSpec]]:
        """Normalize the ``links=`` knob to {"router": spec, "endpoint": spec}."""
        resolved: Dict[str, Optional[LinkSpec]] = {
            cls: None for cls in self._LINK_CLASSES
        }
        if self.links is None:
            return resolved
        if isinstance(self.links, LinkSpec):
            resolved["router"] = self.links
            return resolved
        for cls, spec in self.links.items():
            if cls not in self._LINK_CLASSES:
                raise ValueError(
                    f"links: unknown link class {cls!r}; known: "
                    f"{self._LINK_CLASSES}"
                )
            if not isinstance(spec, LinkSpec):
                raise ValueError(f"links[{cls!r}]: expected a LinkSpec")
            resolved[cls] = spec
        return resolved

    def build(self) -> NocSoc:
        if not self.initiators:
            raise ValueError("SoC needs at least one initiator")
        if not self.targets:
            raise ValueError("SoC needs at least one target")
        sim = Simulator(trace=self.trace, strict=self.strict_kernel)
        endpoints = len(self.initiators) + len(self.targets)
        topology = self.topology or self._default_topology(endpoints)

        # Sharded fabric: resolve the plan and start ownership recording.
        shard_plan = None
        shard_ownership = None
        if self.shards is not None:
            from repro.sim.shard import (
                ShardConfigError,
                ShardOwnership,
                ShardPlan,
                plan_shards,
            )

            if sim.strict:
                raise ShardConfigError(
                    "the strict reference kernel cannot drive sharded "
                    "builds (strict_kernel=True or REPRO_SIM_STRICT): it "
                    "ticks every component every cycle, which the "
                    "activity-driven round protocol does not reproduce — "
                    "drop strict_kernel or shards"
                )
            if sim.trace.enabled:
                raise ShardConfigError(
                    "tracing is out of scope for sharded builds (v1): "
                    "per-shard event streams have no global order to "
                    "merge under — disable the tracer or drop shards"
                )
            if isinstance(self.shards, ShardPlan):
                shard_plan = self.shards
            else:
                shard_plan = plan_shards(topology, int(self.shards))
            shard_ownership = ShardOwnership(sim, shard_plan.n_shards)

        # Physical layer: clock regions and per-link-class wire specs.
        domains = self._resolve_clock_domains()
        fabric_domain = self._domain_for(self.fabric_region, domains, "fabric")
        link_specs = self._resolve_links()
        endpoint_domains: Dict[int, ClockDomain] = {}
        for endpoint, ispec in enumerate(self.initiators):
            domain = self._domain_for(
                ispec.region, domains, f"initiator {ispec.name!r}"
            )
            if domain is not None:
                endpoint_domains[endpoint] = domain
        n_init_specs = len(self.initiators)
        for index, tspec in enumerate(self.targets):
            domain = self._domain_for(
                tspec.region, domains, f"target {tspec.name!r}"
            )
            if domain is not None:
                endpoint_domains[n_init_specs + index] = domain

        # Transaction-layer configuration from the attached socket set —
        # the paper's per-SoC customization step.
        max_outstanding = max(
            (s.policy.max_outstanding for s in self.initiators if s.policy),
            default=8,
        )
        layer_config = build_layer_config(
            protocols=[s.protocol for s in self.initiators],
            initiators=len(self.initiators),
            targets=len(self.targets),
            max_outstanding=max(8, max_outstanding),
        )

        # VC-count resolution for adaptive fabrics: adaptive_vcs sizes the
        # adaptive class on top of the escape pair; a bare
        # routing="adaptive" defaults to the minimal 1 + 2 split.
        vcs = self.vcs
        if self.adaptive_vcs is not None:
            if self.routing != "adaptive":
                raise ValueError(
                    f"adaptive_vcs={self.adaptive_vcs} requires "
                    f"routing='adaptive', got routing={self.routing!r}"
                )
            if self.adaptive_vcs < 1:
                raise ValueError("adaptive_vcs must be >= 1")
            if vcs != 1:
                raise ValueError(
                    "give either vcs (total VC count) or adaptive_vcs "
                    "(adaptive class size), not both"
                )
            vcs = self.adaptive_vcs + EscapeVcPolicy.escape_vcs
        elif self.routing == "adaptive" and vcs == 1:
            vcs = 1 + EscapeVcPolicy.escape_vcs

        fabric = Fabric(
            sim,
            topology,
            name=self.name,
            mode=self.mode,
            flit_payload_bits=self.flit_payload_bits,
            buffer_capacity=self.buffer_capacity,
            arbiter=self.arbiter,
            packet_format=layer_config.packet_format,
            routing=self.routing,
            lock_support=(
                NocService.LEGACY_LOCK in layer_config.services
                if self.transport_lock_support is None
                else self.transport_lock_support
            ),
            link_spec=link_specs["router"],
            endpoint_link_spec=link_specs["endpoint"],
            fabric_domain=fabric_domain,
            endpoint_domains=endpoint_domains,
            vcs=vcs,
            vc_policy=self.vc_policy,
            vc_separation=self.vc_separation,
            stream_fast_path=self.stream_fast_path,
            faults=self.faults,
            router_core=resolve_router_core(self.router_core),
            shard_plan=shard_plan,
            shard_ownership=shard_ownership,
        )
        address_map = self._build_address_map()

        def owned_by_endpoint(endpoint: int):
            if shard_ownership is None:
                return nullcontext()
            return shard_ownership.owned_by(
                shard_plan.shard_of(topology.router_of(endpoint))
            )

        traffic_overrides = self._resolve_traffic()
        masters: Dict[str, ProtocolMaster] = {}
        initiator_nius: Dict[str, InitiatorNiu] = {}
        for endpoint, spec in enumerate(self.initiators):
            master_cls = _MASTER_CLASSES[spec.protocol]
            source = traffic_overrides.get(spec.name, spec.traffic)
            if isinstance(source, TrafficSpec):
                source = source.build(spec.name)
            if source is None:
                raise ValueError(
                    f"initiator {spec.name!r} has no traffic source — give "
                    f"InitiatorSpec(traffic=...), SocBuilder(traffic=[...])"
                    f" or workload={{...}}"
                )
            with owned_by_endpoint(endpoint):
                master = master_cls(
                    spec.name, sim, source, **spec.protocol_kwargs
                )
                domain = endpoint_domains.get(endpoint)
                if domain is not None:
                    master.set_clock_domain(domain)
                sim.add(master)
                niu = _make_initiator_niu(
                    spec, fabric, endpoint, address_map, master
                )
                if domain is not None:
                    niu.set_clock_domain(domain)
                sim.add(niu)
            masters[spec.name] = master
            initiator_nius[spec.name] = niu

        target_nius: Dict[str, TargetNiu] = {}
        memories: Dict[str, MemoryDevice] = {}
        n_init = len(self.initiators)
        for index, spec in enumerate(self.targets):
            endpoint = n_init + index
            with owned_by_endpoint(endpoint):
                self._build_target(
                    spec,
                    endpoint,
                    sim,
                    fabric,
                    layer_config,
                    endpoint_domains,
                    target_nius,
                    memories,
                )

        soc = NocSoc(
            sim,
            fabric,
            layer_config,
            address_map,
            masters,
            initiator_nius,
            target_nius,
            memories,
            shard_plan=shard_plan,
            shard_ownership=shard_ownership,
        )
        if shard_plan is not None:
            self._install_shard_id_streams(soc)
            shard_ownership.finalize()
        return soc

    def _build_target(
        self,
        spec,
        endpoint: int,
        sim,
        fabric,
        layer_config,
        endpoint_domains,
        target_nius,
        memories,
    ) -> None:
        socket = SlaveSocket(sim, f"{spec.name}.sock")
        monitor = (
            ExclusiveMonitor(name=f"{spec.name}.monitor")
            if NocService.EXCLUSIVE_ACCESS in layer_config.services
            else None
        )
        locks = (
            LockManager(name=f"{spec.name}.locks")
            if NocService.LEGACY_LOCK in layer_config.services
            else None
        )
        target_niu = TargetNiu(
            f"{spec.name}.niu",
            fabric,
            endpoint,
            socket,
            max_outstanding=spec.max_outstanding,
            exclusive_monitor=monitor,
            lock_manager=locks,
        )
        domain = endpoint_domains.get(endpoint)
        if domain is not None:
            target_niu.set_clock_domain(domain)
        sim.add(target_niu)
        memory = MemoryDevice(
            spec.name,
            socket,
            size=spec.size,
            read_latency=spec.read_latency,
            write_latency=spec.write_latency,
            per_beat_cycles=spec.per_beat_cycles,
            error_ranges=spec.error_ranges,
        )
        if domain is not None:
            memory.set_clock_domain(domain)
        sim.add(memory)
        target_nius[spec.name] = target_niu
        memories[spec.name] = memory

    def _install_shard_id_streams(self, soc: NocSoc) -> None:
        """Give every id-allocating component its own id stream.

        A single-process run interleaves all sources on the process
        globals (``transaction._txn_ids`` / ``flit._flit_packet_ids``);
        worker processes only run their own sources, so the allocation
        interleaving — and with it the id *values*, which leak into
        behavior through protocol id truncation (VCI's 8-bit pktid) —
        would differ.  Scoped streams make allocation a per-source
        affair: identical values whether the sources run together or
        apart.  Streams are a pure function of the build (endpoint and
        port order), so every process derives the same ones.
        """
        from repro.sim.shard import (
            scope_packet_ids,
            scope_txn_ids,
            txn_id_stream,
        )

        for endpoint, spec in enumerate(self.initiators):
            stream = txn_id_stream(endpoint)
            # Master and its NIU share the endpoint's stream: both
            # allocate on behalf of the same source.
            scope_txn_ids(soc.masters[spec.name], stream)
            scope_txn_ids(soc.initiator_nius[spec.name], stream)
        n_init = len(self.initiators)
        for index, spec in enumerate(self.targets):
            stream = txn_id_stream(n_init + index)
            scope_txn_ids(soc.target_nius[spec.name], stream)
            scope_txn_ids(soc.memories[spec.name], stream)
        scope = len(self.initiators) + len(self.targets)
        for plane in soc.fabric._planes:
            for endpoint in sorted(plane.injection_ports):
                scope_packet_ids(
                    plane.injection_ports[endpoint], txn_id_stream(scope)
                )
                scope += 1
