"""repro — reproduction of "Design of a Virtual Component Neutral
Network-on-Chip Transaction Layer" (Philippe Martin, DATE 2005).

Public entry points:

- :class:`repro.soc.SocBuilder` / :func:`repro.bus.build_bus_soc` — build
  the Fig-1 (layered NoC) and Fig-2 (bridged bus) systems from the same
  declarative specs;
- :mod:`repro.core` — the transaction layer itself (packets, ordering
  models, NoC services);
- :mod:`repro.ip` — workload generators and memory targets;
- :mod:`repro.niu` — NIUs, tag policies and the gate-count model.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

__version__ = "0.1.0"

from repro.soc import InitiatorSpec, SocBuilder, TargetSpec

__all__ = ["InitiatorSpec", "SocBuilder", "TargetSpec", "__version__"]
