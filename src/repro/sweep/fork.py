"""Fork one warmed simulation prefix into N what-if continuations.

The design-space question "how would *this same* warmed-up system behave
under a different load / VC budget / fault future?" usually costs N full
runs.  With checkpoints it costs one prefix plus N continuations: run the
common prefix once, :meth:`Checkpoint.capture` it, then :func:`fork` —
each continuation rebuilds a congruent SoC, restores the checkpoint,
applies its override and runs on.  Because restore is byte-identical, a
forked continuation equals a cold run that applied the same override at
the same cycle; the sweep is a pure wall-clock optimisation.

Overrides come in two kinds:

- **fork** (``apply=``): a state-compatible tweak — traffic rate, an
  extended fault schedule (:meth:`FaultInjector.extend_schedule`), an
  arbiter knob.  Warm-started from the checkpoint.
- **cold** (``build=``): a structural change — VC count, routing mode,
  topology — that makes the checkpoint non-congruent.  Run cold from
  cycle 0 (prefix + continuation) with the alternate builder, and
  flagged ``"mode": "cold"`` in the report so the cost difference is
  visible.

Everything handed to a process pool (builders, overrides, collectors)
must be module-level picklable; ``processes=0`` runs serially in-process
and accepts arbitrary callables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.sweep.checkpoint import Checkpoint
from repro.sweep.worker import bootstrap_soc, mp_context


@dataclass(frozen=True)
class Override:
    """One what-if configuration of the sweep.

    Exactly one of ``apply`` (fork from the checkpoint) or ``build``
    (cold run with an alternate builder) must be provided.  ``apply``
    receives the restored SoC at the fork cycle, before any further
    stepping; ``build`` is a zero-argument callable returning a fresh
    SoC of the alternate structure.
    """

    name: str
    apply: Optional[Callable] = None
    build: Optional[Callable] = None

    def __post_init__(self) -> None:
        if (self.apply is None) == (self.build is None):
            raise ValueError(
                f"override {self.name!r}: provide exactly one of "
                f"apply= (fork) or build= (cold)"
            )


def default_collect(soc) -> Dict:
    """Metrics recorded per configuration when no collector is given."""
    return {
        "cycle": soc.sim.cycle,
        "completed": soc.total_completed(),
        "latency": soc.aggregate_latency(),
        "flits_forwarded": soc.fabric.total_flits_forwarded(),
    }


def run_cold(
    builder: Callable,
    override: Override,
    fork_cycle: int,
    run_cycles: int,
    collect: Callable = default_collect,
) -> Dict:
    """Reference path: full run with the override applied at ``fork_cycle``.

    This is exactly what a forked continuation must reproduce — the
    equivalence tests and the bench's ``results_match`` flag compare
    against it.
    """
    soc = bootstrap_soc(builder if override.build is None else override.build)
    soc.run(fork_cycle)
    if override.apply is not None:
        override.apply(soc)
    soc.run(run_cycles)
    return collect(soc)


def _run_fork_task(task) -> Dict:
    """Pool worker: one continuation (module-level for picklability)."""
    ckpt_bytes, builder, override, run_cycles, fork_cycle, collect = task
    if override.build is not None:
        # Structural override: the checkpoint is non-congruent; pay for
        # the prefix again with the alternate builder.
        return run_cold(builder, override, fork_cycle, run_cycles, collect)
    soc = bootstrap_soc(builder)
    Checkpoint.from_bytes(ckpt_bytes).restore_into(soc)
    override.apply(soc)
    soc.run(run_cycles)
    return collect(soc)


def fork(
    checkpoint: Checkpoint,
    overrides: Sequence[Override],
    *,
    builder: Callable,
    cycles: int,
    processes: int = 0,
    collect: Callable = default_collect,
) -> Dict:
    """Run every override for ``cycles`` past the checkpoint.

    Parameters
    ----------
    checkpoint:
        The captured common prefix (see :meth:`Checkpoint.capture`).
    overrides:
        The configurations to explore; report order follows input order
        regardless of which worker finishes first.
    builder:
        Zero-argument callable rebuilding a SoC congruent with the
        checkpoint (the same builder that produced the captured run).
    cycles:
        Continuation length past the fork cycle.
    processes:
        0 = serial in-process (deterministic, no pickling constraints);
        N > 0 = a ``multiprocessing`` pool of N workers.

    Returns a report dict keyed by configuration name::

        {"fork_cycle": C, "run_cycles": N,
         "configs": {name: {"mode": "fork"|"cold", "metrics": {...}}}}
    """
    if not overrides:
        raise ValueError("fork() needs at least one override")
    names = [o.name for o in overrides]
    if len(set(names)) != len(names):
        raise ValueError(f"override names must be unique, got {names}")
    fork_cycle = checkpoint.cycle
    tasks = [
        (
            checkpoint.to_bytes() if override.build is None else b"",
            builder,
            override,
            cycles,
            fork_cycle,
            collect,
        )
        for override in overrides
    ]
    if processes and processes > 0:
        with mp_context().Pool(processes) as pool:
            results: List[Dict] = pool.map(_run_fork_task, tasks)
    else:
        results = [_run_fork_task(task) for task in tasks]
    return {
        "fork_cycle": fork_cycle,
        "run_cycles": cycles,
        "configs": {
            override.name: {
                "mode": "cold" if override.build is not None else "fork",
                "metrics": metrics,
            }
            for override, metrics in zip(overrides, results)
        },
    }
