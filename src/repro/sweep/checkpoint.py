"""Freeze/thaw a running SoC as a self-contained checkpoint.

``NocSoc.snapshot()`` returns a *live-reference* state tree — fast to
build, but aliased into the running system.  :meth:`Checkpoint.capture`
detaches it with one shared-memo :func:`copy.deepcopy`, so every
cross-object alias inside the tree (a router's cached flit that is also
a queue's front flit, a state-table entry aliased by a peek cache) stays
one object on the other side.  :meth:`Checkpoint.restore_into` deepcopies
*again* on the way out, so a single checkpoint can seed any number of
what-if runs without them contaminating each other.

Serialization is :mod:`pickle` (the tree holds model dataclasses —
flits, packets, transactions — not just JSON scalars) wrapped in a
versioned envelope; :class:`CheckpointFormatError` names format
mismatches instead of letting unpickling fail obscurely.
"""

from __future__ import annotations

import copy
import io
import pickle
from typing import BinaryIO, Union

#: Bump when the on-disk envelope (not the state tree) changes shape.
FORMAT_VERSION = 1

_MAGIC = b"repro-ckpt"


class CheckpointFormatError(RuntimeError):
    """Bytes that are not a checkpoint, or one from another format era."""


class Checkpoint:
    """A detached, reusable snapshot of a :class:`NocSoc` at one cycle."""

    def __init__(self, state: dict) -> None:
        self._state = state

    # ------------------------------------------------------------------ #
    # capture / restore
    # ------------------------------------------------------------------ #
    @classmethod
    def capture(cls, soc) -> "Checkpoint":
        """Snapshot ``soc`` right now (one shared-memo deepcopy)."""
        return cls(copy.deepcopy(soc.snapshot()))

    def restore_into(self, soc) -> None:
        """Load this checkpoint into a congruently built SoC.

        The state handed over is a fresh deepcopy, so the checkpoint
        stays pristine and may be restored again (the fork sweep relies
        on this).
        """
        soc.restore(copy.deepcopy(self._state))

    @property
    def cycle(self) -> int:
        """The simulator cycle at which the checkpoint was taken."""
        return self._state["cycle"]

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        buffer = io.BytesIO()
        buffer.write(_MAGIC)
        buffer.write(bytes([FORMAT_VERSION]))
        pickle.dump(self._state, buffer, protocol=pickle.HIGHEST_PROTOCOL)
        return buffer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Checkpoint":
        if data[: len(_MAGIC)] != _MAGIC:
            raise CheckpointFormatError(
                "not a checkpoint (bad magic prefix)"
            )
        version = data[len(_MAGIC)]
        if version != FORMAT_VERSION:
            raise CheckpointFormatError(
                f"checkpoint format version {version} != {FORMAT_VERSION}"
            )
        return cls(pickle.loads(data[len(_MAGIC) + 1 :]))

    def save(self, target: Union[str, BinaryIO]) -> None:
        if hasattr(target, "write"):
            target.write(self.to_bytes())
        else:
            with open(target, "wb") as handle:
                handle.write(self.to_bytes())

    @classmethod
    def load(cls, source: Union[str, BinaryIO]) -> "Checkpoint":
        if hasattr(source, "read"):
            return cls.from_bytes(source.read())
        with open(source, "rb") as handle:
            return cls.from_bytes(handle.read())
