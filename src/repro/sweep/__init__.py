"""Checkpointing and fork-based design-space sweeps.

:class:`~repro.sweep.checkpoint.Checkpoint` freezes a running
:class:`~repro.soc.builder.NocSoc` into a self-contained, serializable
state tree; :func:`~repro.sweep.fork.fork` warm-starts one simulated
prefix and forks N what-if continuations (load points, fault schedules,
parameter tweaks) across a process pool, producing a deterministic
comparison report; :func:`~repro.sweep.parallel.run_sharded` runs a
``SocBuilder(shards=N)`` build as one conservative shard-worker process
per shard, byte-identical to the single-process run.
"""

from repro.sweep.checkpoint import Checkpoint, CheckpointFormatError
from repro.sweep.fork import Override, fork
from repro.sweep.parallel import ShardWorkerError, run_sharded

__all__ = [
    "Checkpoint",
    "CheckpointFormatError",
    "Override",
    "ShardWorkerError",
    "fork",
    "run_sharded",
]
