"""Conservative parallel execution of a sharded build across processes.

:func:`run_sharded` drives a SoC built with ``SocBuilder(shards=N)``
either in this process (``processes=0`` — the reference run every
parallel run must reproduce byte-identically) or across one worker
process per shard.  Workers run the ordinary event-wheel kernel on
their own shard (every foreign component muted, see
:func:`repro.sim.shard.restrict_to_shard`); the coordinator owns the
clock protocol:

1. every worker reports its next local event cycle ``E_k`` (or None if
   dormant until an envelope arrives);
2. the coordinator computes the round bound
   ``B = max(T, min(E_k, pending envelope horizons)) + W`` — ``W`` the
   fabric-wide lookahead window (min over cut links of
   ``min(1 + pipeline_latency, credit_return_latency)``) — clipped to
   the requested run length;
3. workers apply the boundary batches routed to them, simulate to
   ``B``, and return whatever their boundary halves emitted.

Any envelope emitted during ``[T, B)`` originates at an event cycle
``>= min_k E_k``, so it matures at or after ``B`` — exchanging only at
barriers is exact (see the :mod:`repro.sim.shard` module docstring for
the proof sketch).  Batches are dispatched in canonical order (sorted
by boundary-link name, envelopes sorted by ``(cycle, seq)``), so the
merged run is byte-identical to the single-process run of the same
build, independent of worker scheduling.

Timing is reported on two bases, because the speedup claim and the
wall clock answer different questions on a shared machine:

- ``wall_s`` — honest end-to-end wall time of this run, workers and
  coordinator included.  On a single-CPU host the workers time-slice
  one core, so ``wall_s`` of a parallel run is never better than the
  single-process run.
- ``critical_path_s`` — per round, the *slowest worker's* simulate
  time, plus all coordinator routing/dispatch time; summed over
  rounds.  Worker time is CPU time (``time.process_time``), not wall
  time: on a box with fewer cores than workers the workers time-slice,
  and a descheduled worker's wall clock would charge it for its
  siblings' work.  CPU time is what each worker would take with a core
  of its own (workers within a round are independent), so the sum of
  per-round maxima is the wall time the protocol would deliver on an
  unshared machine — the basis for ``parallel_speedup``.  The
  coordinator's recv-side deserialization overlaps worker compute in
  that model and is not charged.  The bench records both bases so the
  claim is auditable.

Only fixed-cycle runs are supported (``soc.run(cycles)`` semantics);
run-to-completion across shards needs a global quiescence detector and
is an open item on the ROADMAP.
"""

from __future__ import annotations

import time
import traceback
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.shard import (
    ShardConfigError,
    fingerprint_shard,
    merge_shard_fingerprints,
    restrict_to_shard,
    shard_next_event,
)
from repro.sweep.worker import bootstrap_soc, mp_context


class ShardWorkerError(RuntimeError):
    """A shard worker process died or raised; carries its traceback."""


# --------------------------------------------------------------------- #
# shared helpers (worker and in-process paths)
# --------------------------------------------------------------------- #
def _boundary_halves(soc) -> Tuple[Dict[str, object], Dict[str, object]]:
    """All boundary tx/rx halves across planes, keyed by component name."""
    all_tx: Dict[str, object] = {}
    all_rx: Dict[str, object] = {}
    for plane in soc.fabric._planes:
        for tx in plane.boundary_tx.values():
            all_tx[tx.name] = tx
        for rx in plane.boundary_rx.values():
            all_rx[rx.name] = rx
    return all_tx, all_rx


def _boundary_meta(soc) -> Dict:
    """Routing metadata the coordinator needs — derived from the build
    (identical in every worker), so the coordinator never builds."""
    plan = soc.shard_plan
    flit_routes: Dict[str, str] = {}
    credit_routes: Dict[str, str] = {}
    rx_shard: Dict[str, int] = {}
    tx_shard: Dict[str, int] = {}
    credit_return: Dict[str, int] = {}
    windows: List[int] = []
    for plane in soc.fabric._planes:
        for (src, dst), tx in plane.boundary_tx.items():
            rx = plane.boundary_rx[(src, dst)]
            flit_routes[tx.name] = rx.name
            credit_routes[rx.name] = tx.name
            tx_shard[tx.name] = plan.shard_of(src)
            rx_shard[rx.name] = plan.shard_of(dst)
            credit_return[tx.name] = tx.credit_return_latency
            windows.append(tx.window)
    return {
        "n_shards": plan.n_shards,
        "window": min(windows) if windows else 1,
        "flit_routes": flit_routes,
        "credit_routes": credit_routes,
        "rx_shard": rx_shard,
        "tx_shard": tx_shard,
        "credit_return": credit_return,
    }


def _shard_metrics(soc, shard: Optional[int]) -> Dict[str, int]:
    """Traffic counters for this shard (``shard=None``: the whole SoC)."""
    owner = (
        soc.shard_ownership.component_owner if shard is not None else None
    )

    def mine(name: str) -> bool:
        return owner is None or owner.get(name) == shard

    flits = 0
    for plane in soc.fabric._planes:
        for router in plane.routers.values():
            if mine(router.name):
                flits += router.flits_forwarded
    phits = sum(
        link.phits_carried
        for link in soc.fabric.physical_links
        if mine(link.name)
    )
    all_tx, __ = _boundary_halves(soc)
    phits += sum(tx.phits_carried for tx in all_tx.values() if mine(tx.name))
    completed = sum(
        m.completed for m in soc.masters.values() if mine(m.name)
    )
    return {
        "flits_forwarded": flits,
        "phits_carried": phits,
        "completed": completed,
    }


# --------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------- #
def _shard_worker_main(conn, builder: Callable, shard: int) -> None:
    try:
        soc = bootstrap_soc(builder)
        if soc.shard_plan is None:
            raise ShardConfigError(
                "run_sharded() needs a sharded build — construct with "
                "SocBuilder(shards=...)"
            )
        restrict_to_shard(soc, shard)
        all_tx, all_rx = _boundary_halves(soc)
        owner = soc.shard_ownership.component_owner
        owned_tx = [
            name for name in sorted(all_tx) if owner[name] == shard
        ]
        owned_rx = [
            name for name in sorted(all_rx) if owner[name] == shard
        ]
        conn.send(("ready", _boundary_meta(soc)))
        while True:
            message = conn.recv()
            command = message[0]
            if command == "run":
                __, bound, flit_batches, credit_batches = message
                for rx_name, envelopes in flit_batches:
                    all_rx[rx_name].receive_flits(envelopes)
                for tx_name, credits in credit_batches:
                    all_tx[tx_name].receive_credits(credits)
                started = time.process_time()
                soc.sim.run(bound - soc.sim.cycle)
                busy = time.process_time() - started
                flits_out = []
                for name in owned_tx:
                    tx = all_tx[name]
                    if tx.outbox:
                        flits_out.append((name, list(tx.outbox)))
                        tx.outbox.clear()
                credits_out = []
                for name in owned_rx:
                    rx = all_rx[name]
                    if rx.credit_outbox:
                        credits_out.append((name, list(rx.credit_outbox)))
                        rx.credit_outbox.clear()
                conn.send(
                    (
                        "done",
                        shard_next_event(soc.sim),
                        busy,
                        flits_out,
                        credits_out,
                    )
                )
            elif command == "finish":
                conn.send(
                    (
                        "result",
                        fingerprint_shard(soc, shard),
                        _shard_metrics(soc, shard),
                    )
                )
                conn.close()
                return
            else:
                raise RuntimeError(f"unknown command {command!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass


# --------------------------------------------------------------------- #
# coordinator
# --------------------------------------------------------------------- #
def _run_single_process(builder: Callable, cycles: int) -> Dict:
    """The reference: the same sharded build, one process, boundary
    halves handing envelopes to each other directly."""
    from repro.sim.fingerprint import fingerprint_soc

    soc = bootstrap_soc(builder)
    if soc.shard_plan is None:
        raise ShardConfigError(
            "run_sharded() needs a sharded build — construct with "
            "SocBuilder(shards=...)"
        )
    started = time.perf_counter()
    cpu_started = time.process_time()
    soc.run(cycles)
    cpu = time.process_time() - cpu_started
    wall = time.perf_counter() - started
    return {
        "processes": 1,
        "fingerprint": fingerprint_soc(soc),
        "cycle": soc.sim.cycle,
        "metrics": _shard_metrics(soc, None),
        "timing": {
            "wall_s": wall,
            # Same CPU-time basis as the parallel critical path, so
            # parallel_speedup compares like with like.
            "critical_path_s": cpu,
            "busy_total_s": cpu,
            "coordinator_s": 0.0,
            "rounds": 0,
            "safe_window_mean": float(cycles),
            "boundary_batches": 0,
            "boundary_flits": 0,
            "boundary_credits": 0,
        },
    }


def run_sharded(builder: Callable, *, cycles: int, processes: int) -> Dict:
    """Run a sharded build for ``cycles`` and return its merged state.

    ``builder`` is a zero-argument callable returning a SoC built with
    ``SocBuilder(shards=N)`` (workers rebuild it via fork, so it needn't
    pickle).  ``processes=0`` (or 1) runs single-process in this
    process; otherwise ``processes`` must equal the build's shard count
    — one worker per shard.  Returns::

        {"processes": P, "fingerprint": ..., "cycle": C,
         "metrics": {completed, flits_forwarded, phits_carried},
         "timing": {wall_s, critical_path_s, busy_total_s,
                    coordinator_s, rounds, safe_window_mean,
                    boundary_batches, boundary_flits, boundary_credits}}

    The fingerprint of a ``processes=N`` run is byte-identical to the
    ``processes=0`` run of the same builder (the determinism tests pin
    this); timing bases are documented in the module docstring.
    """
    if cycles <= 0:
        raise ValueError(f"cycles must be > 0, got {cycles}")
    if processes in (0, 1):
        return _run_single_process(builder, cycles)
    context = mp_context()
    workers = []
    connections = []
    wall_started = time.perf_counter()
    try:
        for shard in range(processes):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(child_conn, builder, shard),
                daemon=True,
            )
            process.start()
            child_conn.close()
            workers.append(process)
            connections.append(parent_conn)

        def expect(conn, *kinds):
            message = conn.recv()
            if message[0] == "error":
                raise ShardWorkerError(
                    f"shard worker failed:\n{message[1]}"
                )
            if message[0] not in kinds:
                raise ShardWorkerError(
                    f"unexpected worker message {message[0]!r}"
                )
            return message

        metas = [expect(conn, "ready")[1] for conn in connections]
        meta = metas[0]
        if meta["n_shards"] != processes:
            raise ShardConfigError(
                f"build has {meta['n_shards']} shards but processes="
                f"{processes}; run one worker per shard"
            )
        window = meta["window"]
        flit_routes = meta["flit_routes"]
        credit_routes = meta["credit_routes"]
        rx_shard = meta["rx_shard"]
        tx_shard = meta["tx_shard"]
        credit_return = meta["credit_return"]

        horizon_cap = 0
        pending_flits: Dict[str, List] = {}
        pending_credits: Dict[str, List] = {}
        next_events: List[Optional[int]] = [0] * processes
        rounds = 0
        window_sum = 0
        batches = flit_count = credit_count = 0
        busy_total = critical_path = coordinator_s = 0.0
        now = 0
        while now < cycles:
            coord_started = time.perf_counter()
            horizons = [e for e in next_events if e is not None]
            for rx_name, envelopes in pending_flits.items():
                horizons.append(envelopes[0][0])
            for tx_name, credits in pending_credits.items():
                horizons.append(credits[0][0] + credit_return[tx_name])
            if horizons:
                bound = min(max(now, min(horizons)) + window, cycles)
            else:
                # Every shard dormant, nothing in transit: idle-skip the
                # rest of the run in one round.
                bound = cycles
            shard_flits: List[List] = [[] for _ in range(processes)]
            shard_credits: List[List] = [[] for _ in range(processes)]
            for rx_name in sorted(pending_flits):
                envelopes = pending_flits[rx_name]
                envelopes.sort(key=lambda e: (e[0], e[2]))
                shard_flits[rx_shard[rx_name]].append((rx_name, envelopes))
            for tx_name in sorted(pending_credits):
                credits = pending_credits[tx_name]
                credits.sort()
                shard_credits[tx_shard[tx_name]].append((tx_name, credits))
            pending_flits = {}
            pending_credits = {}
            for shard, conn in enumerate(connections):
                conn.send(
                    ("run", bound, shard_flits[shard], shard_credits[shard])
                )
            coordinator_s += time.perf_counter() - coord_started
            round_busy = 0.0
            replies = [expect(conn, "done") for conn in connections]
            coord_started = time.perf_counter()
            for shard, reply in enumerate(replies):
                __, next_event, busy, flits_out, credits_out = reply
                next_events[shard] = next_event
                busy_total += busy
                round_busy = max(round_busy, busy)
                for tx_name, envelopes in flits_out:
                    pending_flits.setdefault(
                        flit_routes[tx_name], []
                    ).extend(envelopes)
                    batches += 1
                    flit_count += len(envelopes)
                for rx_name, credits in credits_out:
                    pending_credits.setdefault(
                        credit_routes[rx_name], []
                    ).extend(credits)
                    batches += 1
                    credit_count += len(credits)
            rounds += 1
            window_sum += bound - now
            now = bound
            coordinator_s += time.perf_counter() - coord_started
            critical_path += round_busy
        critical_path += coordinator_s

        fragments = []
        metrics = {"flits_forwarded": 0, "phits_carried": 0, "completed": 0}
        for conn in connections:
            conn.send(("finish",))
        for conn in connections:
            __, fragment, shard_metrics = expect(conn, "result")
            fragments.append(fragment)
            for key in metrics:
                metrics[key] += shard_metrics[key]
        merged = merge_shard_fingerprints(fragments)
        wall = time.perf_counter() - wall_started
        return {
            "processes": processes,
            "fingerprint": merged,
            "cycle": merged["cycle"],
            "metrics": metrics,
            "timing": {
                "wall_s": wall,
                "critical_path_s": critical_path,
                "busy_total_s": busy_total,
                "coordinator_s": coordinator_s,
                "rounds": rounds,
                "safe_window_mean": (
                    window_sum / rounds if rounds else float(cycles)
                ),
                "boundary_batches": batches,
                "boundary_flits": flit_count,
                "boundary_credits": credit_count,
            },
        }
    finally:
        for process in workers:
            if process.is_alive():
                process.terminate()
        for process in workers:
            process.join(timeout=10)
        for conn in connections:
            try:
                conn.close()
            except Exception:
                pass
