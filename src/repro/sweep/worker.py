"""Shared worker-process plumbing for multi-process sweeps.

Both multi-process entry points — checkpoint-forked design-space sweeps
(:mod:`repro.sweep.fork`) and sharded parallel simulation
(:mod:`repro.sweep.parallel`) — spawn processes that must rebuild a SoC
*congruent* with the parent's: same wiring, same names, and above all
the same id-counter state, or fingerprints silently diverge.  That
bootstrap lives here once so the two paths cannot drift.

Workers use the ``fork`` start method (asserted at pool/process
creation): builders are closed over live objects — topologies, traffic
sources, LinkSpecs — that are not generally picklable, and fork
inherits them by address-space copy.  This is Linux/macOS-only, which
is where the benches run; on platforms without fork the multi-process
paths raise rather than silently running with ``spawn`` semantics.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable

from repro.sim.fingerprint import reset_ids

#: The start method every multi-process sweep uses (see module docstring).
START_METHOD = "fork"


def mp_context():
    """The multiprocessing context shared by fork() pools and shard
    workers (raises on platforms without the fork start method)."""
    return multiprocessing.get_context(START_METHOD)


def bootstrap_soc(builder: Callable):
    """Build a SoC the way every worker (and every reference run) must:
    global id counters reset first, so the build allocates identically
    no matter what ran in this process before."""
    reset_ids()
    return builder()
