"""Target IP models.

:class:`MemoryDevice` is the workhorse: byte-addressed storage behind a
:class:`~repro.protocols.base.SlaveSocket`, with a configurable access
latency pipeline.  It stores bytes (not words), so mixed beat widths from
different sockets read back exactly what was written — a real
compatibility requirement once AHB (32-bit) and AXI (64-bit) masters
share a target.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.transaction import ResponseStatus
from repro.protocols.base import SlaveRequest, SlaveResponse, SlaveSocket
from repro.sim.component import Component
from repro.sim.snapshot import Snapshottable


class ByteStore(Snapshottable):
    """Byte-addressed sparse storage shared by memory models.

    Values are stored per byte so mixed beat widths (a 32-bit AHB master
    and a 64-bit AXI master sharing a target) read back exactly what was
    written.
    """

    _snapshot_fields = ("_bytes",)

    def __init__(self) -> None:
        self._bytes: Dict[int, int] = {}

    def write_beat(self, offset: int, value: int, beat_bytes: int) -> None:
        for i in range(beat_bytes):
            self._bytes[offset + i] = (value >> (8 * i)) & 0xFF

    def read_beat(self, offset: int, beat_bytes: int) -> int:
        value = 0
        for i in range(beat_bytes):
            value |= self._bytes.get(offset + i, 0) << (8 * i)
        return value

    def image(self) -> Dict[int, int]:
        return dict(self._bytes)

    def __len__(self) -> int:
        return len(self._bytes)


class MemoryDevice(Component, Snapshottable):
    """Simple-latency memory target.

    Parameters
    ----------
    read_latency / write_latency:
        Cycles from request acceptance to response availability.
    per_beat_cycles:
        Extra cycles per burst beat (models a narrow internal array).
    error_ranges:
        ``(offset, size)`` windows that respond SLVERR — used by error
        propagation tests.
    """

    def __init__(
        self,
        name: str,
        socket: SlaveSocket,
        size: int = 1 << 20,
        read_latency: int = 4,
        write_latency: int = 2,
        per_beat_cycles: int = 0,
        error_ranges: Optional[List[Tuple[int, int]]] = None,
    ) -> None:
        super().__init__(name)
        self.socket = socket
        self.size = size
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.per_beat_cycles = per_beat_cycles
        self.error_ranges = list(error_ranges or [])
        self.store = ByteStore()
        self._pipeline: Deque[Tuple[int, SlaveResponse]] = deque()
        self.reads_served = 0
        self.writes_served = 0
        self.errors_served = 0
        # Activity wiring: new requests wake the device; a popped
        # response frees the retire path while the pipeline drains.
        socket.requests.wake_on_push(self)
        socket.responses.wake_on_pop(self)

    # -- state capture ----------------------------------------------------
    _snapshot_fields = (
        "_pipeline",
        "reads_served",
        "writes_served",
        "errors_served",
    )

    def _snapshot_state(self) -> dict:
        state = super()._snapshot_state()
        state["store"] = self.store.snapshot()
        return state

    def _restore_state(self, state) -> None:
        super()._restore_state(state)
        self.store.restore(state["store"])

    def is_idle(self) -> bool:
        return not self._pipeline and not self.socket.requests

    _next_event_known = True

    def next_event_cycle(self, now: int):
        """A request at the socket needs a tick now; otherwise the next
        event is the oldest pipeline entry's maturation cycle.  A matured
        entry blocked on a full response channel keeps the device hot
        rather than deferring to the pop-wake: a pop frees channel space
        in the same cycle it happens, and the strict kernel lets a
        later-ticked device retire into that slot immediately.  Dormant
        (``None``) only when truly empty — new requests push-wake us."""
        if self.socket.requests._committed:
            return now
        if self._pipeline:
            ready = self._pipeline[0][0]
            return ready if ready > now else now
        return None

    # ------------------------------------------------------------------ #
    # storage helpers (also used directly by tests)
    # ------------------------------------------------------------------ #
    def write_beat(self, offset: int, value: int, beat_bytes: int) -> None:
        self.store.write_beat(offset, value, beat_bytes)

    def read_beat(self, offset: int, beat_bytes: int) -> int:
        return self.store.read_beat(offset, beat_bytes)

    def _in_error_range(self, offset: int, span: int) -> bool:
        return any(
            offset < base + size and base < offset + span
            for base, size in self.error_ranges
        )

    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> None:
        # Retire matured accesses (in order).
        while (
            self._pipeline
            and self._pipeline[0][0] <= cycle
            and self.socket.responses.can_push()
        ):
            __, response = self._pipeline.popleft()
            self.socket.responses.push(response)
        # Accept one new request per cycle.
        if not self.socket.requests._committed:
            return
        request: SlaveRequest = self.socket.requests.pop()
        span = request.beats * request.beat_bytes
        if request.offset + span > self.size or self._in_error_range(
            request.offset, span
        ):
            self.errors_served += 1
            response = SlaveResponse(
                token=request.token, status=ResponseStatus.SLVERR
            )
            latency = self.read_latency if request.read else self.write_latency
        elif request.read:
            data = [
                self.read_beat(addr, request.beat_bytes)
                for addr in request.addresses
            ]
            self.reads_served += 1
            response = SlaveResponse(token=request.token, data=data)
            latency = self.read_latency
        else:
            assert request.data is not None
            for addr, value in zip(request.addresses, request.data):
                self.write_beat(addr, value, request.beat_bytes)
            self.writes_served += 1
            response = SlaveResponse(token=request.token)
            latency = self.write_latency
        latency += self.per_beat_cycles * request.beats
        self._pipeline.append((cycle + max(1, latency), response))

    def idle(self) -> bool:
        return self.is_idle()

    @property
    def stored_bytes(self) -> int:
        return len(self.store)
