"""IP block models: traffic-generating masters and memory-like targets.

The paper's SoC contains off-the-shelf VCs; we substitute synthetic but
protocol-accurate workloads (see DESIGN.md §2): traffic sources produce
abstract intents, protocol master models turn them into socket-legal
request streams, and :class:`~repro.ip.slaves.MemoryDevice` terminates
them behind target NIUs.
"""

from repro.ip.slaves import MemoryDevice
from repro.ip.traffic import (
    TRAFFIC_KINDS,
    DependentTraffic,
    PoissonTraffic,
    ScriptedTraffic,
    StreamTraffic,
    SyncWorkload,
    TrafficSeedError,
    TrafficSpec,
    WorkloadStallError,
)

__all__ = [
    "DependentTraffic",
    "MemoryDevice",
    "PoissonTraffic",
    "ScriptedTraffic",
    "StreamTraffic",
    "SyncWorkload",
    "TRAFFIC_KINDS",
    "TrafficSeedError",
    "TrafficSpec",
    "WorkloadStallError",
]
