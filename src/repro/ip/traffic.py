"""Traffic sources: the abstract intent streams masters execute.

Every source implements the :class:`~repro.protocols.base.TrafficSource`
protocol: ``poll(cycle)`` hands out the next intent when ready,
``notify_complete`` lets closed-loop sources react to completions (and to
exclusive-access failures), ``done()`` signals exhaustion.

All randomness is seeded ``random.Random`` — identical runs reproduce
identical intent streams, which the layer-independence experiment (E5)
relies on.

Lookahead protocol (time-skipping kernel)
-----------------------------------------
Sources may additionally implement ``lookahead(cycle)`` so the master
that polls them can tell the kernel when its next poll could possibly
succeed (see :meth:`repro.sim.component.Component.next_event_cycle`).
The return value is one of:

- ``None`` — dormant: no future poll can return an intent until an
  external event (``notify_complete``) re-arms the source;
- ``("at", t)`` — the earliest *kernel cycle* a poll could return an
  intent (polls before ``t`` return None without consuming randomness);
- ``("polls", k)`` — the intent will be returned by the ``k``-th future
  poll.  Used by Bernoulli sources: the per-poll rate draws for the next
  ``k`` polls are performed eagerly (preserving the exact ``rng`` stream
  a poll-every-cycle run consumes) and the generated intent is *armed*;
  the intervening polls consume no randomness and the ``k``-th returns
  the armed intent — byte-identical to never having looked ahead.

``lookahead`` never changes what ``poll`` returns at any cycle; it only
precomputes it.  Sources without the method simply disable skipping for
their master.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.core.transaction import (
    Opcode,
    ResponseStatus,
    Transaction,
    make_read,
    make_write,
)
from repro.sim.kernel import SimulationError
from repro.sim.snapshot import Snapshottable


class WorkloadStallError(SimulationError):
    """A run's cycle budget elapsed with workload traffic provably stuck.

    Raised by :meth:`repro.soc.builder.NocSoc.run_to_completion` in place
    of the kernel's bare budget timeout when at least one master's traffic
    is unfinished, carrying each stuck source's own diagnosis (a halted
    DMA descriptor, a stream starved of credit tokens, an intent the
    socket never accepted) so a program that can never complete fails
    loudly with the *reason*, not a silent timeout.
    """


class TrafficSeedError(ValueError):
    """A random traffic source was built without a reproducible seed.

    ``random.Random(None)`` seeds from the OS entropy pool, which silently
    breaks run-to-run reproducibility — and with it checkpoint/restore
    equivalence and every determinism test.  Sources therefore demand an
    explicit integer seed.
    """


def _require_seed(name: str, seed) -> int:
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise TrafficSeedError(
            f"traffic source {name!r}: seed must be an explicit int for "
            f"reproducibility, got {seed!r} (random.Random(None) would "
            f"seed from OS entropy)"
        )
    return seed


#: Source kinds TrafficSpec can describe (the five classic constructors
#: below plus the DMA descriptor engine from repro.workloads).
TRAFFIC_KINDS = ("scripted", "poisson", "dependent", "stream", "sync", "dma")

_SEEDED_KINDS = ("poisson", "dependent", "sync")


@dataclass
class TrafficSpec:
    """One declarative record describing any traffic source.

    The five ad-hoc source constructors grew five different call shapes;
    this is the single shape that covers them all — ``kind`` picks the
    source class, the shared knobs (``seed``, ``rate``, ``priority``,
    ``pairs``) mean the same thing for every kind, and the kind-specific
    knobs are ignored by kinds that do not use them.  ``validate()`` is
    the one place every argument check (including
    :class:`TrafficSeedError`) happens; the legacy constructors route
    their own validation through it, so a spec and its equivalent direct
    construction accept and reject exactly the same inputs.

    ``master`` may be left ``None`` when the spec is resolved by
    ``SocBuilder(traffic=[...])``/``workload=`` against a named
    initiator; :meth:`build` then stamps the initiator's name on the
    source.

    Kind map (knobs beyond the shared ones):

    - ``"scripted"`` — ``intents`` (list of prebuilt Transactions);
    - ``"poisson"`` — ``count``, ``read_fraction``, ``burst_beats``
      (tuple of candidate lengths), ``beat_bytes``, ``threads``,
      ``tags``, ``posted``;
    - ``"dependent"`` — ``count``, ``think_cycles``, ``read_fraction``,
      ``beat_bytes``;
    - ``"stream"`` — ``base``, ``bytes_total``, ``burst_beats`` (int),
      ``beat_bytes``, ``write``, ``posted``, ``gap_cycles``;
    - ``"sync"`` — ``style``, ``sema_addr``, ``work_addr``,
      ``iterations``, ``work_ops``;
    - ``"dma"`` — ``program`` (list of
      :class:`repro.workloads.DmaDescriptor`).
    """

    kind: str
    master: Optional[str] = None
    seed: Optional[int] = None
    count: int = 100
    rate: float = 0.2
    priority: int = 0
    pairs: Optional[List[Tuple[int, int]]] = None  # (base, size) windows
    read_fraction: Optional[float] = None
    burst_beats: Optional[object] = None  # tuple (poisson) / int (stream)
    beat_bytes: int = 4
    threads: int = 1
    tags: int = 1
    posted: bool = False
    write: bool = True
    base: int = 0
    bytes_total: int = 4096
    gap_cycles: int = 0
    think_cycles: int = 2
    style: str = "lock"
    sema_addr: int = 0
    work_addr: int = 0
    iterations: int = 4
    work_ops: int = 3
    intents: Optional[List[Transaction]] = None
    program: Optional[list] = field(default=None)

    # ------------------------------------------------------------------ #
    def validate(self) -> "TrafficSpec":
        """Check every argument, raising the same errors (same types,
        same messages) the legacy constructors always raised."""
        name = self.master if self.master is not None else f"<{self.kind}>"
        if self.kind not in TRAFFIC_KINDS:
            raise ValueError(
                f"traffic spec {name!r}: unknown kind {self.kind!r}; "
                f"known kinds: {TRAFFIC_KINDS}"
            )
        if self.kind == "poisson":
            if not 0.0 < self.rate <= 1.0:
                raise ValueError("rate must be in (0, 1]")
            if not self.pairs:
                raise ValueError("need at least one address range")
            if self.burst_beats is not None and isinstance(
                self.burst_beats, bool
            ):
                raise ValueError(
                    f"traffic spec {name!r}: burst_beats must be an int or "
                    f"a tuple of ints"
                )
        elif self.kind == "dependent":
            if not self.pairs:
                raise ValueError("need at least one address range")
        elif self.kind == "stream":
            if self.bytes_total <= 0:
                raise ValueError(
                    f"traffic spec {name!r}: bytes_total must be > 0"
                )
            if self.burst_beats is not None and not isinstance(
                self.burst_beats, int
            ):
                raise ValueError(
                    f"traffic spec {name!r}: stream burst_beats must be a "
                    f"single int, got {self.burst_beats!r}"
                )
        elif self.kind == "sync":
            if self.style not in ("lock", "excl"):
                raise ValueError("style must be 'lock' or 'excl'")
        elif self.kind == "scripted":
            if self.intents is None:
                raise ValueError(
                    f"traffic spec {name!r}: scripted kind needs "
                    f"intents=[Transaction, ...]"
                )
        elif self.kind == "dma":
            if not self.program:
                raise ValueError(
                    f"traffic spec {name!r}: dma kind needs a non-empty "
                    f"program=[DmaDescriptor, ...]"
                )
        if self.kind in _SEEDED_KINDS:
            _require_seed(name, self.seed)
        return self

    # ------------------------------------------------------------------ #
    def build(self, name: Optional[str] = None):
        """Construct the concrete source this spec describes.

        ``name`` (typically the initiator's name, supplied by the
        builder) overrides ``master``; one of the two must be set for
        every kind that stamps a master name on its intents.
        """
        self.validate()
        if name is None:
            name = self.master
        if self.kind == "scripted":
            return ScriptedTraffic(self.intents)
        if name is None:
            raise ValueError(
                f"TrafficSpec(kind={self.kind!r}) needs a master name — "
                f"set master=... or resolve it via SocBuilder(traffic=[...])"
            )
        if self.kind == "poisson":
            beats = self.burst_beats
            if beats is None:
                beats = (1, 4)
            elif isinstance(beats, int):
                beats = (beats,)
            else:
                beats = tuple(beats)
            return PoissonTraffic(
                name,
                self.seed,
                self.count,
                list(self.pairs),
                rate=self.rate,
                read_fraction=(
                    0.6 if self.read_fraction is None else self.read_fraction
                ),
                burst_beats=beats,
                beat_bytes=self.beat_bytes,
                threads=self.threads,
                tags=self.tags,
                priority=self.priority,
                posted_writes=self.posted,
            )
        if self.kind == "dependent":
            return DependentTraffic(
                name,
                self.seed,
                self.count,
                list(self.pairs),
                think_cycles=self.think_cycles,
                read_fraction=(
                    0.8 if self.read_fraction is None else self.read_fraction
                ),
                beat_bytes=self.beat_bytes,
                priority=self.priority,
            )
        if self.kind == "stream":
            return StreamTraffic(
                name,
                base=self.base,
                bytes_total=self.bytes_total,
                burst_beats=(
                    8 if self.burst_beats is None else self.burst_beats
                ),
                beat_bytes=self.beat_bytes,
                write=self.write,
                posted=self.posted,
                priority=self.priority,
                gap_cycles=self.gap_cycles,
            )
        if self.kind == "sync":
            return SyncWorkload(
                name,
                self.style,
                self.sema_addr,
                self.work_addr,
                iterations=self.iterations,
                work_ops=self.work_ops,
                seed=self.seed,
            )
        # "dma": the engine lives in the workloads subsystem; imported
        # lazily so repro.ip has no import-time dependency on it.
        from repro.workloads.dma import DmaEngine

        return DmaEngine(name, self.program, priority=self.priority)


class ScriptedTraffic(Snapshottable):
    """Issue a fixed list of intents in order, as fast as accepted."""

    _snapshot_fields = ("_next", "completions")

    def __init__(self, intents: Iterable[Transaction]) -> None:
        self._intents: List[Transaction] = list(intents)
        TrafficSpec(kind="scripted", intents=self._intents).validate()
        self._next = 0
        self.completions: List[Tuple[int, int, ResponseStatus]] = []

    def poll(self, cycle: int) -> Optional[Transaction]:
        if self._next >= len(self._intents):
            return None
        txn = self._intents[self._next]
        self._next += 1
        return txn

    def lookahead(self, cycle: int):
        if self._next >= len(self._intents):
            return None  # exhausted: dormant forever
        return ("at", cycle)  # always ready while intents remain

    def done(self) -> bool:
        return self._next >= len(self._intents)

    def notify_complete(
        self, txn_id: int, cycle: int, status: ResponseStatus
    ) -> None:
        self.completions.append((txn_id, cycle, status))


class PoissonTraffic(Snapshottable):
    """Open-loop random traffic with a Bernoulli-per-cycle injection rate.

    Parameters
    ----------
    rate:
        Probability of wanting to inject each cycle (offered load knob).
    address_ranges:
        ``(base, size)`` windows the source targets, chosen uniformly.
    read_fraction:
        Probability an intent is a read.
    burst_beats:
        Candidate burst lengths, chosen uniformly.
    threads / tags:
        Spread for ``txn.thread`` / ``txn.txn_tag`` (protocol-dependent
        meaning: OCP ThreadID, AXI/AVCI ID).
    """

    _snapshot_fields = ("rng", "remaining", "completions", "_armed", "_predrawn")

    def __init__(
        self,
        name: str,
        seed: int,
        count: int,
        address_ranges: List[Tuple[int, int]],
        rate: float = 0.2,
        read_fraction: float = 0.6,
        burst_beats: Tuple[int, ...] = (1, 4),
        beat_bytes: int = 4,
        threads: int = 1,
        tags: int = 1,
        priority: int = 0,
        posted_writes: bool = False,
    ) -> None:
        # All argument checking (rate window, range list, seed) lives in
        # the declarative spec — construct-and-validate one so direct
        # construction and SocBuilder(traffic=[...]) reject identically.
        TrafficSpec(
            kind="poisson",
            master=name,
            seed=seed,
            rate=rate,
            pairs=list(address_ranges),
        ).validate()
        self.name = name
        self.rng = random.Random(seed)
        self.remaining = count
        self.address_ranges = list(address_ranges)
        self.rate = rate
        self.read_fraction = read_fraction
        self.burst_beats = burst_beats
        self.beat_bytes = beat_bytes
        self.threads = threads
        self.tags = tags
        self.priority = priority
        self.posted_writes = posted_writes
        self.completions: List[Tuple[int, int, ResponseStatus]] = []
        self._armed: Optional[Transaction] = None
        # True when lookahead() already consumed the successful rate draw
        # for the next poll; that poll skips its own draw and generates.
        self._predrawn = False

    def _generate(self) -> Transaction:
        base, size = self.rng.choice(self.address_ranges)
        beats = self.rng.choice(self.burst_beats)
        span = beats * self.beat_bytes
        # Align so the burst stays inside the range and on a beat boundary.
        slots = max(1, (size - span) // self.beat_bytes)
        address = base + self.rng.randrange(slots) * self.beat_bytes
        thread = self.rng.randrange(self.threads)
        tag = self.rng.randrange(self.tags)
        if self.rng.random() < self.read_fraction:
            txn = make_read(
                address,
                beats=beats,
                beat_bytes=self.beat_bytes,
                master=self.name,
            )
        else:
            data = [self.rng.randrange(1 << 32) for _ in range(beats)]
            txn = make_write(
                address,
                data,
                beat_bytes=self.beat_bytes,
                posted=self.posted_writes,
                master=self.name,
            )
        txn.thread = thread
        txn.txn_tag = tag
        txn.priority = self.priority
        return txn

    def poll(self, cycle: int) -> Optional[Transaction]:
        if self.remaining <= 0:
            return None
        if self._armed is None:
            if self._predrawn:
                self._predrawn = False  # lookahead already drew the success
            elif self.rng.random() >= self.rate:
                return None
            self._armed = self._generate()
        txn = self._armed
        self._armed = None
        self.remaining -= 1
        return txn

    def lookahead(self, cycle: int):
        """Draw the Bernoulli sequence for the coming polls eagerly.

        Performs exactly the rate draws a poll-per-cycle run would
        perform — one per future poll, stopping at the first success —
        so the rng stream is byte-identical to never skipping.  Only the
        rate draws are consumed here: the intent itself (whose
        construction draws more randomness *and* allocates the global
        transaction id) is generated by the winning poll, at the same
        cycle and in the same cross-master order as a poll-every-cycle
        run.  The master must not call :meth:`poll` again until the
        returned number of polls have notionally elapsed (it converts
        the count to an absolute cycle; see
        ``ProtocolMaster.next_event_cycle``).
        """
        if self.remaining <= 0:
            return None  # dormant: remaining never grows back
        if self._armed is not None or self._predrawn:
            return ("polls", 1)  # success already in hand
        polls = 1
        rng_random = self.rng.random
        rate = self.rate
        while rng_random() >= rate:
            polls += 1
        self._predrawn = True
        return ("polls", polls)

    def done(self) -> bool:
        return self.remaining <= 0 and self._armed is None and not self._predrawn

    def notify_complete(
        self, txn_id: int, cycle: int, status: ResponseStatus
    ) -> None:
        self.completions.append((txn_id, cycle, status))


class DependentTraffic(Snapshottable):
    """Closed-loop, CPU-like: the next intent issues ``think_cycles``
    after the previous one completes (dependent loads)."""

    _snapshot_fields = ("rng", "remaining", "_ready_at", "_waiting", "completions")

    def __init__(
        self,
        name: str,
        seed: int,
        count: int,
        address_ranges: List[Tuple[int, int]],
        think_cycles: int = 2,
        read_fraction: float = 0.8,
        beat_bytes: int = 4,
        priority: int = 0,
    ) -> None:
        TrafficSpec(
            kind="dependent",
            master=name,
            seed=seed,
            pairs=list(address_ranges),
        ).validate()
        self.name = name
        self.rng = random.Random(seed)
        self.remaining = count
        self.address_ranges = list(address_ranges)
        self.think_cycles = think_cycles
        self.read_fraction = read_fraction
        self.beat_bytes = beat_bytes
        self.priority = priority
        self._ready_at = 0
        self._waiting = False
        self.completions: List[Tuple[int, int, ResponseStatus]] = []

    def poll(self, cycle: int) -> Optional[Transaction]:
        if self.remaining <= 0 or self._waiting or cycle < self._ready_at:
            return None
        base, size = self.rng.choice(self.address_ranges)
        address = base + self.rng.randrange(max(1, size // 4)) * 4
        if self.rng.random() < self.read_fraction:
            txn = make_read(address, master=self.name)
        else:
            txn = make_write(
                address, [self.rng.randrange(1 << 32)], master=self.name
            )
        txn.priority = self.priority
        self.remaining -= 1
        self._waiting = True
        return txn

    def lookahead(self, cycle: int):
        if self.remaining <= 0 or self._waiting:
            return None  # dormant until notify_complete re-arms us
        return ("at", max(cycle, self._ready_at))  # think window

    def done(self) -> bool:
        return self.remaining <= 0 and not self._waiting

    def notify_complete(
        self, txn_id: int, cycle: int, status: ResponseStatus
    ) -> None:
        self._waiting = False
        self._ready_at = cycle + self.think_cycles
        self.completions.append((txn_id, cycle, status))


class StreamTraffic(Snapshottable):
    """DMA-like: back-to-back long INCR bursts sweeping a region."""

    _snapshot_fields = ("bursts_remaining", "_cursor", "_ready_at", "completions")

    def __init__(
        self,
        name: str,
        base: int,
        bytes_total: int,
        burst_beats: int = 8,
        beat_bytes: int = 4,
        write: bool = True,
        posted: bool = False,
        priority: int = 0,
        gap_cycles: int = 0,
    ) -> None:
        TrafficSpec(
            kind="stream",
            master=name,
            bytes_total=bytes_total,
            burst_beats=burst_beats,
        ).validate()
        self.name = name
        self.base = base
        self.burst_beats = burst_beats
        self.beat_bytes = beat_bytes
        self.write = write
        self.posted = posted
        self.priority = priority
        self.gap_cycles = gap_cycles
        burst_bytes = burst_beats * beat_bytes
        self.bursts_remaining = max(1, bytes_total // burst_bytes)
        self._cursor = base
        self._ready_at = 0
        self.completions: List[Tuple[int, int, ResponseStatus]] = []

    def poll(self, cycle: int) -> Optional[Transaction]:
        if self.bursts_remaining <= 0 or cycle < self._ready_at:
            return None
        if self.write:
            data = [i & 0xFFFFFFFF for i in range(self.burst_beats)]
            txn = make_write(
                self._cursor,
                data,
                beat_bytes=self.beat_bytes,
                posted=self.posted,
                master=self.name,
            )
        else:
            txn = make_read(
                self._cursor,
                beats=self.burst_beats,
                beat_bytes=self.beat_bytes,
                master=self.name,
            )
        txn.priority = self.priority
        self._cursor += self.burst_beats * self.beat_bytes
        self.bursts_remaining -= 1
        self._ready_at = cycle + self.gap_cycles
        return txn

    def lookahead(self, cycle: int):
        if self.bursts_remaining <= 0:
            return None
        return ("at", max(cycle, self._ready_at))

    def done(self) -> bool:
        return self.bursts_remaining <= 0

    def notify_complete(
        self, txn_id: int, cycle: int, status: ResponseStatus
    ) -> None:
        self.completions.append((txn_id, cycle, status))


class SyncWorkload(Snapshottable):
    """Critical-section loop in either synchronization style (E3).

    ``style="lock"`` (legacy blocking, AHB/VCI): READEX the semaphore
    (locks the path and target), do the critical-section work, release
    with STORE_COND_LOCKED.

    ``style="excl"`` (non-blocking, AXI/OCP): exclusive-load the
    semaphore, exclusive-store it; on a lost reservation retry.  Critical
    section work runs only after a successful exclusive store, and the
    semaphore is freed with a plain store.
    """

    _snapshot_fields = (
        "rng",
        "iterations_left",
        "_state",
        "_work_left",
        "_inflight_id",
        "retries",
        "sections_completed",
        "completions",
    )

    def __init__(
        self,
        name: str,
        style: str,
        sema_addr: int,
        work_addr: int,
        iterations: int = 4,
        work_ops: int = 3,
        seed: int = 0,
    ) -> None:
        TrafficSpec(
            kind="sync", master=name, seed=seed, style=style
        ).validate()
        self.name = name
        self.style = style
        self.sema_addr = sema_addr
        self.work_addr = work_addr
        self.iterations_left = iterations
        self.work_ops = work_ops
        self.rng = random.Random(seed)
        self._state = "idle"
        self._work_left = 0
        self._inflight_id: Optional[int] = None
        self.retries = 0
        self.sections_completed = 0
        self.completions: List[Tuple[int, int, ResponseStatus]] = []

    # ------------------------------------------------------------------ #
    def _intent(self) -> Transaction:
        if self.style == "lock":
            if self._state == "idle":
                self._state = "locking"
                return Transaction(
                    opcode=Opcode.READEX,
                    address=self.sema_addr,
                    master=self.name,
                )
            if self._state == "working":
                if self._work_left == 0:
                    self._state = "releasing"
                    return Transaction(
                        opcode=Opcode.STORE_COND_LOCKED,
                        address=self.sema_addr,
                        data=[0],
                        master=self.name,
                    )
                self._work_left -= 1
                return make_read(self.work_addr, master=self.name)
        else:
            if self._state == "idle":
                self._state = "excl_load"
                txn = make_read(self.sema_addr, master=self.name)
                txn.excl = True
                return txn
            if self._state == "excl_store":
                self._state = "excl_store_wait"
                txn = make_write(self.sema_addr, [1], master=self.name)
                txn.excl = True
                return txn
            if self._state == "working":
                if self._work_left == 0:
                    self._state = "releasing"
                    return make_write(self.sema_addr, [0], master=self.name)
                self._work_left -= 1
                return make_read(self.work_addr, master=self.name)
        raise AssertionError(f"{self.name}: no intent in state {self._state}")

    def poll(self, cycle: int) -> Optional[Transaction]:
        if self.iterations_left <= 0:
            return None
        if self._inflight_id is not None:
            return None  # strictly serial state machine
        if self._state in ("locking", "excl_load", "excl_store_wait", "releasing"):
            return None  # waiting on completion callback
        txn = self._intent()
        self._inflight_id = txn.txn_id
        return txn

    def lookahead(self, cycle: int):
        if self.iterations_left <= 0 or self._inflight_id is not None:
            return None  # dormant: only a completion advances the FSM
        if self._state in ("locking", "excl_load", "excl_store_wait", "releasing"):
            return None
        return ("at", cycle)  # an intent is ready right now

    def done(self) -> bool:
        return self.iterations_left <= 0

    def notify_complete(
        self, txn_id: int, cycle: int, status: ResponseStatus
    ) -> None:
        self.completions.append((txn_id, cycle, status))
        if txn_id != self._inflight_id:
            raise AssertionError(
                f"{self.name}: completion for {txn_id}, expected "
                f"{self._inflight_id}"
            )
        self._inflight_id = None
        if self.style == "lock":
            if self._state == "locking":
                self._state = "working"
                self._work_left = self.work_ops
            elif self._state == "releasing":
                self._state = "idle"
                self.sections_completed += 1
                self.iterations_left -= 1
        else:
            if self._state == "excl_load":
                self._state = "excl_store"
            elif self._state == "excl_store_wait":
                if status is ResponseStatus.EXOKAY:
                    self._state = "working"
                    self._work_left = self.work_ops
                else:
                    self.retries += 1
                    self._state = "idle"  # reservation lost: retry
            elif self._state == "releasing":
                self._state = "idle"
                self.sections_completed += 1
                self.iterations_left -= 1
