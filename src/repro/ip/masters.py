"""Workload presets — the IP blocks a DATE-2005 SoC would contain.

Each preset returns a traffic source tuned to the access pattern of the
IP class it names; the SoC builder pairs it with whichever socket
protocol that IP "ships" with.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ip.traffic import (
    DependentTraffic,
    PoissonTraffic,
    StreamTraffic,
    SyncWorkload,
)


def cpu_workload(
    name: str,
    address_ranges: List[Tuple[int, int]],
    count: int = 200,
    seed: int = 1,
    think_cycles: int = 2,
) -> DependentTraffic:
    """CPU-like: dependent accesses, mostly reads, short think time."""
    return DependentTraffic(
        name=name,
        seed=seed,
        count=count,
        address_ranges=address_ranges,
        think_cycles=think_cycles,
        read_fraction=0.8,
    )


def dma_workload(
    name: str,
    base: int,
    bytes_total: int = 4096,
    burst_beats: int = 8,
    write: bool = True,
    posted: bool = False,
) -> StreamTraffic:
    """DMA-like: long back-to-back INCR bursts over a buffer."""
    return StreamTraffic(
        name=name,
        base=base,
        bytes_total=bytes_total,
        burst_beats=burst_beats,
        write=write,
        posted=posted,
    )


def video_workload(
    name: str,
    base: int,
    bytes_total: int = 8192,
    burst_beats: int = 8,
    priority: int = 2,
    gap_cycles: int = 4,
) -> StreamTraffic:
    """Latency-critical streaming reads (display controller): high
    priority, periodic bursts — the QoS experiment's foreground flow."""
    return StreamTraffic(
        name=name,
        base=base,
        bytes_total=bytes_total,
        burst_beats=burst_beats,
        write=False,
        priority=priority,
        gap_cycles=gap_cycles,
    )


def random_workload(
    name: str,
    address_ranges: List[Tuple[int, int]],
    count: int = 200,
    seed: int = 7,
    rate: float = 0.25,
    threads: int = 1,
    tags: int = 1,
    burst_beats: Tuple[int, ...] = (1, 4),
    read_fraction: float = 0.6,
    priority: int = 0,
) -> PoissonTraffic:
    """Background best-effort mix (bus masters, peripherals)."""
    return PoissonTraffic(
        name=name,
        seed=seed,
        count=count,
        address_ranges=address_ranges,
        rate=rate,
        read_fraction=read_fraction,
        burst_beats=burst_beats,
        threads=threads,
        tags=tags,
        priority=priority,
    )


def sync_workload(
    name: str,
    style: str,
    sema_addr: int,
    work_addr: int,
    iterations: int = 4,
    work_ops: int = 3,
    seed: int = 0,
) -> SyncWorkload:
    """Semaphore-protected critical sections (benchmark E3)."""
    return SyncWorkload(
        name=name,
        style=style,
        sema_addr=sema_addr,
        work_addr=work_addr,
        iterations=iterations,
        work_ops=work_ops,
        seed=seed,
    )
