"""Collective patterns as generated descriptor programs.

Masters on a NoC cannot address each other directly — they only reach
memory targets through the address map — so collectives are expressed
the way real accelerators do it: through *memory mailboxes*.  Master
``i`` writes its contribution into a mailbox region, signals a
per-(writer, reader) stream channel, and the reader's descriptor waits
on that channel before fetching — read-after-write ordering without any
fabric-level synchronization primitive.

Every generator returns ``{master_name: DmaEngine}``, ready for
``SocBuilder(workload=...)``.  Write order per master is rotated by its
own index so the pattern does not synchronously hammer one target.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workloads.channels import StreamChannel
from repro.workloads.dma import DmaDescriptor, DmaEngine

__all__ = ["all_to_all", "near_neighbor_exchange", "tree_reduction"]


def _bursts_per_chunk(chunk_bytes: int, burst_beats: int, beat_bytes: int) -> int:
    return max(1, chunk_bytes // (burst_beats * beat_bytes))


def all_to_all(
    masters: List[str],
    *,
    mailbox_base: int = 0,
    chunk_bytes: int = 256,
    burst_beats: int = 8,
    beat_bytes: int = 4,
    priority: int = 0,
) -> Dict[str, DmaEngine]:
    """Every master deposits one chunk for every peer, then collects the
    chunks addressed to it.  Mailbox ``(src i, dst j)`` lives at
    ``mailbox_base + (i * n + j) * chunk_bytes``."""
    n = len(masters)
    if n < 2:
        raise ValueError("all_to_all needs at least two masters")
    bursts = _bursts_per_chunk(chunk_bytes, burst_beats, beat_bytes)
    channels = {
        (i, j): StreamChannel(f"a2a.{masters[i]}->{masters[j]}")
        for i in range(n)
        for j in range(n)
        if i != j
    }
    engines: Dict[str, DmaEngine] = {}
    for i, name in enumerate(masters):
        program: List[DmaDescriptor] = []
        peers = [(i + k) % n for k in range(1, n)]  # rotated, self excluded
        for j in peers:
            program.append(
                DmaDescriptor(
                    "write",
                    address=mailbox_base + (i * n + j) * chunk_bytes,
                    beats=burst_beats,
                    beat_bytes=beat_bytes,
                    bursts=bursts,
                    signal=channels[(i, j)],
                    priority=priority,
                    pattern=i * n + j,
                )
            )
        for j in peers:
            program.append(
                DmaDescriptor(
                    "read",
                    address=mailbox_base + (j * n + i) * chunk_bytes,
                    beats=burst_beats,
                    beat_bytes=beat_bytes,
                    bursts=bursts,
                    wait=channels[(j, i)],
                    priority=priority,
                )
            )
        engines[name] = DmaEngine(name, program, priority=priority)
    return engines


def near_neighbor_exchange(
    masters: List[str],
    width: int,
    height: int,
    *,
    mailbox_base: int = 0,
    chunk_bytes: int = 256,
    burst_beats: int = 8,
    beat_bytes: int = 4,
    priority: int = 0,
) -> Dict[str, DmaEngine]:
    """Halo exchange on a ``width x height`` torus of masters (master
    ``i`` sits at ``(i % width, i // width)``): each sends one chunk to
    its four wraparound neighbors and reads the four addressed to it."""
    n = len(masters)
    if n != width * height:
        raise ValueError(
            f"near_neighbor_exchange: {n} masters != {width}x{height} grid"
        )
    bursts = _bursts_per_chunk(chunk_bytes, burst_beats, beat_bytes)
    channels: Dict[Tuple[int, int], StreamChannel] = {}

    def neighbors(i: int) -> List[int]:
        x, y = i % width, i // width
        seen: List[int] = []
        for nx, ny in (
            ((x + 1) % width, y),
            ((x - 1) % width, y),
            (x, (y + 1) % height),
            (x, (y - 1) % height),
        ):
            j = ny * width + nx
            if j != i and j not in seen:
                seen.append(j)
        return seen

    def channel(i: int, j: int) -> StreamChannel:
        key = (i, j)
        if key not in channels:
            channels[key] = StreamChannel(
                f"halo.{masters[i]}->{masters[j]}"
            )
        return channels[key]

    engines: Dict[str, DmaEngine] = {}
    for i, name in enumerate(masters):
        program: List[DmaDescriptor] = []
        for j in neighbors(i):
            program.append(
                DmaDescriptor(
                    "write",
                    address=mailbox_base + (i * n + j) * chunk_bytes,
                    beats=burst_beats,
                    beat_bytes=beat_bytes,
                    bursts=bursts,
                    signal=channel(i, j),
                    priority=priority,
                    pattern=i * n + j,
                )
            )
        for j in neighbors(i):
            program.append(
                DmaDescriptor(
                    "read",
                    address=mailbox_base + (j * n + i) * chunk_bytes,
                    beats=burst_beats,
                    beat_bytes=beat_bytes,
                    bursts=bursts,
                    wait=channel(j, i),
                    priority=priority,
                )
            )
        engines[name] = DmaEngine(name, program, priority=priority)
    return engines


def tree_reduction(
    masters: List[str],
    *,
    scratch_base: int = 0,
    block_bytes: int = 256,
    compute_delay: int = 16,
    allreduce: bool = False,
    burst_beats: int = 8,
    beat_bytes: int = 4,
    priority: int = 0,
) -> Dict[str, DmaEngine]:
    """Binary-tree reduction over memory scratch slots.

    Round ``r`` pairs master ``i`` (``i % 2^(r+1) == 0``) with partner
    ``i + 2^r``: the receiver reads the partner's slot once the partner
    has produced its level-``r`` partial, spends ``compute_delay`` cycles
    combining, and writes the merged partial back to its own slot.
    Master 0 ends up holding the reduction; ``allreduce=True`` appends a
    broadcast phase where every other master reads the root slot.

    The combine step models *latency only* — slot contents stay the
    deterministic write patterns, which is exactly what the memory-image
    fingerprint wants.
    """
    n = len(masters)
    if n < 2:
        raise ValueError("tree_reduction needs at least two masters")
    bursts = _bursts_per_chunk(block_bytes, burst_beats, beat_bytes)

    def slot(i: int) -> int:
        return scratch_base + i * block_bytes

    # ch[(i, L)]: master i's slot holds its level-L partial (one token
    # per burst of the write that produced it).
    channels: Dict[Tuple[int, int], StreamChannel] = {}

    def channel(i: int, level: int) -> StreamChannel:
        key = (i, level)
        if key not in channels:
            channels[key] = StreamChannel(f"tree.{masters[i]}.L{level}")
        return channels[key]

    programs: Dict[str, List[DmaDescriptor]] = {}
    last_write: Dict[int, int] = {}  # master -> desc index of last write
    level: Dict[int, int] = {}  # master -> level its slot holds
    for i, name in enumerate(masters):
        programs[name] = [
            DmaDescriptor(
                "write",
                address=slot(i),
                beats=burst_beats,
                beat_bytes=beat_bytes,
                bursts=bursts,
                signal=channel(i, 0),
                priority=priority,
                pattern=i,
            )
        ]
        last_write[i] = 0
        level[i] = 0

    step = 1
    while step < n:
        for i in range(0, n, 2 * step):
            partner = i + step
            if partner >= n:
                continue  # bye: carries its partial up unchanged
            program = programs[masters[i]]
            read_idx = len(program)
            program.append(
                DmaDescriptor(
                    "read",
                    address=slot(partner),
                    beats=burst_beats,
                    beat_bytes=beat_bytes,
                    bursts=bursts,
                    wait=channel(partner, level[partner]),
                    priority=priority,
                )
            )
            program.append(
                DmaDescriptor(
                    "compute",
                    delay=compute_delay,
                    after=(read_idx, last_write[i]),
                )
            )
            level[i] += 1
            program.append(
                DmaDescriptor(
                    "write",
                    address=slot(i),
                    beats=burst_beats,
                    beat_bytes=beat_bytes,
                    bursts=bursts,
                    after=(read_idx + 1,),
                    signal=channel(i, level[i]),
                    priority=priority,
                    pattern=i + level[i] * n,
                )
            )
            last_write[i] = read_idx + 2
        step *= 2

    if allreduce:
        root_channel = channel(0, level[0])
        for i, name in enumerate(masters):
            if i == 0:
                continue
            programs[name].append(
                DmaDescriptor(
                    "read",
                    address=slot(0),
                    beats=burst_beats,
                    beat_bytes=beat_bytes,
                    bursts=bursts,
                    wait=root_channel,
                    priority=priority,
                )
            )

    return {
        name: DmaEngine(name, program, priority=priority)
        for name, program in programs.items()
    }
