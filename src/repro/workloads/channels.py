"""Stream channels: the token counters DMA descriptor programs sync on.

A :class:`StreamChannel` is a cumulative counter of *tokens* — one token
per completed burst (or compute step) of the descriptor that signals it.
Descriptors that ``wait`` on a channel become eligible burst-by-burst as
the count rises; producer/consumer credit loops are just two channels
wired in opposite directions (see :func:`repro.workloads.streams.stream_pair`).

Determinism contract
--------------------
Channels couple *different* masters, so token visibility must not depend
on the order masters happen to tick within a cycle (which differs between
a consumer registered before vs. after its producer, and between the
strict and activity kernels when the consumer was parked).  Tokens are
therefore **commit-delayed like queues**: a token put at cycle ``t`` is
visible to ``level()`` only from cycle ``t + 1``.  ``put`` also wakes
every master registered as a waiter — a wake schedules the component for
the *next* cycle, which is exactly when the token becomes visible.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List

__all__ = ["StreamChannel"]


class StreamChannel:
    """A named, monotone token counter with next-cycle visibility.

    ``initial`` tokens (credit preload) are stamped at cycle ``-1`` so
    they are visible from cycle 0 onward.

    State is the put-cycle list alone; it is captured/restored through
    the :class:`~repro.workloads.dma.DmaEngine` snapshots of every engine
    wired to the channel (idempotently — all engines hold the same list).
    The waiter registry is wiring, rebuilt by ``bind_master``.
    """

    def __init__(self, name: str, initial: int = 0) -> None:
        if initial < 0:
            raise ValueError(f"channel {name!r}: initial tokens must be >= 0")
        self.name = name
        self.initial = initial
        # Monotone non-decreasing cycle stamps, one per token ever put.
        self._puts: List[int] = [-1] * initial
        self._waiters: list = []  # masters to wake on put (wiring)

    # ------------------------------------------------------------------ #
    def put(self, cycle: int, count: int = 1) -> None:
        """Add ``count`` tokens, visible from ``cycle + 1``."""
        self._puts.extend([cycle] * count)
        for master in self._waiters:
            master.wake()

    def level(self, cycle: int) -> int:
        """Tokens visible at ``cycle`` (puts strictly before it)."""
        return bisect_left(self._puts, cycle)

    def total(self) -> int:
        """Tokens ever put, ignoring visibility (for reports/tests)."""
        return len(self._puts)

    def visible_at(self, k: int) -> int:
        """First cycle the ``k``-th token (1-based) is visible, assuming
        it has already been put; used by lookahead to park precisely."""
        return self._puts[k - 1] + 1

    def add_waiter(self, master) -> None:
        if master not in self._waiters:
            self._waiters.append(master)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StreamChannel({self.name!r}, tokens={len(self._puts)})"
