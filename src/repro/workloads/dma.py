"""Programmable DMA endpoints: descriptor programs as traffic sources.

A :class:`DmaEngine` is a :class:`~repro.protocols.base.TrafficSource`
that executes a small *descriptor program*: read bursts, write bursts and
compute delays, linked by intra-program dependencies (``after``) and by
cross-engine :class:`~repro.workloads.channels.StreamChannel` tokens
(``wait``/``signal``).  The protocol master that polls the engine
supplies all kernel integration — the engine only has to answer the
standard ``poll``/``lookahead``/``done`` questions, plus one extra hook
(``bind_master``) so channel tokens can wake a parked master.

The engine is deliberately *not* a kernel component: like every other
traffic source it is event-deterministic — identical across the strict
and activity kernels, across router cores, and across checkpoint/restore
(it implements the :class:`~repro.sim.snapshot.Snapshottable` contract,
including the channel token logs it shares with peer engines).

``compute`` descriptors model the endpoint's local work: the descriptor
completes ``delay`` cycles after its last dependency completes, without
touching the fabric.  Completion is stamped at that due cycle regardless
of when the master's next poll observes it, so the stamp is independent
of kernel scheduling; the signal token (if any) fires at the observing
poll and becomes visible a cycle later, exactly like a completed burst.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.transaction import ResponseStatus, Transaction, make_read, make_write
from repro.sim.snapshot import Snapshottable
from repro.workloads.channels import StreamChannel

__all__ = ["DmaDescriptor", "DmaEngine", "DmaProgramError"]

_OPS = ("read", "write", "compute")


def _channels_tuple(value) -> Tuple[StreamChannel, ...]:
    """Normalize the wait=/signal= argument: None, one channel, or an
    iterable of channels — always stored as a tuple."""
    if value is None:
        return ()
    if isinstance(value, StreamChannel):
        return (value,)
    return tuple(value)


class DmaProgramError(ValueError):
    """A descriptor program is structurally invalid (unknown op, a
    dependency on a later descriptor, a wait on a compute step...)."""


class DmaDescriptor:
    """One step of a DMA program.

    Parameters
    ----------
    op:
        ``"read"`` / ``"write"`` — a fabric burst (repeated ``bursts``
        times); ``"compute"`` — a local delay of ``delay`` cycles.
    address / beats / beat_bytes / bursts / stride:
        Burst ``b`` targets ``address + b * stride`` (``stride`` defaults
        to the burst footprint, i.e. a contiguous sweep).  With ``ring``
        set, ``b`` wraps modulo ``ring`` — a circular buffer.
    after:
        Indices of *earlier* descriptors in the same program that must
        fully complete before any burst of this one may issue.
    wait / signal:
        Stream channels — a single channel or a tuple of them.  Burst
        ``b`` may issue only once *every* wait channel holds ``b + 1``
        visible tokens; each completed burst puts one token on every
        signal channel (a compute puts one on completion).  A pipeline
        stage therefore waits on (upstream data, downstream credit) and
        signals (upstream credit, downstream data) with one descriptor
        pair.
    priority:
        Per-descriptor priority; ``None`` inherits the engine's.
    pattern:
        Base value for generated write data (deterministic, so memory
        images stay fingerprintable).
    """

    __slots__ = (
        "op",
        "address",
        "beats",
        "beat_bytes",
        "bursts",
        "stride",
        "ring",
        "delay",
        "after",
        "wait",
        "signal",
        "priority",
        "posted",
        "pattern",
    )

    def __init__(
        self,
        op: str,
        *,
        address: int = 0,
        beats: int = 8,
        beat_bytes: int = 4,
        bursts: int = 1,
        stride: Optional[int] = None,
        ring: Optional[int] = None,
        delay: int = 0,
        after: Tuple[int, ...] = (),
        wait: Optional[StreamChannel] = None,
        signal: Optional[StreamChannel] = None,
        priority: Optional[int] = None,
        posted: bool = False,
        pattern: int = 0,
    ) -> None:
        self.op = op
        self.address = address
        self.beats = beats
        self.beat_bytes = beat_bytes
        self.bursts = bursts
        self.stride = beats * beat_bytes if stride is None else stride
        self.ring = ring
        self.delay = delay
        self.after = tuple(after)
        self.wait = _channels_tuple(wait)
        self.signal = _channels_tuple(signal)
        self.priority = priority
        self.posted = posted
        self.pattern = pattern

    def describe(self) -> str:
        if self.op == "compute":
            return f"compute(delay={self.delay})"
        return (
            f"{self.op}(addr={self.address:#x}, beats={self.beats}, "
            f"bursts={self.bursts})"
        )


class DmaEngine(Snapshottable):
    """Execute a descriptor program through the polling protocol master.

    ``on_error="halt"`` (default) freezes the program on the first error
    completion (DECERR/SLVERR): ``done()`` stays false forever, so the
    run times out and :class:`~repro.ip.traffic.WorkloadStallError`
    surfaces this engine's :meth:`diagnose_stall` — a DMA program
    targeting an unmapped address fails loudly, by name.
    ``on_error="continue"`` counts the burst as done and carries on.
    """

    _snapshot_fields = (
        "_issued",
        "_done_bursts",
        "_complete_cycle",
        "_compute_done",
        "_signals_fired",
        "_txn_desc",
        "_halted",
        "bursts_completed",
        "issue_log",
        "complete_log",
        "completions",
    )

    def __init__(
        self,
        name: str,
        program: List[DmaDescriptor],
        *,
        priority: int = 0,
        on_error: str = "halt",
    ) -> None:
        if on_error not in ("halt", "continue"):
            raise ValueError("on_error must be 'halt' or 'continue'")
        self.name = name
        self.program: List[DmaDescriptor] = list(program)
        self.priority = priority
        self.on_error = on_error
        self._validate_program()
        n = len(self.program)
        self._issued = [0] * n  # bursts handed to the master
        self._done_bursts = [0] * n  # bursts completed
        self._complete_cycle: List[Optional[int]] = [None] * n
        self._compute_done: List[Optional[int]] = [None] * n  # due cycles
        self._signals_fired = [0] * n
        self._txn_desc: Dict[int, int] = {}  # txn_id -> descriptor index
        self._halted: Optional[str] = None
        self.bursts_completed = 0
        self.issue_log: List[Tuple[int, int, int]] = []  # (desc, burst, cycle)
        self.complete_log: List[Tuple[int, int, int]] = []
        self.completions: List[Tuple[int, int, ResponseStatus]] = []
        self._master = None  # set by bind_master (wiring, not state)
        # Channels this program touches, by name — the snapshot captures
        # their token logs through every engine that references them
        # (idempotent: all captures happen at the same instant).
        self._channels: Dict[str, StreamChannel] = {}
        for desc in self.program:
            for channel in desc.wait + desc.signal:
                known = self._channels.get(channel.name)
                if known is not None and known is not channel:
                    raise DmaProgramError(
                        f"{name}: two distinct channels named "
                        f"{channel.name!r} in one program"
                    )
                self._channels[channel.name] = channel

    def _validate_program(self) -> None:
        if not self.program:
            raise DmaProgramError(f"{self.name}: empty descriptor program")
        for i, desc in enumerate(self.program):
            label = f"{self.name}: descriptor {i}"
            if not isinstance(desc, DmaDescriptor):
                raise DmaProgramError(f"{label} is not a DmaDescriptor")
            if desc.op not in _OPS:
                raise DmaProgramError(
                    f"{label}: unknown op {desc.op!r}; known ops: {_OPS}"
                )
            for j in desc.after:
                if not isinstance(j, int) or not 0 <= j < i:
                    raise DmaProgramError(
                        f"{label}: after={desc.after} may only reference "
                        f"earlier descriptors (0..{i - 1}) — programs are "
                        f"DAGs by construction"
                    )
            if desc.op == "compute":
                if desc.delay < 0:
                    raise DmaProgramError(f"{label}: delay must be >= 0")
                if desc.wait:
                    raise DmaProgramError(
                        f"{label}: compute steps cannot wait on a channel "
                        f"(sequence them with after=)"
                    )
                if desc.bursts != 1:
                    raise DmaProgramError(
                        f"{label}: compute steps have exactly one burst"
                    )
            else:
                if desc.bursts < 1 or desc.beats < 1:
                    raise DmaProgramError(
                        f"{label}: bursts and beats must be >= 1"
                    )
                if desc.ring is not None and desc.ring < 1:
                    raise DmaProgramError(f"{label}: ring must be >= 1")

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def bind_master(self, master) -> None:
        """Called by the owning master's ``bind()``: register it as the
        wake target of every channel this program waits on."""
        self._master = master
        for desc in self.program:
            for channel in desc.wait:
                channel.add_waiter(master)

    # ------------------------------------------------------------------ #
    # deterministic progress
    # ------------------------------------------------------------------ #
    def _deps_complete(self, i: int) -> bool:
        cc = self._complete_cycle
        return all(cc[j] is not None for j in self.program[i].after)

    def _compute_due_at(self, i: int) -> Optional[int]:
        """Pure: the cycle compute ``i`` completes, if derivable now."""
        due = self._compute_done[i]
        if due is not None:
            return due
        if not self._deps_complete(i):
            return None
        desc = self.program[i]
        start = max(
            (self._complete_cycle[j] for j in desc.after), default=0
        )
        return start + desc.delay

    def _advance(self, cycle: int) -> None:
        """Stamp every compute completion due by ``cycle`` and fire its
        signal.  Only poll/notify paths call this (never lookahead), so
        the stamps land at the same events on every kernel."""
        progress = True
        while progress:
            progress = False
            for i, desc in enumerate(self.program):
                if desc.op != "compute" or self._complete_cycle[i] is not None:
                    continue
                if self._compute_done[i] is None:
                    due = self._compute_due_at(i)
                    if due is None:
                        continue
                    self._compute_done[i] = due
                    progress = True
                due = self._compute_done[i]
                if due is not None and cycle >= due:
                    # Completion time is the due cycle itself — not the
                    # observing poll's cycle — so it is scheduling-free.
                    self._complete_cycle[i] = due
                    self.complete_log.append((i, 0, due))
                    for channel in desc.signal:
                        channel.put(cycle)
                        self._signals_fired[i] += 1
                    progress = True

    def _burst_eligible(self, i: int, cycle: int) -> bool:
        desc = self.program[i]
        if desc.op == "compute" or self._issued[i] >= desc.bursts:
            return False
        if not self._deps_complete(i):
            return False
        need = self._issued[i] + 1
        return all(ch.level(cycle) >= need for ch in desc.wait)

    def _make_txn(self, i: int, burst: int) -> Transaction:
        desc = self.program[i]
        slot = burst % desc.ring if desc.ring is not None else burst
        address = desc.address + slot * desc.stride
        if desc.op == "read":
            txn = make_read(
                address,
                beats=desc.beats,
                beat_bytes=desc.beat_bytes,
                master=self.name,
            )
        else:
            data = [
                (desc.pattern + burst * desc.beats + k) & 0xFFFFFFFF
                for k in range(desc.beats)
            ]
            txn = make_write(
                address,
                data,
                beat_bytes=desc.beat_bytes,
                posted=desc.posted,
                master=self.name,
            )
        txn.priority = (
            self.priority if desc.priority is None else desc.priority
        )
        return txn

    # ------------------------------------------------------------------ #
    # TrafficSource protocol
    # ------------------------------------------------------------------ #
    def poll(self, cycle: int) -> Optional[Transaction]:
        self._advance(cycle)
        if self._halted is not None:
            return None
        for i in range(len(self.program)):
            if self._burst_eligible(i, cycle):
                burst = self._issued[i]
                txn = self._make_txn(i, burst)
                self._issued[i] += 1
                self._txn_desc[txn.txn_id] = i
                self.issue_log.append((i, burst, cycle))
                return txn
        return None

    def lookahead(self, cycle: int):
        """Pure — no state is touched, so skipped polls are free."""
        if self._halted is not None:
            return None  # halted forever: nothing will ever re-arm us
        horizon: Optional[int] = None
        for i, desc in enumerate(self.program):
            if desc.op == "compute":
                if self._complete_cycle[i] is not None:
                    continue
                due = self._compute_due_at(i)
                if due is None:
                    continue  # deps unresolved: a completion re-arms us
                if due <= cycle:
                    return ("at", cycle)  # poll must stamp + signal it
                horizon = due if horizon is None else min(horizon, due)
                continue
            if self._issued[i] >= desc.bursts:
                continue
            if self._burst_eligible(i, cycle):
                return ("at", cycle)
            if desc.wait:
                # Enough tokens already put on every wait channel but not
                # all visible yet: park until the latest needed token's
                # visibility cycle.  (Deps may still be pending then — an
                # early poll is harmless.)  A channel still short of
                # tokens wakes us via its put() instead.
                need = self._issued[i] + 1
                if all(ch.total() >= need for ch in desc.wait):
                    at = max(
                        [cycle] + [ch.visible_at(need) for ch in desc.wait]
                    )
                    horizon = at if horizon is None else min(horizon, at)
        if horizon is not None:
            return ("at", horizon)
        # Dormant: only a completion (response-channel wake) or a channel
        # token (bind_master waiter wake) can make a future poll succeed.
        return None

    def done(self) -> bool:
        if self._halted is not None:
            return False
        if self._txn_desc:
            return False
        return all(c is not None for c in self._complete_cycle)

    def notify_complete(
        self, txn_id: int, cycle: int, status: ResponseStatus
    ) -> None:
        self.completions.append((txn_id, cycle, status))
        i = self._txn_desc.pop(txn_id, None)
        if i is None:
            raise AssertionError(
                f"{self.name}: completion for unknown txn {txn_id}"
            )
        desc = self.program[i]
        if status.is_error and self.on_error == "halt":
            self._halted = (
                f"descriptor {i} {desc.describe()} completed with "
                f"{status.name} at cycle {cycle}"
            )
            return
        self._done_bursts[i] += 1
        self.bursts_completed += 1
        self.complete_log.append((i, self._done_bursts[i] - 1, cycle))
        for channel in desc.signal:
            channel.put(cycle)
            self._signals_fired[i] += 1
        if (
            self._done_bursts[i] == desc.bursts
            and self._issued[i] == desc.bursts
        ):
            self._complete_cycle[i] = cycle
            self._advance(cycle)  # a finished dep may release computes

    # ------------------------------------------------------------------ #
    # diagnostics + snapshot
    # ------------------------------------------------------------------ #
    def diagnose_stall(self) -> Optional[str]:
        """One line per stuck reason; None when nothing is stuck."""
        if self._halted is not None:
            return f"{self.name}: halted — {self._halted}"
        if self.done():
            return None
        reasons = []
        for i, desc in enumerate(self.program):
            if self._complete_cycle[i] is not None:
                continue
            if desc.op == "compute":
                if self._compute_due_at(i) is None:
                    reasons.append(
                        f"desc {i} {desc.describe()} waiting on "
                        f"after={desc.after}"
                    )
                continue
            inflight = self._issued[i] - self._done_bursts[i]
            if inflight:
                reasons.append(
                    f"desc {i} {desc.describe()}: {inflight} burst(s) "
                    f"in flight"
                )
            elif not self._deps_complete(i):
                reasons.append(
                    f"desc {i} {desc.describe()} waiting on "
                    f"after={desc.after}"
                )
            elif desc.wait:
                need = self._issued[i] + 1
                starved = [
                    f"{ch.name!r} holds {ch.total()}"
                    for ch in desc.wait
                    if ch.total() < need
                ]
                reasons.append(
                    f"desc {i} {desc.describe()} starved: burst "
                    f"{self._issued[i]} needs {need} token(s) but "
                    f"{'; '.join(starved) or 'tokens are pending'}"
                )
        if not reasons:
            reasons.append("unfinished (no further diagnosis)")
        return f"{self.name}: " + "; ".join(reasons)

    def _snapshot_state(self) -> dict:
        state = super()._snapshot_state()
        state["channels"] = {
            name: list(ch._puts) for name, ch in self._channels.items()
        }
        return state

    def _restore_state(self, state) -> None:
        super()._restore_state(state)
        for name, puts in state["channels"].items():
            self._channels[name]._puts[:] = puts
