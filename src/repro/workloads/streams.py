"""Producer/consumer stream pairs with credit backpressure.

A stream is two DMA engines wired through two channels:

- ``data`` — the producer puts one token per completed write burst; the
  consumer's read burst ``b`` waits for token ``b + 1`` (read-after-write
  ordering over the shared buffer);
- ``credit`` — preloaded with ``depth`` bursts worth of tokens; the
  producer's write burst ``b`` waits for credit token ``b + 1`` and the
  consumer returns one credit per completed read.  The producer can
  therefore run at most ``depth`` bursts ahead — classic credit-based
  backpressure, enforced by the endpoints themselves rather than by
  fabric buffering.

Both engines address a shared ring buffer of ``depth`` bursts, so the
memory footprint is the window, not the whole stream.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.channels import StreamChannel
from repro.workloads.dma import DmaDescriptor, DmaEngine

__all__ = ["stream_pair"]


def stream_pair(
    producer: str,
    consumer: str,
    *,
    buffer_base: int,
    total_bursts: int = 32,
    depth: int = 4,
    burst_beats: int = 8,
    beat_bytes: int = 4,
    priority: int = 0,
    pattern: int = 0,
) -> Tuple[Dict[str, DmaEngine], Dict[str, StreamChannel]]:
    """Build the two engines of one stream.

    Returns ``({producer: engine, consumer: engine}, {"data": ch,
    "credit": ch})`` — the engine dict plugs straight into
    ``SocBuilder(workload=...)``.
    """
    if total_bursts < 1 or depth < 1:
        raise ValueError("total_bursts and depth must be >= 1")
    data = StreamChannel(f"{producer}->{consumer}.data")
    credit = StreamChannel(f"{producer}->{consumer}.credit", initial=depth)
    ring = min(depth, total_bursts)
    prod = DmaEngine(
        producer,
        [
            DmaDescriptor(
                "write",
                address=buffer_base,
                beats=burst_beats,
                beat_bytes=beat_bytes,
                bursts=total_bursts,
                ring=ring,
                wait=credit,
                signal=data,
                priority=priority,
                pattern=pattern,
            )
        ],
        priority=priority,
    )
    cons = DmaEngine(
        consumer,
        [
            DmaDescriptor(
                "read",
                address=buffer_base,
                beats=burst_beats,
                beat_bytes=beat_bytes,
                bursts=total_bursts,
                ring=ring,
                wait=data,
                signal=credit,
                priority=priority,
            )
        ],
        priority=priority,
    )
    engines = {producer: prod, consumer: cons}
    channels = {"data": data, "credit": credit}
    return engines, channels
