"""``dma_chain`` — chained read→compute→write DMA programs.

Eight AXI DMA engines each execute ``links`` dataflow links: fetch a
chunk from the (slow) ``src`` memory, spend ``compute_delay`` cycles on
it, store the result to the (fast) ``dst`` memory, then start the next
link — the classic descriptor-chained offload engine.  Every link is
serialized through ``after=`` dependencies, so the per-engine issue
order is a correctness property the determinism tests can pin.
"""

from __future__ import annotations

from repro.soc.builder import NocSoc, SocBuilder
from repro.soc.config import InitiatorSpec, TargetSpec
from repro.workloads.dma import DmaDescriptor, DmaEngine

__all__ = ["build", "describe"]

_SRC_SIZE = 0x4000
_DST_SIZE = 0x4000


def describe() -> str:
    return (
        "8 DMA engines running chained read->compute->write descriptor "
        "programs between a slow source and a fast destination memory"
    )


def _chain_program(
    index: int,
    links: int,
    bursts: int,
    burst_beats: int,
    beat_bytes: int,
    compute_delay: int,
):
    chunk = bursts * burst_beats * beat_bytes
    program = []
    for link in range(links):
        offset = (index * links + link) * chunk
        read = len(program)
        program.append(
            DmaDescriptor(
                "read",
                address=offset,
                beats=burst_beats,
                beat_bytes=beat_bytes,
                bursts=bursts,
                # Serialize link n+1 behind link n's store.
                after=(read - 1,) if link else (),
            )
        )
        program.append(
            DmaDescriptor("compute", delay=compute_delay, after=(read,))
        )
        program.append(
            DmaDescriptor(
                "write",
                address=_SRC_SIZE + offset,
                beats=burst_beats,
                beat_bytes=beat_bytes,
                bursts=bursts,
                after=(read + 1,),
                pattern=index * links + link,
            )
        )
    return program


def build(
    *,
    masters: int = 8,
    links: int = 3,
    bursts: int = 4,
    burst_beats: int = 8,
    beat_bytes: int = 4,
    compute_delay: int = 12,
    strict_kernel=None,
    router_core=None,
) -> NocSoc:
    chunk = bursts * burst_beats * beat_bytes
    if masters * links * chunk > _SRC_SIZE:
        raise ValueError(
            f"dma_chain: {masters} engines x {links} links x {chunk}B "
            f"chunks overflow the {_SRC_SIZE:#x}-byte regions"
        )
    workload = {
        f"dma{index}": DmaEngine(
            f"dma{index}",
            _chain_program(
                index, links, bursts, burst_beats, beat_bytes, compute_delay
            ),
        )
        for index in range(masters)
    }
    builder = SocBuilder(
        name="dma_chain",
        strict_kernel=strict_kernel,
        router_core=router_core,
        workload=workload,
    )
    for name in workload:
        builder.add_initiator(
            InitiatorSpec(name, "AXI", protocol_kwargs={"id_count": 4})
        )
    builder.add_target(
        TargetSpec("src", size=_SRC_SIZE, read_latency=6, write_latency=3)
    )
    builder.add_target(
        TargetSpec("dst", size=_DST_SIZE, read_latency=2, write_latency=1)
    )
    return builder.build()
