"""``collective_allreduce`` — binary-tree allreduce over a torus.

Eight masters on a 4x4 torus (DOR + dateline, the deadlock-free
wraparound configuration) run the generated
:func:`~repro.workloads.collectives.tree_reduction` program with the
broadcast phase enabled: three combining rounds funnel partials into
``node0``'s scratch slot, then every other node fetches the result.
All traffic funnels through one scratch memory, so the reduction tree's
serialization — not link bandwidth — sets the completion time.
"""

from __future__ import annotations

from repro.soc.builder import NocSoc, SocBuilder
from repro.soc.config import InitiatorSpec, TargetSpec
from repro.transport import topology as topo
from repro.workloads.collectives import tree_reduction

__all__ = ["build", "describe"]

_SCRATCH_SIZE = 0x4000


def describe() -> str:
    return (
        "binary-tree allreduce of 8 masters through memory scratch slots "
        "on a 4x4 torus (DOR + dateline)"
    )


def build(
    *,
    masters: int = 8,
    block_bytes: int = 256,
    compute_delay: int = 16,
    strict_kernel=None,
    router_core=None,
) -> NocSoc:
    if masters * block_bytes > _SCRATCH_SIZE:
        raise ValueError(
            f"collective_allreduce: {masters} x {block_bytes}B slots "
            f"overflow the {_SCRATCH_SIZE:#x}-byte scratch memory"
        )
    names = [f"node{index}" for index in range(masters)]
    workload = tree_reduction(
        names,
        scratch_base=0,
        block_bytes=block_bytes,
        compute_delay=compute_delay,
        allreduce=True,
    )
    builder = SocBuilder(
        name="collective_allreduce",
        strict_kernel=strict_kernel,
        router_core=router_core,
        workload=workload,
        topology=topo.torus(4, 4, endpoints=masters + 1),
        routing="dor",
        vcs=2,
        vc_policy="dateline",
    )
    for name in names:
        builder.add_initiator(
            InitiatorSpec(name, "AXI", protocol_kwargs={"id_count": 4})
        )
    builder.add_target(
        TargetSpec(
            "scratch",
            size=_SCRATCH_SIZE,
            read_latency=2,
            write_latency=1,
            max_outstanding=4,
        )
    )
    return builder.build()
