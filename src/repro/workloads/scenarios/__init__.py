"""Built-in scenarios: each module is a registry entry.

A scenario module exposes ``build(**params) -> NocSoc`` (accepting at
least ``strict_kernel=`` and ``router_core=``) and ``describe()``; this
package registers every built-in under its module name on import, which
:mod:`repro.workloads` triggers — so ``repro.workloads.get("dma_chain")``
works as soon as the package is imported.
"""

from __future__ import annotations

from repro.workloads.registry import register
from repro.workloads.scenarios import (
    collective_allreduce,
    dma_chain,
    stream_pipeline,
)

__all__ = ["collective_allreduce", "dma_chain", "stream_pipeline"]

register("dma_chain", dma_chain)
register("stream_pipeline", stream_pipeline)
register("collective_allreduce", collective_allreduce)
