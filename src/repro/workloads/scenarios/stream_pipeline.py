"""``stream_pipeline`` — multi-stage streaming pipelines with credit flow.

Two parallel pipelines of four stages each.  Adjacent stages share a
ring buffer in memory, coupled by a ``data``/``credit`` channel pair
(see :mod:`repro.workloads.streams`); a middle stage additionally
threads a private ``work`` channel from its read descriptor to its write
descriptor, so store burst ``b`` waits on *both* its own fetch ``b`` and
a downstream credit — the tuple wait/signal form.  End-to-end the
pipeline self-throttles to ``depth`` bursts in flight per hop with zero
fabric-level flow control.
"""

from __future__ import annotations

from repro.soc.builder import NocSoc, SocBuilder
from repro.soc.config import InitiatorSpec, TargetSpec
from repro.workloads.channels import StreamChannel
from repro.workloads.dma import DmaDescriptor, DmaEngine

__all__ = ["build", "describe"]

_BUF_SIZE = 0x4000


def describe() -> str:
    return (
        "2 four-stage streaming pipelines over memory ring buffers with "
        "credit backpressure between every pair of stages"
    )


def _pipeline_engines(
    pipe: int,
    stages: int,
    total_bursts: int,
    depth: int,
    burst_beats: int,
    beat_bytes: int,
):
    """Engines for one pipeline; stage s reads buffer s-1, writes buffer s."""
    ring = min(depth, total_bursts)
    footprint = burst_beats * beat_bytes * ring
    # Pipelines alternate between the two buffer memories; extra
    # pipelines on the same memory stack their buffers above the first's.
    region = (pipe % 2) * _BUF_SIZE + (pipe // 2) * (stages - 1) * footprint
    buffer_base = [region + stage * footprint for stage in range(stages - 1)]
    data = [
        StreamChannel(f"p{pipe}.b{stage}.data") for stage in range(stages - 1)
    ]
    credit = [
        StreamChannel(f"p{pipe}.b{stage}.credit", initial=depth)
        for stage in range(stages - 1)
    ]

    def burst(op, stage, **kwargs):
        return DmaDescriptor(
            op,
            address=buffer_base[stage],
            beats=burst_beats,
            beat_bytes=beat_bytes,
            bursts=total_bursts,
            ring=ring,
            **kwargs,
        )

    engines = {}
    for stage in range(stages):
        name = f"p{pipe}s{stage}"
        if stage == 0:
            program = [
                burst(
                    "write", 0,
                    wait=credit[0], signal=data[0],
                    pattern=pipe * 101,
                )
            ]
        elif stage == stages - 1:
            program = [
                burst(
                    "read", stage - 1,
                    wait=data[stage - 1], signal=credit[stage - 1],
                )
            ]
        else:
            work = StreamChannel(f"{name}.work")
            program = [
                burst(
                    "read", stage - 1,
                    wait=data[stage - 1],
                    signal=(credit[stage - 1], work),
                ),
                burst(
                    "write", stage,
                    wait=(work, credit[stage]),
                    signal=data[stage],
                    pattern=pipe * 101 + stage,
                ),
            ]
        engines[name] = DmaEngine(name, program)
    return engines


def build(
    *,
    pipelines: int = 2,
    stages: int = 4,
    total_bursts: int = 24,
    depth: int = 4,
    burst_beats: int = 8,
    beat_bytes: int = 4,
    strict_kernel=None,
    router_core=None,
) -> NocSoc:
    if stages < 2:
        raise ValueError("stream_pipeline needs at least two stages")
    workload = {}
    for pipe in range(pipelines):
        workload.update(
            _pipeline_engines(
                pipe, stages, total_bursts, depth, burst_beats, beat_bytes
            )
        )
    builder = SocBuilder(
        name="stream_pipeline",
        strict_kernel=strict_kernel,
        router_core=router_core,
        workload=workload,
    )
    for name in workload:
        builder.add_initiator(
            InitiatorSpec(name, "AXI", protocol_kwargs={"id_count": 4})
        )
    builder.add_target(
        TargetSpec("buf0", size=_BUF_SIZE, read_latency=2, write_latency=1)
    )
    builder.add_target(
        TargetSpec("buf1", size=_BUF_SIZE, read_latency=2, write_latency=1)
    )
    return builder.build()
