"""The scenario registry: declarative workload lookup by name.

A *scenario* is any object (typically a module) exposing:

- ``build(**params)`` — construct and return a ready-to-run
  :class:`~repro.soc.builder.NocSoc` (by convention accepting at least
  ``strict_kernel=`` and ``router_core=``);
- ``describe()`` — a one-line human description.

Bench workloads, examples and tests resolve scenarios through
:func:`get` instead of hand-wiring sources, so "run the DMA chain on the
strict kernel" is one registry call regardless of how the scenario wires
its engines.  The built-in scenarios under
:mod:`repro.workloads.scenarios` self-register on package import.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "UnknownScenarioError",
    "available",
    "describe",
    "get",
    "register",
]


class UnknownScenarioError(LookupError):
    """Asked the registry for a scenario name nobody registered."""


_SCENARIOS: Dict[str, object] = {}


def register(name: str, scenario) -> None:
    """Register ``scenario`` under ``name``.

    Duplicate names are a wiring bug and raise ``ValueError``; a scenario
    missing the ``build``/``describe`` contract is rejected immediately
    rather than failing at first use.
    """
    if name in _SCENARIOS:
        raise ValueError(f"scenario {name!r} is already registered")
    for attr in ("build", "describe"):
        if not callable(getattr(scenario, attr, None)):
            raise ValueError(
                f"scenario {name!r} must expose a callable {attr}()"
            )
    _SCENARIOS[name] = scenario


def get(name: str):
    """Look up a registered scenario, raising the named error with the
    full menu when the name is unknown."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; available: {list(available())}"
        ) from None


def available() -> Tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(_SCENARIOS))


def describe(name: str) -> str:
    """Convenience: the scenario's one-line description."""
    return get(name).describe()
