"""Programmable endpoints: DMA programs, streams, collectives, traces.

The workload layer sits *above* the protocol masters: everything here is
a :class:`~repro.protocols.base.TrafficSource` (or generates them), so
the kernel, NIUs and fabric never know whether a master runs a random
workload or a descriptor-chained DMA program.  The scenario registry
(:func:`register`/:func:`get`/:func:`available`) names complete
ready-to-run SoCs; the built-ins under
:mod:`repro.workloads.scenarios` self-register on import of this
package.
"""

from repro.ip.traffic import TrafficSpec, WorkloadStallError
from repro.workloads.channels import StreamChannel
from repro.workloads.collectives import (
    all_to_all,
    near_neighbor_exchange,
    tree_reduction,
)
from repro.workloads.dma import DmaDescriptor, DmaEngine, DmaProgramError
from repro.workloads.registry import (
    UnknownScenarioError,
    available,
    describe,
    get,
    register,
)
from repro.workloads.streams import stream_pair
from repro.workloads.trace import (
    TRACE_FORMAT_VERSION,
    TraceFormatError,
    TraceReplay,
    TraceReplayError,
    TraceReplaySource,
    TraceWriter,
)

# Imported last: registers the built-in scenarios with the registry.
from repro.workloads import scenarios  # noqa: E402  (isort: skip)

__all__ = [
    "DmaDescriptor",
    "DmaEngine",
    "DmaProgramError",
    "StreamChannel",
    "TRACE_FORMAT_VERSION",
    "TraceFormatError",
    "TraceReplay",
    "TraceReplayError",
    "TraceReplaySource",
    "TraceWriter",
    "TrafficSpec",
    "UnknownScenarioError",
    "WorkloadStallError",
    "all_to_all",
    "available",
    "describe",
    "get",
    "near_neighbor_exchange",
    "register",
    "scenarios",
    "stream_pair",
    "tree_reduction",
]
