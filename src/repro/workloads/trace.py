"""Compact versioned traces: record injected intents, replay them exactly.

:class:`TraceWriter` wraps any traffic source in a recording shim; every
intent the master pulls is logged as ``(cycle, op, address, ...)``.  The
JSONL serialization (one header line + one line per intent) round-trips
through :class:`TraceReplay`, whose per-master
:class:`TraceReplaySource` re-issues each intent at *exactly* the
recorded cycle.

Because replay sources construct their transactions lazily — at the
recorded poll cycle, in the recorded cross-master order — the global
transaction-id stream of a replayed run matches the recorded run
allocation-for-allocation, and the determinism fingerprint comes out
byte-identical.  (Sources that pre-build their transactions at
construction time, like ``ScriptedTraffic``, already allocate ids before
the run starts; record→replay of those reproduces behavior but not the
id stream.)

Replay is *checked*: if the replayed SoC diverges from the recorded one
(different topology, latencies, seeds...) and a master cannot issue an
intent until after its recorded cycle, the source raises
:class:`TraceReplayError` rather than silently time-shifting the trace.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core.transaction import (
    BurstType,
    Opcode,
    ResponseStatus,
    Transaction,
)
from repro.sim.kernel import SimulationError
from repro.sim.snapshot import Snapshottable

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TraceFormatError",
    "TraceReplay",
    "TraceReplayError",
    "TraceReplaySource",
    "TraceWriter",
]

TRACE_FORMAT_VERSION = 1

_FORMAT = "repro-trace"

#: Per-intent record fields, in serialization order.
_FIELDS = ("c", "o", "a", "n", "w", "b", "d", "t", "g", "x", "p")


class TraceFormatError(ValueError):
    """A trace file/blob is not something this version can read."""


class TraceReplayError(SimulationError):
    """A replayed run diverged from the recorded one: an intent came due
    strictly after its recorded cycle, so the replay would no longer be
    the recorded workload."""


def _event(txn: Transaction, cycle: int) -> dict:
    return {
        "c": cycle,
        "o": txn.opcode.name,
        "a": txn.address,
        "n": txn.beats,
        "w": txn.beat_bytes,
        "b": txn.burst.name,
        "d": None if txn.data is None else list(txn.data),
        "t": txn.thread,
        "g": txn.txn_tag,
        "x": 1 if txn.excl else 0,
        "p": txn.priority,
    }


def _transaction(event: dict, master: str) -> Transaction:
    txn = Transaction(
        opcode=Opcode[event["o"]],
        address=event["a"],
        beats=event["n"],
        beat_bytes=event["w"],
        burst=BurstType[event["b"]],
        data=None if event["d"] is None else list(event["d"]),
        master=master,
        thread=event["t"],
        txn_tag=event["g"],
        excl=bool(event["x"]),
        priority=event["p"],
    )
    return txn


class RecordingSource(Snapshottable):
    """Transparent wrapper: delegates the full TrafficSource protocol to
    the wrapped source while appending every non-None poll to the
    writer's stream.  Snapshots capture the wrapped source plus the
    recorded count, so a restored run truncates and re-records the tail
    instead of duplicating it."""

    def __init__(self, inner, events: List[dict]) -> None:
        self._inner = inner
        self._events = events
        self._has_lookahead = getattr(inner, "lookahead", None) is not None

    def poll(self, cycle: int) -> Optional[Transaction]:
        txn = self._inner.poll(cycle)
        if txn is not None:
            self._events.append(_event(txn, cycle))
        return txn

    def lookahead(self, cycle: int):
        if not self._has_lookahead:
            return ("at", cycle)  # no inner hint: poll every cycle
        return self._inner.lookahead(cycle)

    def done(self) -> bool:
        return self._inner.done()

    def notify_complete(
        self, txn_id: int, cycle: int, status: ResponseStatus
    ) -> None:
        self._inner.notify_complete(txn_id, cycle, status)

    def bind_master(self, master) -> None:
        bind = getattr(self._inner, "bind_master", None)
        if bind is not None:
            bind(master)

    def diagnose_stall(self) -> Optional[str]:
        diagnose = getattr(self._inner, "diagnose_stall", None)
        return diagnose() if diagnose is not None else None

    def _snapshot_state(self) -> dict:
        return {
            "inner": self._inner.snapshot(),
            "recorded": len(self._events),
        }

    def _restore_state(self, state) -> None:
        self._inner.restore(state["inner"])
        del self._events[state["recorded"]:]


class TraceWriter:
    """Collects one intent stream per master and serializes them."""

    def __init__(self, note: str = "") -> None:
        self.note = note
        self._streams: Dict[str, List[dict]] = {}

    def record(self, master: str, source) -> RecordingSource:
        """Wrap ``source`` so ``master``'s intents land in this trace."""
        if master in self._streams:
            raise ValueError(f"master {master!r} is already being recorded")
        events: List[dict] = []
        self._streams[master] = events
        return RecordingSource(source, events)

    def events(self, master: str) -> List[dict]:
        return list(self._streams[master])

    def masters(self) -> List[str]:
        return sorted(self._streams)

    def to_jsonl(self) -> str:
        header = {
            "format": _FORMAT,
            "version": TRACE_FORMAT_VERSION,
            "masters": self.masters(),
            "note": self.note,
        }
        lines = [json.dumps(header, sort_keys=True)]
        for master in self.masters():
            for event in self._streams[master]:
                record = {"m": master}
                record.update(event)
                lines.append(json.dumps(record, sort_keys=True))
        return "\n".join(lines) + "\n"

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())


class TraceReplay:
    """A parsed trace, handing out one replay source per master."""

    def __init__(self, streams: Dict[str, List[dict]], note: str = "") -> None:
        self._streams = streams
        self.note = note

    # ------------------------------------------------------------------ #
    @classmethod
    def from_jsonl(cls, text: str) -> "TraceReplay":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise TraceFormatError("empty trace")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"unreadable trace header: {exc}") from exc
        if not isinstance(header, dict) or header.get("format") != _FORMAT:
            raise TraceFormatError(
                f"not a {_FORMAT} stream (header: {header!r:.80})"
            )
        version = header.get("version")
        if version != TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                f"trace format version {version!r} is not the supported "
                f"version {TRACE_FORMAT_VERSION}"
            )
        masters = header.get("masters", [])
        streams: Dict[str, List[dict]] = {m: [] for m in masters}
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"line {lineno}: unreadable record: {exc}"
                ) from exc
            master = record.get("m")
            if master not in streams:
                raise TraceFormatError(
                    f"line {lineno}: unknown master {master!r}; header "
                    f"declares {masters}"
                )
            missing = [key for key in _FIELDS if key not in record]
            if missing:
                raise TraceFormatError(
                    f"line {lineno}: record missing fields {missing}"
                )
            streams[master].append({key: record[key] for key in _FIELDS})
        for stream in streams.values():
            stream.sort(key=lambda event: event["c"])
        return cls(streams, note=header.get("note", ""))

    @classmethod
    def load(cls, path) -> "TraceReplay":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_jsonl(handle.read())

    # ------------------------------------------------------------------ #
    def masters(self) -> List[str]:
        return sorted(self._streams)

    def events(self, master: str) -> List[dict]:
        return list(self._streams[master])

    def source(self, master: str) -> "TraceReplaySource":
        if master not in self._streams:
            raise TraceFormatError(
                f"trace has no stream for master {master!r}; recorded "
                f"masters: {self.masters()}"
            )
        return TraceReplaySource(master, self._streams[master])


class TraceReplaySource(Snapshottable):
    """Re-issues a recorded intent stream at the recorded cycles.

    Transactions are constructed lazily, at poll time, so the global id
    stream advances exactly as it did while recording.
    """

    _snapshot_fields = ("_next", "completions")

    def __init__(self, master: str, events: List[dict]) -> None:
        self.master = master
        self._events = events
        self._next = 0
        self.completions: List[tuple] = []

    def poll(self, cycle: int) -> Optional[Transaction]:
        if self._next >= len(self._events):
            return None
        event = self._events[self._next]
        if cycle < event["c"]:
            return None
        if cycle > event["c"]:
            raise TraceReplayError(
                f"{self.master}: intent {self._next} was recorded at cycle "
                f"{event['c']} but the replay first polled at {cycle} — "
                f"the replayed build diverged from the recorded one"
            )
        self._next += 1
        return _transaction(event, self.master)

    def lookahead(self, cycle: int):
        if self._next >= len(self._events):
            return None  # exhausted: dormant forever
        return ("at", max(cycle, self._events[self._next]["c"]))

    def done(self) -> bool:
        return self._next >= len(self._events)

    def notify_complete(
        self, txn_id: int, cycle: int, status: ResponseStatus
    ) -> None:
        self.completions.append((txn_id, cycle, status))
