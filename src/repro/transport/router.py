"""Cycle-level NoC switch (router) model.

The router is deliberately *transaction-unaware*: per the paper, it reads
only the head-flit routing fields (destination, source, priority, the
LOCK marker) and moves opaque flits.  Micro-architecture:

- one FIFO buffer per input port **per virtual channel** (upstream
  routers / injection ports push into it — the staged queue gives one
  cycle per hop).  Ports are wired by
  :class:`~repro.transport.network.Network` through link objects: on an
  ideal same-domain link the output queue *is* the downstream router's
  input buffer, while a serialized/piped/CDC link interposes a
  :class:`~repro.phys.link.PhysicalLink` (or, with several VCs, a
  :class:`~repro.phys.link.VcPhysicalLink` that time-multiplexes the VCs
  over one physical channel) whose feed queues the router sees as its
  outputs — backpressure and switching-mode gates then apply to the
  link's staging buffers, which is exactly the wire-side FIFO a narrow
  link would have in hardware;
- a **VC-allocation stage** ahead of switch allocation (``vcs >= 2``): a
  head flit at the front of an input VC first acquires a free output VC
  (chosen by the plane's :class:`~repro.transport.routing.VcPolicy`) and
  holds it until its tail passes — each output VC carries one packet at
  a time, so per-VC streams never interleave;
- per-output arbitration each cycle (policy pluggable, see
  :mod:`repro.transport.qos`); one flit per *physical* output per cycle,
  with one candidate per (input port, VC) — flits of different packets
  interleave on the physical channel, which is what defeats
  head-of-line blocking;
- wormhole allocation: once a head flit wins an output VC, that VC is
  owned by the input VC until the tail flit passes.  With ``vcs == 1``
  (the default) this degenerates to the classic single-buffer wormhole
  switch, cycle-identical to the pre-VC fabric;
- switching-mode gate on head departure (wormhole / store-and-forward /
  virtual cut-through, see :mod:`repro.transport.switching`);
- **LOCK handling** — the one transaction-family leak the paper concedes:
  after a ``LOCK``/``READEX`` request's tail passes an output port, the
  port admits only packets from the locking master until that master's
  ``UNLOCK``/``STORE_COND_LOCKED`` tail passes.  Locks are per physical
  output port (they model a locked path, not a buffer).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.packet import PacketKind
from repro.core.transaction import Opcode
from repro.sim.component import Component
from repro.sim.queue import SimQueue
from repro.sim.snapshot import Snapshottable
from repro.transport.flit import Flit
from repro.transport.qos import Arbiter, Candidate, PriorityArbiter
from repro.transport.routing import AdaptiveRoutingTable, EscapeVcPolicy, VcPolicy
from repro.transport.switching import SwitchingMode
from repro.transport.topology import router_sort_key

_LOCK_SETTERS = (Opcode.LOCK, Opcode.READEX)
_LOCK_CLEARERS = (Opcode.UNLOCK, Opcode.STORE_COND_LOCKED)

#: Key of one input (or output) virtual channel: ``(port name, vc)``.
VcKey = Tuple[str, int]


class Router(Component, Snapshottable):
    """One switch.  Wiring is done by :class:`~repro.transport.network.Network`."""

    def __init__(
        self,
        name: str,
        router_id: Hashable,
        table: Dict[int, str],
        mode: SwitchingMode = SwitchingMode.WORMHOLE,
        buffer_capacity: int = 8,
        arbiter: Optional[Arbiter] = None,
        lock_support: bool = True,
        vcs: int = 1,
        vc_policy: Optional[VcPolicy] = None,
        adaptive_table: Optional[AdaptiveRoutingTable] = None,
        stream_fast_path: bool = True,
    ) -> None:
        super().__init__(name)
        if vcs < 1:
            raise ValueError(f"{name}: vcs must be >= 1, got {vcs}")
        self.router_id = router_id
        self.table = table
        self.mode = mode
        self.buffer_capacity = buffer_capacity
        self.arbiter = arbiter if arbiter is not None else PriorityArbiter()
        self.lock_support = lock_support
        self.vcs = vcs
        self.vc_policy = vc_policy if vc_policy is not None else VcPolicy()
        # Body-flit streaming fast path: once a head holds its output VC
        # and an output is uncontested, later flits bypass candidate
        # construction and the arbiter call (the grant is still recorded
        # — see Arbiter.note_sole_grant).  Disable to run the reference
        # arbitration for every flit; tests pin that both produce the
        # same flit interleaving, cycle for cycle.
        self.stream_fast_path = stream_fast_path
        # Minimal-adaptive mode: route choice becomes a per-cycle
        # multi-candidate allocation decision (see _allocate_adaptive);
        # ``table`` then holds the escape (deterministic) next hops.
        self.adaptive_table = adaptive_table
        if adaptive_table is not None and not isinstance(
            self.vc_policy, EscapeVcPolicy
        ):
            raise ValueError(
                f"{name}: adaptive routing needs an EscapeVcPolicy to "
                f"split adaptive/escape VC classes, got "
                f"{self.vc_policy.name!r}"
            )
        if adaptive_table is not None:
            policy = self.vc_policy
            self._n_adaptive = policy.adaptive_vcs(vcs)
            self._escape_on = policy.escape
            self._escape_base_vc = policy.escape_base(vcs)
        # Allocation hot-path caches: the escape VC of a hop is a pure
        # function of (in port, out port, in VC) geometry; and a head that
        # found no free candidate (with no locks involved) stays blocked
        # until an output VC is released, so its failed scan is cached
        # against a release/lock version stamp instead of repeated every
        # cycle.
        self._escape_vc_cache: Dict[Tuple[str, str, int], int] = {}
        self._alloc_fail: Dict[VcKey, Optional[Tuple[int, Flit]]] = {}
        self._release_version = 0
        # Buffers keyed by (port, vc); vc is always 0 when vcs == 1.
        self.inputs: Dict[VcKey, SimQueue] = {}
        self.outputs: Dict[VcKey, SimQueue] = {}
        # Hot-path port lists, presorted at wiring time so tick never
        # calls sorted() (arbitration order is the sorted (port, vc) key).
        self._sorted_inputs: List[tuple] = []
        self._sorted_outputs: List[tuple] = []
        self._physical_outputs: List[str] = []
        # per-input-VC state
        self._input_alloc: Dict[VcKey, Optional[VcKey]] = {}
        self._input_head: Dict[VcKey, Optional[Flit]] = {}
        self._input_age: Dict[VcKey, int] = {}
        # per-output-VC / per-output state
        self._output_owner: Dict[VcKey, Optional[VcKey]] = {}
        self._output_lock: Dict[str, Optional[int]] = {}
        # neighbour geometry for the VC policy (None = endpoint port)
        self._in_neighbor: Dict[str, Optional[Hashable]] = {}
        self._out_neighbor: Dict[str, Optional[Hashable]] = {}
        # arbitration candidate ids: with one VC the historical port name,
        # otherwise "port@vc<N>" — one candidate per (input, VC)
        self._ckey: Dict[VcKey, str] = {}
        self._ckey_to_ivc: Dict[str, VcKey] = {}
        # canonical iteration order per (port, vc) / per physical port
        self._port_keys: Dict[VcKey, tuple] = {}
        self._phys_out_keys: Dict[str, tuple] = {}
        # Fault state (pushed by transport.faults.FaultInjector, which is
        # registered before the routers so an epoch's state is visible to
        # every router tick of the same cycle).  _dead_ports are this
        # router's downed *output* ports; _healthy_adaptive keeps the
        # pristine table so degraded grants can be classified.
        self._dead_ports: frozenset = frozenset()
        self._fault_degraded = False
        self._healthy_adaptive = adaptive_table
        # Dense hot-core executor bound to this router, if any (see
        # transport.router_core).  When set, ``tick`` is rebound to the
        # core's step function (and, under the batched stepper, ``wake``
        # / ``is_idle`` are rebound too); the dict state above remains
        # authoritative for wiring-time mutation and is written through
        # by the core at every transition external readers depend on.
        self._array_core = None
        # stats
        self.flits_forwarded = 0
        self.packets_forwarded = 0
        #: Packets granted an adaptive-class vs escape-class output VC at
        #: this router (adaptive routing only; ejection counts as neither).
        self.packets_adaptive = 0
        self.packets_escape = 0
        #: Cycles in which at least one output was lock-stalled (counted
        #: at most once per cycle; per-output detail below).
        self.lock_stall_cycles = 0
        self.lock_stalls_by_output: Dict[str, int] = {}
        self.output_busy_cycles: Dict[str, int] = {}
        #: Packets granted an output while the plane was degraded and the
        #: candidate set differed from healthy (faults_hit), resp. granted
        #: a port outside the healthy-minimal set (packets_rerouted —
        #: genuine detours around a failure).
        self.faults_hit = 0
        self.packets_rerouted = 0
        #: Cycles in which at least one head or in-flight stream here was
        #: blocked purely by a downed output port.
        self.fault_stall_cycles = 0

    # ------------------------------------------------------------------ #
    # wiring (Network calls these during construction)
    # ------------------------------------------------------------------ #
    def _candidate_key(self, port: str, vc: int) -> str:
        return port if self.vcs == 1 else f"{port}@vc{vc}"

    def _port_order(self, port: str, ident: Optional[Hashable]) -> tuple:
        """Canonical iteration/arbitration order for one port.

        Ports group by their prefix (``in`` / ``inj`` / ``local`` /
        ``to`` — the same grouping plain string sort gave) and order
        *within* a group by the canonical router/endpoint key, so router
        ``(1, 10)``'s ports no longer sort before ``(1, 2)``'s on
        fabrics wider than 10 the way the raw port strings did.
        """
        prefix = port.split(":", 1)[0]
        return (prefix, router_sort_key(ident if ident is not None else port))

    def add_input(
        self,
        port: str,
        queue: SimQueue,
        vc: int = 0,
        neighbor: Optional[Hashable] = None,
        order: Optional[Hashable] = None,
    ) -> SimQueue:
        key = (port, vc)
        if key in self.inputs:
            raise ValueError(f"{self.name}: duplicate input port {key!r}")
        if not 0 <= vc < self.vcs:
            raise ValueError(f"{self.name}: input VC {vc} outside 0..{self.vcs - 1}")
        self.inputs[key] = queue
        self._input_alloc[key] = None
        self._input_head[key] = None
        self._input_age[key] = 0
        self._alloc_fail[key] = None
        self._in_neighbor[port] = neighbor
        ckey = self._candidate_key(port, vc)
        self._ckey[key] = ckey
        self._ckey_to_ivc[ckey] = key
        self._port_keys[key] = (
            self._port_order(port, neighbor if order is None else order), vc
        )
        self._sorted_inputs = sorted(
            self.inputs.items(), key=lambda item: self._port_keys[item[0]]
        )
        queue.wake_on_push(self)
        return queue

    def add_output(
        self,
        port: str,
        queue: SimQueue,
        vc: int = 0,
        neighbor: Optional[Hashable] = None,
        order: Optional[Hashable] = None,
    ) -> SimQueue:
        key = (port, vc)
        if key in self.outputs:
            raise ValueError(f"{self.name}: duplicate output port {key!r}")
        if not 0 <= vc < self.vcs:
            raise ValueError(f"{self.name}: output VC {vc} outside 0..{self.vcs - 1}")
        self.outputs[key] = queue
        self._output_owner[key] = None
        self._out_neighbor[port] = neighbor
        port_order = self._port_order(port, neighbor if order is None else order)
        if port not in self._output_lock:
            self._output_lock[port] = None
            self.output_busy_cycles[port] = 0
            self.lock_stalls_by_output[port] = 0
            self._phys_out_keys[port] = port_order
            self._physical_outputs = sorted(
                self._output_lock, key=self._phys_out_keys.__getitem__
            )
        self._port_keys[key] = (port_order, vc)
        self._sorted_outputs = sorted(
            self.outputs.items(), key=lambda item: self._port_keys[item[0]]
        )
        queue.wake_on_pop(self)
        return queue

    def apply_fault_state(
        self,
        dead_ports: frozenset,
        degraded: bool,
        adaptive_table: Optional[AdaptiveRoutingTable] = None,
    ) -> None:
        """New fault epoch: downed outputs, degraded flag, swapped tables.

        Called by the plane's :class:`~repro.transport.faults.FaultInjector`
        once per applied event batch.  A downed output is a transmit-side
        cut: no *new* packet is granted the port until it comes back,
        while a packet whose head already won it drains across (a
        wormhole cannot be retracted mid-flight; there is no
        retransmission layer to recover stranded flits).  Adaptive
        planes additionally receive the
        surviving-graph tables (or their pristine healthy tables on full
        heal).  The release-version bump invalidates every cached failed
        allocation — blocked heads rescan under the new epoch — and the
        wake covers the case where a heal un-blocks a router that was
        idle-parked with frozen upstream traffic elsewhere.
        """
        self._dead_ports = dead_ports
        self._fault_degraded = degraded
        if self.adaptive_table is not None and adaptive_table is not None:
            self.adaptive_table = adaptive_table
        self._release_version += 1
        self.wake()

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _route(self, dest: int) -> str:
        try:
            return self.table[dest]
        except KeyError:
            raise KeyError(
                f"{self.name}: no route to endpoint {dest} "
                f"(table has {sorted(self.table)})"
            ) from None

    def _flits_of_front_packet(self, queue: SimQueue, head: Flit) -> int:
        """Contiguous flits of the front packet currently buffered."""
        buffered = 0
        for flit in queue:
            if flit.packet_id != head.packet_id:
                break
            buffered += 1
            if buffered == head.count:
                break
        return buffered

    def _downstream_free(self, okey: VcKey) -> int:
        queue = self.outputs[okey]
        if queue.capacity is None:
            return 1 << 30
        return queue.capacity - queue.occupancy

    def _output_vc_for(self, ivc: VcKey, out_port: str) -> int:
        """Ask the VC policy for the output VC of a head flit on ``ivc``."""
        in_port, in_vc = ivc
        out_vc = self.vc_policy.output_vc(
            self.router_id,
            self._in_neighbor.get(in_port),
            self._out_neighbor.get(out_port),
            in_vc,
            self.vcs,
        )
        if not 0 <= out_vc < self.vcs:
            raise ValueError(
                f"{self.name}: VC policy {self.vc_policy.name!r} chose VC "
                f"{out_vc} outside 0..{self.vcs - 1} for {in_port}:{in_vc}"
                f" -> {out_port}"
            )
        return out_vc

    def _allocate_adaptive(
        self, ivc: VcKey, flit: Flit, lock_stalled_ports: List[str]
    ) -> Optional[VcKey]:
        """Pick the least-congested admissible (output port, VC) for a head.

        The candidate set is every free adaptive-class VC of every output
        in the packet's *minimal* set, plus the escape VC of the
        deterministic (DOR/XY) output.  Candidates are scored by
        downstream free space — credit/buffer slots left in the output
        queue, which on a serialized link is the credit-backed staging
        buffer — and the best strictly-greater score wins; ties keep the
        earliest candidate, and candidates are enumerated in canonical
        ``router_sort_key`` port order with VCs ascending and the escape
        candidate last, so selection is deterministic and
        cycle-reproducible.  Returns ``None`` when nothing is admissible
        this cycle (the head retries, still requesting escape — that
        retry loop is what the deadlock-freedom argument leans on).

        Constraints preserving the rest of the transport contract:

        - a packet whose input VC is escape-class stays on the escape
          subnetwork (its dependency graph must remain acyclic);
        - LOCK-family packets route escape-only, so a LOCK and its
          paired UNLOCK traverse the *same* ports and the per-port lock
          state they set and clear stays matched;
        - lock admission applies per candidate port: a head refused one
          locked port may still route around via another minimal output,
          and only a head with no admissible candidate at all (with at
          least one lock refusal) counts as lock-stalled.
        """
        table = self.adaptive_table
        in_port, in_vc = ivc
        src = flit.src
        lock_support = self.lock_support
        output_lock = self._output_lock
        output_owner = self._output_owner
        escape_on = self._escape_on
        escape_base = self._escape_base_vc
        ports = table.outputs(flit.dest)
        if not ports:
            # Destination unreachable this fault epoch: nothing to scan.
            # The failure is cached against the epoch's release version
            # (a heal bumps it) and the injector's watchdog reports the
            # packet if the partition is permanent.
            self._alloc_fail[ivc] = (self._release_version, flit)
            return None
        # Ejection at the home router: single local port, keep the class.
        if ports[0][0] == "l":  # "local:..."
            port = ports[0]
            if lock_support:
                holder = output_lock[port]
                if holder is not None and holder != src:
                    lock_stalled_ports.append(port)
                    return None
            okey = (port, in_vc)
            if output_owner[okey] is None:
                return okey
            self._alloc_fail[ivc] = (self._release_version, flit)
            return None
        refused: List[str] = []
        best: Optional[VcKey] = None
        best_free = -1
        from_escape = escape_on and in_vc >= escape_base
        if not (from_escape or (escape_on and flit.lock_related)):
            for port in ports:
                if lock_support:
                    holder = output_lock[port]
                    if holder is not None and holder != src:
                        refused.append(port)
                        continue
                for vc in range(self._n_adaptive):
                    okey = (port, vc)
                    if output_owner[okey] is not None:
                        continue
                    free = self._downstream_free(okey)
                    if free > best_free:
                        best, best_free = okey, free
        if escape_on:
            eport = table.escape_port(flit.dest)
            holder = output_lock[eport] if lock_support else None
            if holder is not None and holder != src:
                if eport not in refused:
                    refused.append(eport)
            else:
                cache_key = (in_port, eport, in_vc)
                evc = self._escape_vc_cache.get(cache_key)
                if evc is None:
                    evc = self.vc_policy.escape_output_vc(
                        self.router_id,
                        self._in_neighbor.get(in_port),
                        self._out_neighbor[eport],
                        in_vc,
                        self.vcs,
                    )
                    self._escape_vc_cache[cache_key] = evc
                okey = (eport, evc)
                if output_owner[okey] is None:
                    free = self._downstream_free(okey)
                    if free > best_free:
                        best, best_free = okey, free
        if best is None:
            if refused:
                lock_stalled_ports.extend(refused)
            else:
                # Nothing free and no lock involved: the outcome cannot
                # change until an output VC is released (or a lock
                # changes), so skip rescans until the version bumps.
                self._alloc_fail[ivc] = (self._release_version, flit)
            return None
        if escape_on and best[1] >= escape_base:
            self.packets_escape += 1
        else:
            self.packets_adaptive += 1
        if self._fault_degraded:
            healthy = self._healthy_adaptive.candidates.get(flit.dest, ())
            if ports != healthy:
                self.faults_hit += 1
                if best[0] not in healthy:
                    self.packets_rerouted += 1
        return best

    # ------------------------------------------------------------------ #
    # the cycle
    # ------------------------------------------------------------------ #
    def is_idle(self) -> bool:
        """Nothing buffered at any input VC: tick is provably a no-op.

        Ages are already 0 for empty inputs (they reset the tick the
        queue empties), owned outputs cannot progress without flits, and
        lock state only changes when a tail flit passes — so an
        all-inputs-empty router can sleep until a link queue wakes it.
        """
        for _key, queue in self._sorted_inputs:
            if queue._committed:
                return False
        return True

    def tick(self, cycle: int) -> None:
        # Single busy scan shared by both switch flavours: collects the
        # input VCs holding flits (quiescent routers return on the empty
        # list — see is_idle for why that is exact).
        busy: List[tuple] = [
            item for item in self._sorted_inputs if item[1]._committed
        ]
        if not busy:
            return
        if self.vcs > 1 or self.adaptive_table is not None:
            self._tick_vc(cycle, busy)
            return
        input_alloc = self._input_alloc
        input_age = self._input_age
        inputs = self.inputs
        outputs = self.outputs
        mode = self.mode
        wormhole = mode is SwitchingMode.WORMHOLE
        # Phase A: route heads with no allocation yet.  Streaming inputs
        # (mid-packet, output owned) need no per-cycle routing or desire
        # bookkeeping at all — Phase B continues them straight off the
        # owner table, which is the single-VC body-flit fast path.
        heads: Dict[VcKey, Flit] = {}
        wants: Dict[VcKey, List[VcKey]] = {}  # output -> ready head inputs
        fault_degraded = self._fault_degraded
        dead_ports = self._dead_ports
        fault_blocked = False
        for ivc, queue in busy:
            if input_alloc[ivc] is not None:
                continue
            flit = queue._committed[0]
            if flit.seq != 0:
                raise RuntimeError(
                    f"{self.name}:{ivc[0]}: body flit {flit!r} at front "
                    f"with no allocation (framing bug)"
                )
            okey = (self._route(flit.dest), 0)
            if fault_degraded and okey[0] in dead_ports:
                fault_blocked = True
                continue  # downed output: the head waits for a heal
            if wormhole:
                # Wormhole heads depart whenever downstream has a slot —
                # no need to count buffered flits of the front packet.
                ready = outputs[okey].can_push()
            else:
                ready = mode.head_may_depart(
                    flits_buffered=self._flits_of_front_packet(queue, flit),
                    packet_flits=flit.count,
                    downstream_free=self._downstream_free(okey),
                )
            if ready:
                heads[ivc] = flit
                if okey in wants:
                    wants[okey].append(ivc)
                else:
                    wants[okey] = [ivc]

        # Phase B: per-output arbitration and transfer.
        output_owner = self._output_owner
        output_lock = self._output_lock
        lock_support = self.lock_support
        arbiter = self.arbiter
        sole_grant = self.stream_fast_path and arbiter.sole_pick_is_grant
        sent_inputs: List[VcKey] = []
        lock_stalled_any = False
        for okey, out_queue in self._sorted_outputs:
            owner = output_owner[okey]
            if owner is not None:
                # Continue the in-flight packet (even on a downed output:
                # a packet that already won the port drains across the
                # cut, like phits in flight — only new grants are masked).
                # Nobody else may interleave, so no candidates and no
                # arbitration — just "flit buffered, room downstream".
                if inputs[owner]._committed and out_queue.can_push():
                    self._transfer(owner, okey, cycle)
                    sent_inputs.append(owner)
                continue
            contenders = wants.get(okey)
            if contenders is None:
                continue
            out_port = okey[0]
            holder = output_lock[out_port] if lock_support else None
            if sole_grant and holder is None and len(contenders) == 1:
                # Uncontested head: the winner is forced, so skip
                # candidate construction and the policy call; the grant
                # is still recorded so later round-robin ties break
                # exactly as if pick() had run.
                if out_queue.can_push():
                    ivc = contenders[0]
                    arbiter.note_sole_grant(out_port, self._ckey[ivc])
                    self._transfer(ivc, okey, cycle)
                    sent_inputs.append(ivc)
                continue
            candidates: List[Candidate] = []
            lock_stalled = False
            for ivc in contenders:
                flit = heads[ivc]
                if holder is not None and holder != flit.src:
                    lock_stalled = True
                    continue
                packet = flit.packet
                urgency = packet.user.get("urgency", 0) if packet else 0
                candidates.append(
                    Candidate(
                        port=self._ckey[ivc],
                        priority=flit.priority,
                        age=input_age[ivc],
                        urgency=urgency,
                    )
                )
            if lock_stalled:
                lock_stalled_any = True
                self.lock_stalls_by_output[out_port] += 1
            if not candidates or not out_queue.can_push():
                continue
            winner = arbiter.pick(out_port, candidates)
            ivc = self._ckey_to_ivc[winner.port]
            self._transfer(ivc, okey, cycle)
            sent_inputs.append(ivc)
        if lock_stalled_any:
            # At most one stall cycle per cycle, however many outputs
            # stalled (the per-output detail is in lock_stalls_by_output).
            self.lock_stall_cycles += 1
        if fault_blocked:
            self.fault_stall_cycles += 1

        # Phase C: age heads that waited.  Only inputs seen busy this
        # cycle need touching — an input can only drain through our own
        # transfers, which reset its age, so empty inputs are already 0.
        for ivc, queue in busy:
            if ivc in sent_inputs or not queue._committed:
                input_age[ivc] = 0
            else:
                input_age[ivc] += 1

    # ------------------------------------------------------------------ #
    # the cycle, multi-VC flavour
    # ------------------------------------------------------------------ #
    def _tick_vc(self, cycle: int, busy: List[tuple]) -> None:
        """VC allocation -> switch allocation -> transfer, for vcs >= 2.

        Differences from the single-VC fast path: a head flit must win a
        free *output VC* (held until its tail passes) before it can
        compete for the physical channel, and switch allocation sees one
        candidate per (input port, VC) — so flits of different packets
        interleave on a physical output, one flit per cycle, which is
        exactly what defeats head-of-line blocking.

        Body-flit fast path: an input VC holding an allocation skips VC
        allocation, adaptive scoring and routing entirely (its held
        grant *is* the decision), and an output port with a single
        requesting VC skips candidate construction and the arbiter call
        (the grant is still recorded; see Arbiter.note_sole_grant).
        """
        input_alloc = self._input_alloc
        input_head = self._input_head
        input_age = self._input_age
        output_owner = self._output_owner
        output_lock = self._output_lock
        lock_support = self.lock_support
        outputs = self.outputs
        mode = self.mode
        wormhole = mode is SwitchingMode.WORMHOLE

        # Phase V: VC allocation.  Head flits at the front of an input VC
        # with no allocation try to acquire their output VC; grants go in
        # sorted (port, vc) order, deterministically.  Lock admission
        # happens *here*: a head from a non-holding master is refused the
        # output VC while the port is locked — granting it would let the
        # blocked packet hoard the VC and stall the holder's own UNLOCK
        # forever.  Once granted, a stream always completes (a packet
        # admitted before the lock was set behaves as having entered the
        # locked path first, exactly like the single-VC switch).  The
        # admission window is one cycle wide: allocation (this phase)
        # reads the lock state *before* the transfers of the same cycle,
        # so a head VC-allocated in the very cycle a LOCK tail passes is
        # treated as having entered the locked path first — deterministic,
        # and pinned by tests/test_adaptive_routing.py.
        # Phase A folded in: every allocated input VC with a flit at the
        # front and room downstream becomes a switch-allocation request.
        wants: Dict[str, List[VcKey]] = {}  # physical out port -> input VCs
        lock_stalled_ports: List[str] = []
        adaptive = self.adaptive_table
        fault_degraded = self._fault_degraded
        dead_ports = self._dead_ports
        fault_blocked = False
        for ivc, queue in busy:
            flit = queue._committed[0]
            alloc = input_alloc[ivc]
            if alloc is None:
                if flit.seq != 0:
                    raise RuntimeError(
                        f"{self.name}:{ivc[0]}:vc{ivc[1]}: body flit {flit!r} "
                        f"at front with no allocation (framing bug)"
                    )
                if adaptive is not None:
                    cached = self._alloc_fail[ivc]
                    if (
                        cached is not None
                        and cached[0] == self._release_version
                        and cached[1] is flit
                    ):
                        continue  # still blocked: nothing freed since
                    okey = self._allocate_adaptive(
                        ivc, flit, lock_stalled_ports
                    )
                    if okey is None:
                        continue  # no admissible candidate; retry next cycle
                else:
                    out_port = self._route(flit.dest)
                    if fault_degraded and out_port in dead_ports:
                        fault_blocked = True
                        continue  # downed output: the head waits for a heal
                    if lock_support:
                        holder = output_lock[out_port]
                        if holder is not None and holder != flit.src:
                            lock_stalled_ports.append(out_port)
                            continue  # admission refused until UNLOCK passes
                    okey = (out_port, self._output_vc_for(ivc, out_port))
                    if output_owner[okey] is not None:
                        continue  # output VC busy; retry next cycle
                output_owner[okey] = ivc
                input_alloc[ivc] = okey
                input_head[ivc] = flit
            else:
                okey = alloc
            if flit.seq == 0 and not wormhole:
                # Head under SAF/VCT (fresh or retrying): gate on the
                # switching mode; wormhole heads just need a slot, below.
                ready = mode.head_may_depart(
                    flits_buffered=self._flits_of_front_packet(queue, flit),
                    packet_flits=flit.count,
                    downstream_free=self._downstream_free(okey),
                )
            else:
                # Streaming (or wormhole-head) request: flit buffered,
                # room downstream — the held grant is the whole decision.
                out_queue = outputs[okey]
                capacity = out_queue.capacity
                ready = capacity is None or out_queue._occ < capacity
            if ready:
                out_port = okey[0]
                if out_port in wants:
                    wants[out_port].append(ivc)
                else:
                    wants[out_port] = [ivc]
        if lock_stalled_ports:
            self.lock_stall_cycles += 1
            for out_port in set(lock_stalled_ports):
                self.lock_stalls_by_output[out_port] += 1
        if fault_blocked:
            self.fault_stall_cycles += 1

        # Phase B: switch allocation — one flit per physical output and
        # per physical input port per cycle, QoS-arbitrated across VCs.
        arbiter = self.arbiter
        sole_grant = self.stream_fast_path and arbiter.sole_pick_is_grant
        sent_ivcs: List[VcKey] = []
        used_input_ports: set = set()
        for out_port in self._physical_outputs:
            contenders = wants.get(out_port)
            if contenders is None:
                continue
            if sole_grant and len(contenders) == 1:
                ivc = contenders[0]
                if ivc[0] in used_input_ports:
                    continue  # input port already sent a flit this cycle
                arbiter.note_sole_grant(out_port, self._ckey[ivc])
                self._transfer(ivc, input_alloc[ivc], cycle)
                sent_ivcs.append(ivc)
                used_input_ports.add(ivc[0])
                continue
            candidates: List[Candidate] = []
            for ivc in contenders:
                if ivc[0] in used_input_ports:
                    continue  # input port already sent a flit this cycle
                head = input_head[ivc]
                assert head is not None
                packet = head.packet
                urgency = packet.user.get("urgency", 0) if packet else 0
                candidates.append(
                    Candidate(
                        port=self._ckey[ivc],
                        priority=head.priority,
                        age=input_age[ivc],
                        urgency=urgency,
                    )
                )
            if not candidates:
                continue
            winner = arbiter.pick(out_port, candidates)
            ivc = self._ckey_to_ivc[winner.port]
            self._transfer(ivc, input_alloc[ivc], cycle)
            sent_ivcs.append(ivc)
            used_input_ports.add(ivc[0])

        # Phase C: age input VCs that waited with flits buffered.  Only
        # the VCs seen non-empty in the busy scan need touching: an input
        # can only drain through our own transfers (committed items grow
        # at the kernel's post-tick commit), so an empty input's age is
        # already 0 — either it was empty last cycle too, or its last
        # flit left via a transfer that reset the age below.
        for ivc, _queue in busy:
            if ivc in sent_ivcs:
                input_age[ivc] = 0
            else:
                input_age[ivc] += 1

    def _transfer(self, ivc: VcKey, okey: VcKey, cycle: int) -> None:
        out_port, out_vc = okey
        flit = self.inputs[ivc].pop()
        flit.vc = out_vc  # retag for the next link's VC
        self.outputs[okey].push(flit)
        self.flits_forwarded += 1
        self.output_busy_cycles[out_port] += 1
        seq = flit.seq
        if seq != 0 and seq != flit.count - 1:
            return  # body flit: no head/tail bookkeeping
        if flit.is_head:
            self._input_alloc[ivc] = okey
            self._output_owner[okey] = ivc
            self._input_head[ivc] = flit
            if self.vcs == 1:
                self._simulator.trace.log(
                    cycle,
                    self.name,
                    "route",
                    packet=flit.packet_id,
                    dest=flit.dest,
                    via=out_port,
                )
            else:
                self._simulator.trace.log(
                    cycle,
                    self.name,
                    "route",
                    packet=flit.packet_id,
                    dest=flit.dest,
                    via=out_port,
                    vc=out_vc,
                )
        if flit.is_tail:
            head = self._input_head[ivc]
            assert head is not None
            self._input_alloc[ivc] = None
            self._output_owner[okey] = None
            self._input_head[ivc] = None
            self._release_version += 1  # a freed VC invalidates fail caches
            self.packets_forwarded += 1
            if self.lock_support and head.lock_related and head.packet is not None:
                self._update_lock(out_port, head, cycle)

    def _update_lock(self, out_port: str, head: Flit, cycle: int) -> None:
        packet = head.packet
        assert packet is not None
        if packet.kind is not PacketKind.REQUEST:
            return
        if packet.opcode in _LOCK_SETTERS:
            self._output_lock[out_port] = head.src
            self._release_version += 1
            self._simulator.trace.log(
                cycle, self.name, "lock_set", port=out_port, master=head.src
            )
        elif packet.opcode in _LOCK_CLEARERS:
            if self._output_lock[out_port] == head.src:
                self._output_lock[out_port] = None
                self._release_version += 1
                self._simulator.trace.log(
                    cycle, self.name, "lock_clear", port=out_port, master=head.src
                )

    # ------------------------------------------------------------------ #
    # state capture
    # ------------------------------------------------------------------ #
    # Everything the tick and fault paths mutate.  Not captured:
    # wiring (inputs/outputs, sorted lists, candidate-key maps, neighbour
    # geometry), _escape_vc_cache (pure geometry), _healthy_adaptive
    # (pristine build table).  adaptive_table IS captured — fault epochs
    # swap it for a degraded copy; the dense core re-validates by
    # identity, so installing the restored object just works.
    _snapshot_fields = (
        "_input_alloc",
        "_input_head",
        "_input_age",
        "_output_owner",
        "_output_lock",
        "_alloc_fail",
        "_release_version",
        "_dead_ports",
        "_fault_degraded",
        "adaptive_table",
        "flits_forwarded",
        "packets_forwarded",
        "packets_adaptive",
        "packets_escape",
        "lock_stall_cycles",
        "lock_stalls_by_output",
        "output_busy_cycles",
        "faults_hit",
        "packets_rerouted",
        "fault_stall_cycles",
    )

    def _snapshot_state(self) -> dict:
        core = self._array_core
        if core is not None:
            # Ages and the adaptive fail cache live dense-only between
            # syncs; make the dicts authoritative before capture.
            core.sync_to_router()
        state = super()._snapshot_state()
        state["arbiter"] = self.arbiter.snapshot()
        return state

    def _restore_state(self, state) -> None:
        super()._restore_state(state)
        self.arbiter.restore(state["arbiter"])
        core = self._array_core
        if core is not None:
            core.resync_from_router()

    # ------------------------------------------------------------------ #
    # introspection (tests / benches)
    # ------------------------------------------------------------------ #
    def locked_outputs(self) -> Dict[str, int]:
        return {
            port: holder
            for port, holder in self._output_lock.items()
            if holder is not None
        }

    def utilization(self, cycles: int) -> Dict[str, float]:
        if cycles <= 0:
            return {port: 0.0 for port in self._physical_outputs}
        return {
            port: busy / cycles for port, busy in self.output_busy_cycles.items()
        }
