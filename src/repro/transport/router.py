"""Cycle-level NoC switch (router) model.

The router is deliberately *transaction-unaware*: per the paper, it reads
only the head-flit routing fields (destination, source, priority, the
LOCK marker) and moves opaque flits.  Micro-architecture:

- one FIFO buffer per input port (upstream routers / injection ports push
  into it — the staged queue gives one cycle per hop).  Ports are wired
  by :class:`~repro.transport.network.Network` through link objects: on
  an ideal same-domain link the output queue *is* the downstream
  router's input buffer, while a serialized/piped/CDC link interposes a
  :class:`~repro.phys.link.PhysicalLink` whose feed queue the router
  sees as its output — backpressure and switching-mode gates then apply
  to the link's staging buffer, which is exactly the wire-side FIFO a
  narrow link would have in hardware;
- per-output arbitration each cycle (policy pluggable, see
  :mod:`repro.transport.qos`); one flit per output per cycle;
- wormhole allocation: once a head flit wins an output, that output is
  owned by the input until the tail flit passes (no virtual channels —
  matching the simple switch the paper describes);
- switching-mode gate on head departure (wormhole / store-and-forward /
  virtual cut-through, see :mod:`repro.transport.switching`);
- **LOCK handling** — the one transaction-family leak the paper concedes:
  after a ``LOCK``/``READEX`` request's tail passes an output port, the
  port admits only packets from the locking master until that master's
  ``UNLOCK``/``STORE_COND_LOCKED`` tail passes.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.core.packet import PacketKind
from repro.core.transaction import Opcode
from repro.sim.component import Component
from repro.sim.queue import SimQueue
from repro.transport.flit import Flit
from repro.transport.qos import Arbiter, Candidate, PriorityArbiter
from repro.transport.switching import SwitchingMode

_LOCK_SETTERS = (Opcode.LOCK, Opcode.READEX)
_LOCK_CLEARERS = (Opcode.UNLOCK, Opcode.STORE_COND_LOCKED)


class Router(Component):
    """One switch.  Wiring is done by :class:`~repro.transport.network.Network`."""

    def __init__(
        self,
        name: str,
        router_id: Hashable,
        table: Dict[int, str],
        mode: SwitchingMode = SwitchingMode.WORMHOLE,
        buffer_capacity: int = 8,
        arbiter: Optional[Arbiter] = None,
        lock_support: bool = True,
    ) -> None:
        super().__init__(name)
        self.router_id = router_id
        self.table = table
        self.mode = mode
        self.buffer_capacity = buffer_capacity
        self.arbiter = arbiter if arbiter is not None else PriorityArbiter()
        self.lock_support = lock_support
        self.inputs: Dict[str, SimQueue] = {}
        self.outputs: Dict[str, SimQueue] = {}
        # Hot-path port lists, presorted at wiring time so tick never
        # calls sorted() (arbitration order is the sorted port name).
        self._sorted_inputs: List[tuple] = []
        self._sorted_outputs: List[tuple] = []
        # per-input state
        self._input_alloc: Dict[str, Optional[str]] = {}
        self._input_head: Dict[str, Optional[Flit]] = {}
        self._input_age: Dict[str, int] = {}
        # per-output state
        self._output_owner: Dict[str, Optional[str]] = {}
        self._output_lock: Dict[str, Optional[int]] = {}
        # stats
        self.flits_forwarded = 0
        self.packets_forwarded = 0
        self.lock_stall_cycles = 0
        self.output_busy_cycles: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # wiring (Network calls these during construction)
    # ------------------------------------------------------------------ #
    def add_input(self, port: str, queue: SimQueue) -> SimQueue:
        if port in self.inputs:
            raise ValueError(f"{self.name}: duplicate input port {port!r}")
        self.inputs[port] = queue
        self._input_alloc[port] = None
        self._input_head[port] = None
        self._input_age[port] = 0
        self._sorted_inputs = sorted(self.inputs.items())
        queue.wake_on_push(self)
        return queue

    def add_output(self, port: str, queue: SimQueue) -> SimQueue:
        if port in self.outputs:
            raise ValueError(f"{self.name}: duplicate output port {port!r}")
        self.outputs[port] = queue
        self._output_owner[port] = None
        self._output_lock[port] = None
        self.output_busy_cycles[port] = 0
        self._sorted_outputs = sorted(self.outputs.items())
        queue.wake_on_pop(self)
        return queue

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _route(self, dest: int) -> str:
        try:
            return self.table[dest]
        except KeyError:
            raise KeyError(
                f"{self.name}: no route to endpoint {dest} "
                f"(table has {sorted(self.table)})"
            ) from None

    def _flits_of_front_packet(self, queue: SimQueue, head: Flit) -> int:
        """Contiguous flits of the front packet currently buffered."""
        buffered = 0
        for flit in queue:
            if flit.packet_id != head.packet_id:
                break
            buffered += 1
            if buffered == head.count:
                break
        return buffered

    def _downstream_free(self, port: str) -> int:
        queue = self.outputs[port]
        if queue.capacity is None:
            return 1 << 30
        return queue.capacity - queue.occupancy

    def _lock_blocks(self, port: str, flit: Flit) -> bool:
        holder = self._output_lock[port]
        return holder is not None and holder != flit.src

    # ------------------------------------------------------------------ #
    # the cycle
    # ------------------------------------------------------------------ #
    def is_idle(self) -> bool:
        """Nothing buffered at any input: tick is provably a no-op.

        Ages are already 0 for empty inputs (they reset the tick the
        queue empties), owned outputs cannot progress without flits, and
        lock state only changes when a tail flit passes — so an
        all-inputs-empty router can sleep until a link queue wakes it.
        """
        for _port, queue in self._sorted_inputs:
            if queue._committed:
                return False
        return True

    def tick(self, cycle: int) -> None:
        sorted_inputs = self._sorted_inputs
        # Early exit: quiescent router (see is_idle for why this is exact).
        busy = False
        for _port, queue in sorted_inputs:
            if queue._committed:
                busy = True
                break
        if not busy:
            return
        input_alloc = self._input_alloc
        input_age = self._input_age
        outputs = self.outputs
        mode = self.mode
        wormhole = mode is SwitchingMode.WORMHOLE
        # Phase A: what does each input want to do?  Heads that are ready
        # to depart are grouped per desired output so Phase B arbitration
        # touches only actual contenders instead of rescanning every input.
        desires: Dict[str, str] = {}  # input -> output
        heads: Dict[str, Flit] = {}
        wants: Dict[str, List[str]] = {}  # output -> ready head inputs
        for in_port, queue in sorted_inputs:
            committed = queue._committed
            if not committed:
                input_age[in_port] = 0
                continue
            flit = committed[0]
            alloc = input_alloc[in_port]
            if alloc is not None:
                # mid-packet: continue on the allocated output
                desires[in_port] = alloc
                continue
            if not flit.is_head:
                raise RuntimeError(
                    f"{self.name}:{in_port}: body flit {flit!r} at front "
                    f"with no allocation (framing bug)"
                )
            out_port = self._route(flit.dest)
            desires[in_port] = out_port
            if wormhole:
                # Wormhole heads depart whenever downstream has a slot —
                # no need to count buffered flits of the front packet.
                ready = outputs[out_port].can_push()
            else:
                ready = mode.head_may_depart(
                    flits_buffered=self._flits_of_front_packet(queue, flit),
                    packet_flits=flit.count,
                    downstream_free=self._downstream_free(out_port),
                )
            if ready:
                heads[in_port] = flit
                if out_port in wants:
                    wants[out_port].append(in_port)
                else:
                    wants[out_port] = [in_port]

        # Phase B: per-output arbitration and transfer.
        output_owner = self._output_owner
        output_lock = self._output_lock
        lock_support = self.lock_support
        sent_inputs: List[str] = []
        for out_port, out_queue in self._sorted_outputs:
            owner = output_owner[out_port]
            if owner is not None:
                # Continue the in-flight packet; nobody else may interleave.
                if (
                    desires.get(owner) == out_port
                    and input_alloc[owner] == out_port
                    and out_queue.can_push()
                ):
                    self._transfer(owner, out_port, cycle)
                    sent_inputs.append(owner)
                continue
            contenders = wants.get(out_port)
            if contenders is None:
                continue
            candidates: List[Candidate] = []
            lock_stalled = False
            holder = output_lock[out_port] if lock_support else None
            for in_port in contenders:
                flit = heads[in_port]
                if holder is not None and holder != flit.src:
                    lock_stalled = True
                    continue
                packet = flit.packet
                urgency = packet.user.get("urgency", 0) if packet else 0
                candidates.append(
                    Candidate(
                        port=in_port,
                        priority=flit.priority,
                        age=input_age[in_port],
                        urgency=urgency,
                    )
                )
            if lock_stalled:
                self.lock_stall_cycles += 1
            if not candidates or not out_queue.can_push():
                continue
            winner = self.arbiter.pick(out_port, candidates)
            self._transfer(winner.port, out_port, cycle)
            sent_inputs.append(winner.port)

        # Phase C: age heads that waited.
        for in_port, queue in sorted_inputs:
            if queue._committed and in_port not in sent_inputs:
                input_age[in_port] += 1
            else:
                input_age[in_port] = 0

    def _transfer(self, in_port: str, out_port: str, cycle: int) -> None:
        flit = self.inputs[in_port].pop()
        self.outputs[out_port].push(flit)
        self.flits_forwarded += 1
        self.output_busy_cycles[out_port] += 1
        if flit.is_head:
            self._input_alloc[in_port] = out_port
            self._output_owner[out_port] = in_port
            self._input_head[in_port] = flit
            self.simulator.trace.log(
                cycle,
                self.name,
                "route",
                packet=flit.packet_id,
                dest=flit.dest,
                via=out_port,
            )
        if flit.is_tail:
            head = self._input_head[in_port]
            assert head is not None
            self._input_alloc[in_port] = None
            self._output_owner[out_port] = None
            self._input_head[in_port] = None
            self.packets_forwarded += 1
            if self.lock_support and head.lock_related and head.packet is not None:
                self._update_lock(out_port, head, cycle)

    def _update_lock(self, out_port: str, head: Flit, cycle: int) -> None:
        packet = head.packet
        assert packet is not None
        if packet.kind is not PacketKind.REQUEST:
            return
        if packet.opcode in _LOCK_SETTERS:
            self._output_lock[out_port] = head.src
            self.simulator.trace.log(
                cycle, self.name, "lock_set", port=out_port, master=head.src
            )
        elif packet.opcode in _LOCK_CLEARERS:
            if self._output_lock[out_port] == head.src:
                self._output_lock[out_port] = None
                self.simulator.trace.log(
                    cycle, self.name, "lock_clear", port=out_port, master=head.src
                )

    # ------------------------------------------------------------------ #
    # introspection (tests / benches)
    # ------------------------------------------------------------------ #
    def locked_outputs(self) -> Dict[str, int]:
        return {
            port: holder
            for port, holder in self._output_lock.items()
            if holder is not None
        }

    def utilization(self, cycles: int) -> Dict[str, float]:
        if cycles <= 0:
            return {port: 0.0 for port in self.outputs}
        return {
            port: busy / cycles for port, busy in self.output_busy_cycles.items()
        }
