"""Flits: the transport layer's unit of transfer.

A packet is segmented into a head flit (carrying the routing header) and
zero or more body flits, the last of which is marked tail.  A packet with
no payload is a single flit that is both head and tail.  The fabric moves
one flit per port per cycle; only the head flit's routing fields are ever
inspected — the transaction payload rides opaquely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.packet import NocPacket, PacketFormat
from repro.sim.snapshot import SerialCounter, Snapshottable

#: Global packet-id stream for flit tagging.  A SerialCounter (not
#: itertools.count) so checkpoints can capture and restore it.
_flit_packet_ids = SerialCounter()


@dataclass(slots=True)
class Flit:
    """One flit.  ``packet`` is carried on the head flit only.

    ``vc`` is the virtual channel the flit currently travels on — assigned
    per packet at injection (default 0, or by a pluggable VC-selection
    policy) and retagged hop by hop when a router's VC-allocation stage
    moves the packet to a different output VC (e.g. the dateline policy
    on rings/tori).  Single-VC fabrics leave it at 0 throughout.
    """

    packet_id: int
    seq: int
    count: int  # total flits in this packet
    dest: int
    src: int
    priority: int
    lock_related: bool
    packet: Optional[NocPacket] = None
    vc: int = 0

    @property
    def is_head(self) -> bool:
        return self.seq == 0

    @property
    def is_tail(self) -> bool:
        return self.seq == self.count - 1

    def route_fields(self) -> tuple:
        """The transport-visible routing fields as one comparable tuple.

        Everything a router reads off a flit (plus identity), in field
        order — the canonical flit digest for state fingerprints (see
        ``ArrayCore.state_fingerprint``) and round-trip tests.
        """
        return (
            self.packet_id,
            self.seq,
            self.count,
            self.dest,
            self.src,
            self.priority,
            self.lock_related,
            self.vc,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        marks = ("H" if self.is_head else "") + ("T" if self.is_tail else "")
        return (
            f"<Flit p{self.packet_id}.{self.seq}/{self.count}{marks} "
            f"dest={self.dest} prio={self.priority} vc={self.vc}>"
        )


def flits_for_packet(
    packet: NocPacket,
    flit_payload_bits: int,
    header_bits: int = 64,
) -> int:
    """Number of flits a packet occupies on the fabric.

    The head flit carries the header (assumed to fit one flit — formats
    with huge user fields would need wider flits, which
    :class:`Packetizer` checks); payload beats are packed into body flits
    of ``flit_payload_bits`` each.
    """
    if flit_payload_bits < 8:
        raise ValueError(f"flit payload width {flit_payload_bits} too small")
    if header_bits > flit_payload_bits:
        raise ValueError(
            f"header ({header_bits}b) does not fit one flit "
            f"({flit_payload_bits}b) — widen the flit or shrink the format"
        )
    payload_bits = packet.payload_bits()
    return 1 + math.ceil(payload_bits / flit_payload_bits)


class Packetizer:
    """Segments :class:`NocPacket` objects into flit sequences."""

    def __init__(
        self,
        flit_payload_bits: int = 128,
        packet_format: Optional[PacketFormat] = None,
    ) -> None:
        self.flit_payload_bits = flit_payload_bits
        self.packet_format = packet_format
        header = packet_format.header_bits() if packet_format else 64
        if header > flit_payload_bits:
            raise ValueError(
                f"packet header ({header}b) exceeds flit width "
                f"({flit_payload_bits}b)"
            )
        self._header_bits = header

    @property
    def flit_bits(self) -> int:
        """Wire width of one flit (header + payload) — what the physical
        layer serializes into phits."""
        return self._header_bits + self.flit_payload_bits

    def segment(self, packet: NocPacket, vc: int = 0) -> List[Flit]:
        if self.packet_format is not None:
            packet.validate_against(self.packet_format)
        count = flits_for_packet(
            packet, self.flit_payload_bits, header_bits=self._header_bits
        )
        packet_id = next(_flit_packet_ids)
        flits: List[Flit] = []
        for seq in range(count):
            flits.append(
                Flit(
                    packet_id=packet_id,
                    seq=seq,
                    count=count,
                    dest=packet.route_destination,
                    src=packet.route_source,
                    priority=packet.priority,
                    lock_related=packet.is_lock_related,
                    packet=packet if seq == 0 else None,
                    vc=vc,
                )
            )
        return flits


class ReassemblyError(RuntimeError):
    """Flit stream violated head/body/tail framing."""


class Reassembler(Snapshottable):
    """Rebuilds packets from an in-order flit stream (one link's worth).

    Links never interleave flits of different packets (wormhole keeps a
    packet contiguous per channel), so reassembly is a simple framing
    check; interleaving is a fabric bug that this class turns into a loud
    :class:`ReassemblyError`.
    """

    _snapshot_fields = ("_current", "_received", "packets_out")

    def __init__(self, name: str = "reassembler") -> None:
        self.name = name
        self._current: Optional[Flit] = None  # head of in-progress packet
        self._received = 0
        self.packets_out = 0

    def accept(self, flit: Flit) -> Optional[NocPacket]:
        """Feed one flit; returns a completed packet on tail, else None."""
        if self._current is None:
            if not flit.is_head:
                raise ReassemblyError(
                    f"{self.name}: body flit {flit!r} without a head"
                )
            self._current = flit
            self._received = 1
        else:
            if flit.is_head:
                raise ReassemblyError(
                    f"{self.name}: head flit {flit!r} while packet "
                    f"{self._current.packet_id} is incomplete"
                )
            if flit.packet_id != self._current.packet_id:
                raise ReassemblyError(
                    f"{self.name}: interleaved flit {flit!r} inside packet "
                    f"{self._current.packet_id}"
                )
            self._received += 1
        if flit.is_tail:
            if self._received != self._current.count:
                raise ReassemblyError(
                    f"{self.name}: packet {self._current.packet_id} closed "
                    f"after {self._received}/{self._current.count} flits"
                )
            packet = self._current.packet
            assert packet is not None
            self._current = None
            self._received = 0
            self.packets_out += 1
            return packet
        return None

    @property
    def mid_packet(self) -> bool:
        return self._current is not None
