"""Credit-based link-level flow control.

The staged :class:`~repro.sim.queue.SimQueue` already provides ideal
(zero-return-latency) credits: a producer may push only while the
consumer's buffer has space *this* cycle.  :class:`CreditCounter` adds the
realistic variant with a configurable credit-return delay, used by the
physical-layer link model and by tests that check the fabric never
overruns a buffer even with slow credit loops.

Credits are *fault-transparent* under the transmit-side-cut model of
:mod:`repro.transport.faults`: a downed link blocks only **new** output
grants at the upstream router, while flits already in the link pipe (and
the wormhole streaming behind a granted head) drain normally, so every
consumed credit is eventually given back through the ordinary
:meth:`CreditCounter.give_back` path — no credit reclamation pass is
needed, and the fault injector's ``phits_in_flight_at_cut`` stat merely
*accounts* what was mid-wire when the cut landed.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.sim.snapshot import Snapshottable


class CreditCounter(Snapshottable):
    """Sender-side credit state for one link.

    The sender calls :meth:`consume` per flit sent; the receiver calls
    :meth:`give_back` per flit drained.  Returned credits become usable
    ``return_latency`` cycles later, via :meth:`advance` called once per
    cycle.
    """

    _snapshot_fields = (
        "_available",
        "_in_flight",
        "_now",
        "total_consumed",
        "total_returned",
    )

    # Slotted: one counter per link VC, consulted every phit cycle of
    # every serialized link — attribute access is the hot operation.
    __slots__ = (
        "capacity",
        "return_latency",
        "_available",
        "_in_flight",
        "_now",
        "total_consumed",
        "total_returned",
    )

    def __init__(self, capacity: int, return_latency: int = 1) -> None:
        if capacity < 1:
            raise ValueError("credit capacity must be >= 1")
        if return_latency < 0:
            raise ValueError("credit return latency must be >= 0")
        self.capacity = capacity
        self.return_latency = return_latency
        self._available = capacity
        self._in_flight: Deque[Tuple[int, int]] = deque()  # (due_cycle, count)
        self._now = 0
        self.total_consumed = 0
        self.total_returned = 0

    @property
    def available(self) -> int:
        return self._available

    def can_send(self, count: int = 1) -> bool:
        return self._available >= count

    def consume(self, count: int = 1) -> None:
        if count > self._available:
            raise RuntimeError(
                f"credit underflow: want {count}, have {self._available}"
            )
        self._available -= count
        self.total_consumed += count

    def give_back(self, count: int = 1) -> None:
        """Receiver returns ``count`` credits (usable after the delay)."""
        if count < 1:
            raise ValueError("must return >= 1 credit")
        if self.return_latency == 0:
            self._restore(count)
        else:
            self._in_flight.append((self._now + self.return_latency, count))

    def advance(self) -> None:
        """Advance one cycle; mature in-flight credit returns."""
        self._now += 1
        while self._in_flight and self._in_flight[0][0] <= self._now:
            __, count = self._in_flight.popleft()
            self._restore(count)

    def _restore(self, count: int) -> None:
        if self._available + count > self.capacity:
            raise RuntimeError(
                f"credit overflow: {self._available} + {count} > {self.capacity}"
            )
        self._available += count
        self.total_returned += count

    @property
    def outstanding(self) -> int:
        """Credits currently held by the sender or in the return loop."""
        return self.capacity - self._available

    @property
    def in_return_loop(self) -> int:
        """Credits given back but not yet matured (still in flight)."""
        return sum(count for _due, count in self._in_flight)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CreditCounter {self._available}/{self.capacity} "
            f"latency={self.return_latency}>"
        )
