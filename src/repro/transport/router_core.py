"""Struct-of-arrays router hot core: the array and batched executors.

The object router (:class:`repro.transport.router.Router`) keeps its
per-(input, VC) and per-(output, VC) state in dictionaries keyed by
``(port name, vc)`` tuples.  That representation is ideal for wiring
and introspection, but the tick hot path then pays dict hashing and
tuple churn per flit.  This module packs the same state into flat
parallel lists indexed by *dense ids* computed once at build time and
re-implements the router's Phase R/V/A pipeline as a small interpreter
over those arrays.  Three executors share one contract:

``object``
    The unmodified :meth:`Router.tick` — wiring-time reference, and
    the implementation the strict kernel was validated against.
``array``
    :class:`ArrayCore` bound per router (``router.tick`` is rebound to
    the core's step function).  Permanent pure-Python reference for
    the dense layout; byte-identical to ``object`` by construction
    (the step functions are line-for-line transliterations onto dense
    indices) and pinned by ``tests/test_kernel_determinism.py``.
``batched``
    :class:`BatchedPlaneStepper`: one component per plane that steps
    every busy router of the plane through its :class:`ArrayCore` in
    canonical order each cycle, with flat active/pending masks
    scheduling the sweep.  Routers stay registered (name lookups and
    registration order are unchanged) but are neutralized — their
    ``tick`` becomes a no-op, ``is_idle`` returns True so the kernel
    retires them, and ``wake`` forwards to the stepper's pending mask.

Layout contract (dense ``(port, vc)`` index scheme)
---------------------------------------------------

Input side — dense input id ``i`` enumerates ``Router._sorted_inputs``
(canonical ``(port group, router_sort_key, vc)`` order, the router's
arbitration order).  Arrays indexed by ``i``:

==================  ====================================================
``in_keys[i]``      the ``(port, vc)`` key (back-reference for syncing)
``in_q[i]``         the input :class:`SimQueue`
``in_commit[i]``    the queue's committed deque (stable object, cached)
``in_port[i]``      port name string
``in_vc[i]``        input VC number
``in_phys[i]``      dense *physical input port* id (one-flit-per-input
                    -port arbitration constraint)
``in_ckey[i]``      arbitration candidate id handed to the Arbiter —
                    must stay exactly the object router's strings
                    (``port`` or ``port@vc<N>``) so arbiter grant
                    history is executor-independent
``alloc[i]``        dense output id of the held output VC, or -1
``head[i]``         head flit of the in-flight packet, or None
``age[i]``          starvation age (Phase C)
``fail_ver[i]``     release-version stamp of a cached failed adaptive
``fail_flit[i]``    allocation scan (``Router._alloc_fail``), flit
                    identity-checked; ``fail_flit is None`` = no cache
==================  ====================================================

Output side — dense output id ``d`` enumerates ``_sorted_outputs``;
because that list sorts by ``(port order, vc)`` all VCs of a physical
port are contiguous and ascending, so ``d == phys_first[p] + vc``
(asserted at build).  Arrays indexed by ``d``: ``out_keys``, ``out_q``,
``out_port_name``, ``out_vc_num``, ``out_phys`` (the owning physical
port id ``p``), ``owner`` (dense input id holding the VC, or -1).
Physical outputs indexed by ``p``: ``phys_names`` (canonical
``_physical_outputs`` order), ``phys_first``.

State that stays on the router object (single source of truth, read or
written through by the core): ``_output_lock`` (locks are per physical
port and barely hot), all stats counters and per-port stat dicts,
``_release_version``, ``table`` / ``adaptive_table`` / ``_dead_ports``
/ ``_fault_degraded`` (fault epochs are detected by identity checks —
the injector swaps whole objects).  The core *writes through* every
``_input_alloc`` / ``_output_owner`` / ``_input_head`` transition so
external readers (the fault injector's stuck-packet scan, tests) see
the dict state they always did; ages and the fail cache are dense-only
and written back by :meth:`ArrayCore.sync_to_router` (called on
detach).

Rules for adding a router field without breaking the executors:

1. decide its index space (per input VC ``i``, per output VC ``d``,
   per physical port ``p``) and add the parallel list next to its
   siblings in :meth:`ArrayCore.__init__`;
2. if the object router mutates it outside ``tick`` (fault epochs,
   wiring), either read it through the router with an identity-check
   refresh (see ``_dead_seen``) or leave it on the router entirely;
3. if anything outside the router reads it mid-run, write it through
   to the object-router dict at every transition (see the head/tail
   bookkeeping in :meth:`_transfer`);
4. extend :meth:`sync_to_router` / the pack loop in ``__init__`` so
   attach → detach → attach round-trips, and extend the round-trip
   test in ``tests/test_router_core.py``.

Why the batched executor steps routers through the array path instead
of vectorizing each phase plane-wide: routers of a plane interact
through *shared* queues within a cycle (a pop frees the slot another
router's capacity check reads the same cycle, in canonical order), so
congestion scores and grant masks have a sequential dependency that a
plane-wide numpy phase would break byte-for-byte.  The deterministic
win available today is scheduling — one component, dense masks, no
per-router kernel bookkeeping — and that is what this stepper does;
the per-phase arrays are laid out so a compiled backend (a C/Cython
loop preserving the sequential semantics; see ``COMPILED_BACKEND``)
can consume them without another representation change.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.core.packet import PacketKind
from repro.sim.component import Component
from repro.sim.snapshot import Snapshottable
from repro.transport.flit import Flit
from repro.transport.qos import Candidate
from repro.transport.router import _LOCK_CLEARERS, _LOCK_SETTERS, Router
from repro.transport.switching import SwitchingMode

# Optional compiled backend hook: a native module exporting
# ``step_plane(cores, cycle)`` with the exact sequential semantics of
# BatchedPlaneStepper.tick.  Not shipped here — the hook keeps the
# selection logic (and its absence) in one place.
try:  # pragma: no cover - no native module in this tree
    import repro_router_core_native as COMPILED_BACKEND  # type: ignore
except ImportError:
    COMPILED_BACKEND = None

ROUTER_CORES = ("object", "array", "batched")

_FREE_UNBOUNDED = 1 << 30  # Router._downstream_free's "no capacity" score


def resolve_router_core(requested: Optional[str] = None) -> str:
    """Resolve the executor name: explicit arg > env > default.

    ``REPRO_ROUTER_CORE`` overrides the default (used by the CI matrix
    leg that keeps the object reference path green); the default is
    ``batched``, the fastest executor.
    """
    if requested is None:
        requested = os.environ.get("REPRO_ROUTER_CORE") or "batched"
    if requested not in ROUTER_CORES:
        raise ValueError(
            f"router_core must be one of {ROUTER_CORES}, got {requested!r}"
        )
    return requested


class RouterCoreLayoutError(RuntimeError):
    """The router's wiring violates the dense-layout preconditions."""


def _noop_tick(cycle: int) -> None:
    """Neutralized router tick (batched mode: the stepper does the work)."""


def _always_idle() -> bool:
    """Neutralized router is_idle (batched mode: the kernel retires it)."""
    return True


class ArrayCore:
    """Dense-array executor for one router (the ``array`` path).

    Builds the dense layout from the router's *current* wiring and
    state (so attach works mid-run), then serves as the router's tick
    implementation.  See the module docstring for the layout contract.
    """

    def __init__(self, router: Router) -> None:
        r = router
        self.router = r
        self.name = r.name
        self.vcs = r.vcs

        # ---------------- input side ----------------
        in_items = list(r._sorted_inputs)
        self.n_in = len(in_items)
        self.in_keys: List[tuple] = [key for key, _q in in_items]
        self.in_q = [q for _key, q in in_items]
        self.in_commit = [q._committed for q in self.in_q]
        self.in_port = [key[0] for key in self.in_keys]
        self.in_vc = [key[1] for key in self.in_keys]
        self.in_ckey = [r._ckey[key] for key in self.in_keys]
        self.ckey_to_dense = {ck: i for i, ck in enumerate(self.in_ckey)}
        phys_in: Dict[str, int] = {}
        self.in_phys: List[int] = []
        for port in self.in_port:
            if port not in phys_in:
                phys_in[port] = len(phys_in)
            self.in_phys.append(phys_in[port])

        # ---------------- output side ----------------
        out_items = list(r._sorted_outputs)
        self.n_out = len(out_items)
        self.out_keys: List[tuple] = [key for key, _q in out_items]
        self.out_q = [q for _key, q in out_items]
        self.out_port_name = [key[0] for key in self.out_keys]
        self.out_vc_num = [key[1] for key in self.out_keys]
        self.phys_names = list(r._physical_outputs)
        self.n_phys = len(self.phys_names)
        self._phys_index = {name: p for p, name in enumerate(self.phys_names)}
        self.phys_first = [-1] * self.n_phys
        for d, (port, vc) in enumerate(self.out_keys):
            if vc == 0:
                self.phys_first[self._phys_index[port]] = d
        self.out_phys = [self._phys_index[port] for port in self.out_port_name]
        for d in range(self.n_out):
            if d != self.phys_first[self.out_phys[d]] + self.out_vc_num[d]:
                raise RouterCoreLayoutError(
                    f"{self.name}: output VCs of {self.out_port_name[d]!r} "
                    f"are not dense-contiguous (partial VC wiring?); the "
                    f"array core needs every VC 0..vcs-1 of a physical "
                    f"port wired, as Network always does"
                )

        # ---------------- state pack (from live router dicts) --------
        dense_out = {key: d for d, key in enumerate(self.out_keys)}
        dense_in = {key: i for i, key in enumerate(self.in_keys)}
        self.alloc = [
            -1 if r._input_alloc[key] is None else dense_out[r._input_alloc[key]]
            for key in self.in_keys
        ]
        self.head: List[Optional[Flit]] = [
            r._input_head[key] for key in self.in_keys
        ]
        self.age = [r._input_age[key] for key in self.in_keys]
        self.fail_ver = [0] * self.n_in
        self.fail_flit: List[Optional[Flit]] = [None] * self.n_in
        for i, key in enumerate(self.in_keys):
            cached = r._alloc_fail[key]
            if cached is not None:
                self.fail_ver[i] = cached[0]
                self.fail_flit[i] = cached[1]
        self.owner = [
            -1 if r._output_owner[key] is None else dense_in[r._output_owner[key]]
            for key in self.out_keys
        ]

        # ---------------- routing tables ----------------
        self._adaptive = r.adaptive_table is not None
        self._vc_mode = r.vcs > 1 or self._adaptive
        if self._adaptive:
            self._n_adaptive = r._n_adaptive
            self._escape_on = r._escape_on
            self._escape_base = r._escape_base_vc
            self._healthy_candidates = r._healthy_adaptive.candidates
            # per-dest candidate cache, invalidated when the injector
            # swaps the table object (identity check per allocation)
            self._adaptive_table = None
            self._adaptive_cache: Dict[int, tuple] = {}
            # escape VC of a hop is pure geometry: survives table swaps
            self._escape_vc: Dict[Tuple[int, int], int] = {}
        elif self.vcs == 1:
            # dest -> dense output id (vc is always 0); misses defer to
            # Router._route for the exact no-route KeyError
            self.route_dense: Dict[int, int] = {}
            for dest, port in r.table.items():
                p = self._phys_index.get(port)
                if p is not None:
                    self.route_dense[dest] = self.phys_first[p]
        else:
            # deterministic multi-VC: dest -> physical out id, plus a
            # lazy per-input cache of the (stateless) VC policy's choice
            self.det_route_phys: Dict[int, int] = {}
            for dest, port in r.table.items():
                p = self._phys_index.get(port)
                if p is not None:
                    self.det_route_phys[dest] = p
            self.det_vc: List[Dict[int, int]] = [{} for _ in range(self.n_in)]

        # fault mask over physical outputs, refreshed by identity check
        # on the epoch's frozenset (apply_fault_state swaps the object)
        self._dead_seen: Optional[frozenset] = None
        self._dead_mask = [False] * self.n_phys

        # scratch: Phase A/V desire lists (reset after every step)
        self._wants: List[Optional[List[int]]] = [None] * (
            self.n_phys if self._vc_mode else self.n_out
        )
        self._step = self._tick_vc if self._vc_mode else self._tick_single

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def attach(self) -> None:
        """Make this core the router's tick implementation (array mode)."""
        self.router.tick = self.tick
        self.router._array_core = self

    def detach(self) -> None:
        """Restore the object router, syncing dense-only state back."""
        self.sync_to_router()
        r = self.router
        for attr in ("tick", "wake", "is_idle"):
            r.__dict__.pop(attr, None)
        r._array_core = None

    def sync_to_router(self) -> None:
        """Write dense-only state (ages, fail cache) back to the dicts.

        Everything else — alloc/owner/head, locks, stats — is written
        through at every transition, so after this call the object
        router's state is exactly what it would have been had it run
        the object tick all along.
        """
        r = self.router
        input_age = r._input_age
        alloc_fail = r._alloc_fail
        for i, key in enumerate(self.in_keys):
            input_age[key] = self.age[i]
            flit = self.fail_flit[i]
            alloc_fail[key] = None if flit is None else (self.fail_ver[i], flit)

    def resync_from_router(self) -> None:
        """Re-pack the dense state from the router dicts (the inverse of
        :meth:`sync_to_router`, used after a checkpoint restore).

        Mirrors the pack loop in ``__init__``: alloc/head/age/fail and
        owner are rebuilt from the (just-restored) object-router dicts,
        and every identity-validated cache is dropped — the restore
        swapped the very objects (fault frozensets, adaptive tables)
        those caches were validated against.  Value-keyed caches
        (dense routes, escape-VC geometry) survive: they are pure
        functions of the build.
        """
        r = self.router
        dense_out = {key: d for d, key in enumerate(self.out_keys)}
        dense_in = {key: i for i, key in enumerate(self.in_keys)}
        for i, key in enumerate(self.in_keys):
            held = r._input_alloc[key]
            self.alloc[i] = -1 if held is None else dense_out[held]
            self.head[i] = r._input_head[key]
            self.age[i] = r._input_age[key]
            cached = r._alloc_fail[key]
            if cached is None:
                self.fail_ver[i] = 0
                self.fail_flit[i] = None
            else:
                self.fail_ver[i] = cached[0]
                self.fail_flit[i] = cached[1]
        for d, key in enumerate(self.out_keys):
            holder = r._output_owner[key]
            self.owner[d] = -1 if holder is None else dense_in[holder]
        self._dead_seen = None
        if self._adaptive:
            self._adaptive_table = None
            self._adaptive_cache = {}

    # ------------------------------------------------------------------ #
    # the cycle
    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> None:
        self.step(cycle)

    def step(self, cycle: int) -> bool:
        """One router cycle; returns False when provably a no-op."""
        busy = [i for i, c in enumerate(self.in_commit) if c]
        if not busy:
            return False
        dead = self.router._dead_ports
        if dead is not self._dead_seen:
            self._dead_seen = dead
            phys_names = self.phys_names
            mask = self._dead_mask
            for p in range(self.n_phys):
                mask[p] = phys_names[p] in dead
        self._step(cycle, busy)
        return True

    def _tick_single(self, cycle: int, busy: List[int]) -> None:
        """Single-VC wormhole switch (transliterates Router.tick)."""
        r = self.router
        alloc = self.alloc
        age = self.age
        in_commit = self.in_commit
        out_q = self.out_q
        mode = r.mode
        wormhole = mode is SwitchingMode.WORMHOLE
        route_dense = self.route_dense
        fault_degraded = r._fault_degraded
        dead_mask = self._dead_mask
        fault_blocked = False
        # Phase A: route heads with no allocation yet.
        heads: Dict[int, Flit] = {}
        wants = self._wants
        touched: List[int] = []
        for i in busy:
            if alloc[i] >= 0:
                continue
            flit = in_commit[i][0]
            if flit.seq != 0:
                raise RuntimeError(
                    f"{self.name}:{self.in_port[i]}: body flit {flit!r} at "
                    f"front with no allocation (framing bug)"
                )
            d = route_dense.get(flit.dest)
            if d is None:
                # table miss: Router._route raises the canonical error
                # (or resolves a late table extension, which we cache)
                port = r._route(flit.dest)
                d = self.phys_first[self._phys_index[port]]
                route_dense[flit.dest] = d
            if fault_degraded and dead_mask[d]:
                fault_blocked = True
                continue  # downed output: the head waits for a heal
            queue = out_q[d]
            if wormhole:
                capacity = queue.capacity
                ready = capacity is None or queue._occ < capacity
            else:
                capacity = queue.capacity
                ready = mode.head_may_depart(
                    flits_buffered=self._flits_of_front_packet(
                        in_commit[i], flit
                    ),
                    packet_flits=flit.count,
                    downstream_free=(
                        _FREE_UNBOUNDED
                        if capacity is None
                        else capacity - queue._occ
                    ),
                )
            if ready:
                heads[i] = flit
                contenders = wants[d]
                if contenders is None:
                    wants[d] = [i]
                    touched.append(d)
                else:
                    contenders.append(i)

        # Phase B: per-output arbitration and transfer.
        owner = self.owner
        output_lock = r._output_lock
        lock_support = r.lock_support
        arbiter = r.arbiter
        sole_grant = r.stream_fast_path and arbiter.sole_pick_is_grant
        in_ckey = self.in_ckey
        out_names = self.out_port_name
        sent: List[int] = []
        lock_stalled_any = False
        for d in range(self.n_out):
            holder_in = owner[d]
            if holder_in >= 0:
                # Continue the in-flight packet: no candidates, no
                # arbitration — just "flit buffered, room downstream".
                queue = out_q[d]
                capacity = queue.capacity
                if in_commit[holder_in] and (
                    capacity is None or queue._occ < capacity
                ):
                    self._transfer(holder_in, d, cycle)
                    sent.append(holder_in)
                continue
            contenders = wants[d]
            if contenders is None:
                continue
            out_port = out_names[d]
            holder = output_lock[out_port] if lock_support else None
            queue = out_q[d]
            capacity = queue.capacity
            if sole_grant and holder is None and len(contenders) == 1:
                if capacity is None or queue._occ < capacity:
                    i = contenders[0]
                    arbiter.note_sole_grant(out_port, in_ckey[i])
                    self._transfer(i, d, cycle)
                    sent.append(i)
                continue
            candidates: List[Candidate] = []
            lock_stalled = False
            for i in contenders:
                flit = heads[i]
                if holder is not None and holder != flit.src:
                    lock_stalled = True
                    continue
                packet = flit.packet
                urgency = packet.user.get("urgency", 0) if packet else 0
                candidates.append(
                    Candidate(
                        port=in_ckey[i],
                        priority=flit.priority,
                        age=age[i],
                        urgency=urgency,
                    )
                )
            if lock_stalled:
                lock_stalled_any = True
                r.lock_stalls_by_output[out_port] += 1
            if not candidates or not (
                capacity is None or queue._occ < capacity
            ):
                continue
            winner = arbiter.pick(out_port, candidates)
            i = self.ckey_to_dense[winner.port]
            self._transfer(i, d, cycle)
            sent.append(i)
        for d in touched:
            wants[d] = None
        if lock_stalled_any:
            r.lock_stall_cycles += 1
        if fault_blocked:
            r.fault_stall_cycles += 1

        # Phase C: age heads that waited.
        for i in busy:
            if i in sent or not in_commit[i]:
                age[i] = 0
            else:
                age[i] += 1

    def _tick_vc(self, cycle: int, busy: List[int]) -> None:
        """Multi-VC / adaptive switch (transliterates Router._tick_vc)."""
        r = self.router
        alloc = self.alloc
        head = self.head
        age = self.age
        owner = self.owner
        in_commit = self.in_commit
        out_q = self.out_q
        in_keys = self.in_keys
        out_keys = self.out_keys
        output_lock = r._output_lock
        lock_support = r.lock_support
        mode = r.mode
        wormhole = mode is SwitchingMode.WORMHOLE
        adaptive = r.adaptive_table
        fault_degraded = r._fault_degraded
        dead_mask = self._dead_mask
        rel_ver = r._release_version
        phys_first = self.phys_first
        out_phys = self.out_phys
        fail_ver = self.fail_ver
        fail_flit = self.fail_flit
        fault_blocked = False

        # Phase V: VC allocation (Phase A folded in — every allocated
        # input VC with a flit at the front and room downstream becomes
        # a switch-allocation request).
        wants = self._wants
        touched: List[int] = []
        lock_stalled_ports: List[str] = []
        input_alloc = r._input_alloc
        input_head = r._input_head
        output_owner = r._output_owner
        for i in busy:
            flit = in_commit[i][0]
            d = alloc[i]
            if d < 0:
                if flit.seq != 0:
                    raise RuntimeError(
                        f"{self.name}:{self.in_port[i]}:vc{self.in_vc[i]}: "
                        f"body flit {flit!r} at front with no allocation "
                        f"(framing bug)"
                    )
                if adaptive is not None:
                    if fail_flit[i] is flit and fail_ver[i] == rel_ver:
                        continue  # still blocked: nothing freed since
                    d = self._allocate_adaptive(
                        i, flit, lock_stalled_ports, rel_ver, adaptive
                    )
                    if d < 0:
                        continue  # no admissible candidate; retry
                else:
                    p = self.det_route_phys.get(flit.dest)
                    if p is None:
                        port = r._route(flit.dest)
                        p = self._phys_index[port]
                        self.det_route_phys[flit.dest] = p
                    if fault_degraded and dead_mask[p]:
                        fault_blocked = True
                        continue  # downed output: wait for a heal
                    if lock_support:
                        holder = output_lock[self.phys_names[p]]
                        if holder is not None and holder != flit.src:
                            lock_stalled_ports.append(self.phys_names[p])
                            continue  # refused until UNLOCK passes
                    vc_map = self.det_vc[i]
                    out_vc = vc_map.get(p)
                    if out_vc is None:
                        out_vc = r._output_vc_for(
                            in_keys[i], self.phys_names[p]
                        )
                        vc_map[p] = out_vc
                    d = phys_first[p] + out_vc
                    if owner[d] >= 0:
                        continue  # output VC busy; retry next cycle
                owner[d] = i
                alloc[i] = d
                head[i] = flit
                # write-through: external readers (fault injector's
                # stuck scan, tests) see the object-router dicts
                okey = out_keys[d]
                ikey = in_keys[i]
                output_owner[okey] = ikey
                input_alloc[ikey] = okey
                input_head[ikey] = flit
            if flit.seq == 0 and not wormhole:
                queue = out_q[d]
                capacity = queue.capacity
                ready = mode.head_may_depart(
                    flits_buffered=self._flits_of_front_packet(
                        in_commit[i], flit
                    ),
                    packet_flits=flit.count,
                    downstream_free=(
                        _FREE_UNBOUNDED
                        if capacity is None
                        else capacity - queue._occ
                    ),
                )
            else:
                queue = out_q[d]
                capacity = queue.capacity
                ready = capacity is None or queue._occ < capacity
            if ready:
                p = out_phys[d]
                contenders = wants[p]
                if contenders is None:
                    wants[p] = [i]
                    touched.append(p)
                else:
                    contenders.append(i)
        if lock_stalled_ports:
            r.lock_stall_cycles += 1
            stalls = r.lock_stalls_by_output
            for out_port in set(lock_stalled_ports):
                stalls[out_port] += 1
        if fault_blocked:
            r.fault_stall_cycles += 1

        # Phase B: switch allocation — one flit per physical output and
        # per physical input port per cycle, QoS-arbitrated across VCs.
        arbiter = r.arbiter
        sole_grant = r.stream_fast_path and arbiter.sole_pick_is_grant
        in_ckey = self.in_ckey
        in_phys = self.in_phys
        sent: List[int] = []
        used_input_ports: set = set()
        for p in range(self.n_phys):
            contenders = wants[p]
            if contenders is None:
                continue
            out_port = self.phys_names[p]
            if sole_grant and len(contenders) == 1:
                i = contenders[0]
                if in_phys[i] in used_input_ports:
                    continue  # input port already sent a flit this cycle
                arbiter.note_sole_grant(out_port, in_ckey[i])
                self._transfer(i, alloc[i], cycle)
                sent.append(i)
                used_input_ports.add(in_phys[i])
                continue
            candidates: List[Candidate] = []
            for i in contenders:
                if in_phys[i] in used_input_ports:
                    continue  # input port already sent a flit this cycle
                hf = head[i]
                assert hf is not None
                packet = hf.packet
                urgency = packet.user.get("urgency", 0) if packet else 0
                candidates.append(
                    Candidate(
                        port=in_ckey[i],
                        priority=hf.priority,
                        age=age[i],
                        urgency=urgency,
                    )
                )
            if not candidates:
                continue
            winner = arbiter.pick(out_port, candidates)
            i = self.ckey_to_dense[winner.port]
            self._transfer(i, alloc[i], cycle)
            sent.append(i)
            used_input_ports.add(in_phys[i])
        for p in touched:
            wants[p] = None

        # Phase C: age input VCs that waited with flits buffered.
        for i in busy:
            if i in sent:
                age[i] = 0
            else:
                age[i] += 1

    # ------------------------------------------------------------------ #
    # allocation / transfer helpers
    # ------------------------------------------------------------------ #
    def _flits_of_front_packet(self, committed, head: Flit) -> int:
        buffered = 0
        count = head.count
        packet_id = head.packet_id
        for flit in committed:
            if flit.packet_id != packet_id:
                break
            buffered += 1
            if buffered == count:
                break
        return buffered

    def _allocate_adaptive(
        self,
        i: int,
        flit: Flit,
        lock_stalled_ports: List[str],
        rel_ver: int,
        table,
    ) -> int:
        """Dense transliteration of Router._allocate_adaptive.

        Returns the granted dense output id, or -1 (with the same
        fail-cache / lock-stall side effects as the object code).
        """
        if table is not self._adaptive_table:
            # fault epoch swapped the table: per-dest candidates change
            self._adaptive_table = table
            self._adaptive_cache = {}
        r = self.router
        dest = flit.dest
        entry = self._adaptive_cache.get(dest)
        if entry is None:
            ports = table.outputs(dest)  # raises the canonical KeyError
            if ports and ports[0][0] == "l":  # "local:..."
                entry = (0, self._phys_index[ports[0]], ports)
            elif not ports:
                entry = (1, None, ports)
            else:
                phys_ids = tuple(self._phys_index[port] for port in ports)
                if self._escape_on:
                    eport = table.escape_port(dest)
                    entry = (2, phys_ids, ports, eport, self._phys_index[eport])
                else:
                    entry = (2, phys_ids, ports, None, -1)
            self._adaptive_cache[dest] = entry
        tag = entry[0]
        src = flit.src
        lock_support = r.lock_support
        output_lock = r._output_lock
        owner = self.owner
        if tag == 1:
            # Destination unreachable this fault epoch: nothing to scan.
            self.fail_ver[i] = rel_ver
            self.fail_flit[i] = flit
            return -1
        if tag == 0:
            # Ejection at the home router: single local port, keep the
            # class (out VC = in VC).
            p = entry[1]
            if lock_support:
                holder = output_lock[self.phys_names[p]]
                if holder is not None and holder != src:
                    lock_stalled_ports.append(self.phys_names[p])
                    return -1
            d = self.phys_first[p] + self.in_vc[i]
            if owner[d] < 0:
                return d
            self.fail_ver[i] = rel_ver
            self.fail_flit[i] = flit
            return -1
        phys_ids, ports, eport, eport_phys = entry[1], entry[2], entry[3], entry[4]
        refused: List[str] = []
        best = -1
        best_free = -1
        escape_on = self._escape_on
        escape_base = self._escape_base
        in_vc = self.in_vc[i]
        out_q = self.out_q
        phys_first = self.phys_first
        phys_names = self.phys_names
        from_escape = escape_on and in_vc >= escape_base
        if not (from_escape or (escape_on and flit.lock_related)):
            n_adaptive = self._n_adaptive
            for p in phys_ids:
                if lock_support:
                    holder = output_lock[phys_names[p]]
                    if holder is not None and holder != src:
                        refused.append(phys_names[p])
                        continue
                base = phys_first[p]
                for vc in range(n_adaptive):
                    d = base + vc
                    if owner[d] >= 0:
                        continue
                    queue = out_q[d]
                    capacity = queue.capacity
                    free = (
                        _FREE_UNBOUNDED
                        if capacity is None
                        else capacity - queue._occ
                    )
                    if free > best_free:
                        best = d
                        best_free = free
        if escape_on:
            holder = output_lock[eport] if lock_support else None
            if holder is not None and holder != src:
                if eport not in refused:
                    refused.append(eport)
            else:
                cache_key = (i, eport_phys)
                evc = self._escape_vc.get(cache_key)
                if evc is None:
                    evc = r.vc_policy.escape_output_vc(
                        r.router_id,
                        r._in_neighbor.get(self.in_port[i]),
                        r._out_neighbor[eport],
                        in_vc,
                        self.vcs,
                    )
                    self._escape_vc[cache_key] = evc
                d = phys_first[eport_phys] + evc
                if owner[d] < 0:
                    queue = out_q[d]
                    capacity = queue.capacity
                    free = (
                        _FREE_UNBOUNDED
                        if capacity is None
                        else capacity - queue._occ
                    )
                    if free > best_free:
                        best = d
                        best_free = free
        if best < 0:
            if refused:
                lock_stalled_ports.extend(refused)
            else:
                # Nothing free and no lock involved: cached until an
                # output VC is released (or a lock changes).
                self.fail_ver[i] = rel_ver
                self.fail_flit[i] = flit
            return -1
        if escape_on and self.out_vc_num[best] >= escape_base:
            r.packets_escape += 1
        else:
            r.packets_adaptive += 1
        if r._fault_degraded:
            healthy = self._healthy_candidates.get(dest, ())
            if ports != healthy:
                r.faults_hit += 1
                if self.out_port_name[best] not in healthy:
                    r.packets_rerouted += 1
        return best

    def _transfer(self, i: int, d: int, cycle: int) -> None:
        """Pop from input i, push to output d (inlined queue fast path).

        The queue operations are SimQueue.pop/push inlined with the
        exact counter, waiter-wake, dirty-list and overflow semantics
        (see the "core contract" note in sim/queue.py).
        """
        r = self.router
        inq = self.in_q[i]
        inq.total_popped += 1
        inq._occ -= 1
        flit = self.in_commit[i].popleft()
        for waiter in inq._pop_waiters:
            waiter.wake()
        out_vc = self.out_vc_num[d]
        flit.vc = out_vc  # retag for the next link's VC
        outq = self.out_q[d]
        capacity = outq.capacity
        if capacity is not None and outq._occ >= capacity:
            raise OverflowError(
                f"queue {outq.name!r} is full "
                f"({len(outq._committed)} committed + "
                f"{len(outq._staged)} staged"
                f" / capacity {outq.capacity})"
            )
        outq._staged.append(flit)
        outq._occ += 1
        outq.total_pushed += 1
        if not outq._dirty:
            outq._dirty = True
            kernel = outq._kernel
            if kernel is not None:
                kernel._dirty_queues.append(outq)
        r.flits_forwarded += 1
        out_port = self.out_port_name[d]
        r.output_busy_cycles[out_port] += 1
        seq = flit.seq
        if seq != 0 and seq != flit.count - 1:
            return  # body flit: no head/tail bookkeeping
        okey = self.out_keys[d]
        ikey = self.in_keys[i]
        if seq == 0:
            self.alloc[i] = d
            self.owner[d] = i
            self.head[i] = flit
            r._input_alloc[ikey] = okey
            r._output_owner[okey] = ikey
            r._input_head[ikey] = flit
            if self.vcs == 1:
                r._simulator.trace.log(
                    cycle,
                    self.name,
                    "route",
                    packet=flit.packet_id,
                    dest=flit.dest,
                    via=out_port,
                )
            else:
                r._simulator.trace.log(
                    cycle,
                    self.name,
                    "route",
                    packet=flit.packet_id,
                    dest=flit.dest,
                    via=out_port,
                    vc=out_vc,
                )
        if seq == flit.count - 1:
            hf = self.head[i]
            assert hf is not None
            self.alloc[i] = -1
            self.owner[d] = -1
            self.head[i] = None
            r._input_alloc[ikey] = None
            r._output_owner[okey] = None
            r._input_head[ikey] = None
            r._release_version += 1  # a freed VC invalidates fail caches
            r.packets_forwarded += 1
            if r.lock_support and hf.lock_related and hf.packet is not None:
                self._update_lock(out_port, hf, cycle)

    def _update_lock(self, out_port: str, head: Flit, cycle: int) -> None:
        packet = head.packet
        assert packet is not None
        if packet.kind is not PacketKind.REQUEST:
            return
        r = self.router
        if packet.opcode in _LOCK_SETTERS:
            r._output_lock[out_port] = head.src
            r._release_version += 1
            r._simulator.trace.log(
                cycle, self.name, "lock_set", port=out_port, master=head.src
            )
        elif packet.opcode in _LOCK_CLEARERS:
            if r._output_lock[out_port] == head.src:
                r._output_lock[out_port] = None
                r._release_version += 1
                r._simulator.trace.log(
                    cycle, self.name, "lock_clear", port=out_port, master=head.src
                )

    # ------------------------------------------------------------------ #
    # introspection (round-trip tests)
    # ------------------------------------------------------------------ #
    def state_fingerprint(self) -> dict:
        """Canonical view of the packed state, flits by route fields."""

        def fid(flit: Optional[Flit]):
            return None if flit is None else flit.route_fields()

        return {
            "in_keys": list(self.in_keys),
            "out_keys": list(self.out_keys),
            "alloc": [
                None if a < 0 else self.out_keys[a] for a in self.alloc
            ],
            "owner": [
                None if o < 0 else self.in_keys[o] for o in self.owner
            ],
            "head": [fid(f) for f in self.head],
            "age": list(self.age),
            "fail": [
                None
                if self.fail_flit[i] is None
                else (self.fail_ver[i], fid(self.fail_flit[i]))
                for i in range(self.n_in)
            ],
        }


class BatchedPlaneStepper(Component, Snapshottable):
    """Steps every busy router of one plane per cycle (``batched``).

    Registered immediately *before* the plane's routers, so its tick
    slot is exactly where the contiguous router block begins: within
    the block routers interact only with each other, so executing them
    all here in canonical order is order-identical to the object
    schedule.  Routers are adopted after wiring: their ``tick`` becomes
    a no-op, ``is_idle`` returns True (the kernel retires them on its
    next sweep), and ``wake`` forwards into the pending mask — every
    queue-borne wake the object router relied on lands here instead.

    The active mask is a plain list of bools swept in index order (the
    canonical order) with an activity counter beside it.  At realistic
    plane sizes (tens of routers) that sweep is a fraction of a
    microsecond; a numpy mask with ``flatnonzero`` was measured ~30x
    slower per cycle here — per-call numpy overhead on tiny arrays
    dwarfs the work.  Each busy router is stepped through its
    :class:`ArrayCore` — see the module docstring for why the phases
    are not vectorized plane-wide.
    """

    _next_event_known = True

    # The pending set is only ever *iterated* to set active flags (an
    # idempotent, order-independent merge), so capturing it as a plain
    # set cannot perturb the stepping order — that is always the dense
    # index sweep over the active mask.
    _snapshot_fields = ("_active", "_n_active", "_pending")

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.cores: List[ArrayCore] = []
        self._active: List[bool] = []
        self._n_active = 0
        self._pending: set = set()
        self._frozen = False

    def adopt(self, core: ArrayCore) -> None:
        router = core.router
        idx = len(self.cores)
        self.cores.append(core)
        router._array_core = core
        router.tick = _noop_tick
        router.is_idle = _always_idle
        pending_add = self._pending.add
        stepper_wake = self.wake

        def _forward_wake(_idx: int = idx) -> None:
            pending_add(_idx)
            stepper_wake()

        router.wake = _forward_wake
        pending_add(idx)  # conservative: first tick no-ops it out
        self.wake()

    def freeze(self) -> None:
        """Seal the core list (the mask list is sized here)."""
        self._active = [False] * len(self.cores)
        self._frozen = True

    # ------------------------------------------------------------------ #
    # activity contract
    # ------------------------------------------------------------------ #
    def is_idle(self) -> bool:
        return not self._pending and not self._n_active

    def next_event_cycle(self, now: int):
        return None if self.is_idle() else now

    def tick(self, cycle: int) -> None:
        active = self._active
        pending = self._pending
        if pending:
            n = self._n_active
            for idx in pending:
                if not active[idx]:
                    active[idx] = True
                    n += 1
            self._n_active = n
            pending.clear()
        if not self._n_active:
            return
        cores = self.cores
        n = self._n_active
        for idx, busy in enumerate(active):
            if busy and not cores[idx].step(cycle):
                active[idx] = False
                n -= 1
        self._n_active = n
