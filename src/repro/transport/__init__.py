"""The NoC transport layer.

"The transport layer defines information format and transport rules
between NIUs … completely transaction unaware" (paper §1).  Everything in
this package sees only flits and packet headers (destination, source,
priority, the LOCK marker, the virtual channel) — never transaction
semantics.  The single, deliberate exception is the legacy LOCK family,
which the paper itself concedes "impacts transport level".
"""

from repro.transport.faults import (
    FabricPartitionError,
    FaultConfigError,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    NoSurvivingPathError,
    OverlappingFaultWindowError,
    UnknownFaultTargetError,
    compute_degraded_tables,
)
from repro.transport.flit import Flit, Packetizer, Reassembler, flits_for_packet
from repro.transport.flow_control import CreditCounter
from repro.transport.network import BufferSizingError, Fabric, KindVcPolicy, Network
from repro.transport.qos import AgeArbiter, Arbiter, PriorityArbiter, RoundRobinArbiter
from repro.transport.router import Router
from repro.transport.routing import (
    AdaptiveRoutingTable,
    DatelineVcPolicy,
    EscapeVcPolicy,
    PriorityVcPolicy,
    RoutingError,
    VcPolicy,
    compute_adaptive_tables,
    compute_dor_tables,
    compute_routing_tables,
    make_vc_policy,
    xy_route,
)
from repro.transport.switching import SwitchingMode
from repro.transport.topology import Topology, router_sort_key

__all__ = [
    "AdaptiveRoutingTable",
    "AgeArbiter",
    "Arbiter",
    "BufferSizingError",
    "CreditCounter",
    "DatelineVcPolicy",
    "EscapeVcPolicy",
    "Fabric",
    "FabricPartitionError",
    "FaultConfigError",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "Flit",
    "KindVcPolicy",
    "Network",
    "NoSurvivingPathError",
    "OverlappingFaultWindowError",
    "Packetizer",
    "PriorityArbiter",
    "PriorityVcPolicy",
    "Reassembler",
    "Router",
    "RoundRobinArbiter",
    "RoutingError",
    "SwitchingMode",
    "Topology",
    "UnknownFaultTargetError",
    "VcPolicy",
    "compute_adaptive_tables",
    "compute_degraded_tables",
    "compute_dor_tables",
    "compute_routing_tables",
    "flits_for_packet",
    "make_vc_policy",
    "router_sort_key",
    "xy_route",
]
