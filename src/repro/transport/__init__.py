"""The NoC transport layer.

"The transport layer defines information format and transport rules
between NIUs … completely transaction unaware" (paper §1).  Everything in
this package sees only flits and packet headers (destination, source,
priority, the LOCK marker) — never transaction semantics.  The single,
deliberate exception is the legacy LOCK family, which the paper itself
concedes "impacts transport level".
"""

from repro.transport.flit import Flit, Packetizer, Reassembler, flits_for_packet
from repro.transport.flow_control import CreditCounter
from repro.transport.network import Fabric, Network
from repro.transport.qos import AgeArbiter, Arbiter, PriorityArbiter, RoundRobinArbiter
from repro.transport.router import Router
from repro.transport.routing import RoutingError, compute_routing_tables, xy_route
from repro.transport.switching import SwitchingMode
from repro.transport.topology import Topology

__all__ = [
    "AgeArbiter",
    "Arbiter",
    "CreditCounter",
    "Fabric",
    "Flit",
    "Network",
    "Packetizer",
    "PriorityArbiter",
    "Reassembler",
    "Router",
    "RoundRobinArbiter",
    "RoutingError",
    "SwitchingMode",
    "Topology",
    "compute_routing_tables",
    "flits_for_packet",
    "xy_route",
]
