"""Fault injection and resilience: schedules, degraded routing, detection.

A :class:`FaultSchedule` is a deterministic, cycle-stamped list of
link-down/link-up and router-port-down/up events, validated against the
topology at build time (named errors, see below) and attachable through
``SocBuilder(faults=...)`` or per-link via
:attr:`~repro.phys.link.LinkSpec.fault_windows`.  Faults are simulator
state like everything else: the :class:`FaultInjector` is a regular
:class:`~repro.sim.component.Component` registered *before* the plane's
routers, so fault edges apply at the exact scheduled cycle, before any
router ticks, identically under the strict reference kernel and the
event-wheel kernel (its :meth:`~FaultInjector.next_event_cycle` is the
next scheduled edge, so the wheel can never skip over one).

Fault semantics: **transmit-side cut with drain.**  A downed link (or
router output port) masks the *upstream* router's output for new
allocations — no fresh packet is ever granted the port — while traffic
already committed to it drains: phits handed to the physical link (its
TX staging and shift/pipe/sync stages) complete delivery, and a packet
whose head already won the output streams its remaining flits across
the cut (a wormhole cannot be retracted mid-flight in this model; the
alternative would strand flits with no retransmission layer to recover
them).  Nothing is dropped and no credit leaks, by construction; the
phits in flight at each cut are recorded in the
``<plane>.faults.phits_in_flight_at_cut`` counter so the accounting is
loud.  On a transparent (ideal-wire) link
the "link" *is* the downstream input buffer, so masking the upstream
output port is exactly the cut.  Injection-side NIU links are not
faultable targets (fault the ``local:`` ejection port of an endpoint to
model an unreachable device).

Degraded-mode routing: on every fault epoch the injector recomputes the
adaptive plane's candidate/escape tables on the *surviving* directed
graph (see :func:`compute_degraded_tables`) and pushes them to the
routers — a genuine reroute, not just dead-candidate filtering, so
traffic detours around a failure even when every healthy-minimal
neighbour is dead.  Deterministic planes (table/XY/DOR) keep their
tables: a fault on a deterministic route makes the affected
destinations unroutable, which the partition watchdog (below) detects.

Partition detection: whenever any fault is active the injector arms a
watchdog deadline (``partition_budget`` cycles past the last event that
could still revive a target).  At the deadline it scans for provably
stuck traffic — an input VC whose held output allocation points at a
permanently dead port, or any buffered/pending packet whose destination
is unroutable from where it sits — and raises
:class:`FabricPartitionError` naming the first few.  A degraded but
routable fabric re-arms and keeps watching; a healthy fabric disarms.
The fabric therefore never wedges silently on a permanent fault.

Known honest limitation: a LOCK/UNLOCK pair whose escape route changes
*between* the two packets (the epoch flipped mid-sequence) can strand a
port lock; the resulting stall is caught by the watchdog only if it
makes a destination unroutable, otherwise by ``run_until``'s cycle
budget.  Fault schedules and lock traffic should not be mixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.sim.component import Component
from repro.sim.kernel import SimulationError
from repro.sim.snapshot import Snapshottable
from repro.transport.routing import AdaptiveRoutingTable, port_local, port_to
from repro.transport.topology import Topology, router_sort_key

RouterId = Hashable
DirectedEdge = Tuple[RouterId, RouterId]
PortKey = Tuple[RouterId, str]


class FaultConfigError(ValueError):
    """Base class for build-time fault-schedule validation failures."""


class UnknownFaultTargetError(FaultConfigError):
    """A fault event references a link, router or port the topology lacks."""


class OverlappingFaultWindowError(FaultConfigError):
    """Down/up windows on one target overlap, repeat or never opened."""


class NoSurvivingPathError(FaultConfigError):
    """The schedule leaves some endpoint pair with no surviving path.

    Raised at build time when any moment of the schedule disconnects two
    endpoints on the router graph itself (so not even a recomputed
    escape path survives).  Pass ``allow_partition=True`` to build such
    a schedule anyway — the runtime watchdog then reports the partition
    as a :class:`FabricPartitionError` when traffic actually hits it.
    """


class FabricPartitionError(SimulationError):
    """Traffic is provably stuck behind a permanent fault (see module doc)."""


@dataclass(frozen=True)
class FaultEvent:
    """One cycle-stamped fault edge.

    ``kind`` is ``"link"`` (``target`` = canonically ordered router
    pair; both directions go down/up together) or ``"port"``
    (``target`` = ``(router, output port name)`` — a ``to:<neighbor>``
    inter-router output or a ``local:<endpoint>`` ejection port).
    """

    cycle: int
    kind: str
    target: tuple
    down: bool


class FaultSchedule:
    """Deterministic fault timeline, built fluently and validated at build.

    ``partition_budget`` bounds how long after the last possibly-reviving
    event the watchdog waits before scanning for stuck traffic;
    ``allow_partition`` downgrades the build-time
    :class:`NoSurvivingPathError` so runtime partition detection can be
    exercised deliberately.
    """

    def __init__(
        self,
        partition_budget: int = 512,
        allow_partition: bool = False,
    ) -> None:
        if partition_budget < 1:
            raise FaultConfigError("partition_budget must be >= 1")
        self.partition_budget = partition_budget
        self.allow_partition = allow_partition
        self._events: List[FaultEvent] = []

    # ------------------------------------------------------------------ #
    # fluent builders
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_cycle(cycle: int) -> int:
        if cycle < 0:
            raise FaultConfigError(f"fault cycle must be >= 0, got {cycle}")
        return cycle

    @staticmethod
    def _link_target(a: RouterId, b: RouterId) -> tuple:
        return tuple(sorted((a, b), key=router_sort_key))

    def link_down(self, cycle: int, a: RouterId, b: RouterId) -> "FaultSchedule":
        """Both directions of the ``a``–``b`` link go down at ``cycle``."""
        self._events.append(
            FaultEvent(self._check_cycle(cycle), "link", self._link_target(a, b), True)
        )
        return self

    def link_up(self, cycle: int, a: RouterId, b: RouterId) -> "FaultSchedule":
        self._events.append(
            FaultEvent(self._check_cycle(cycle), "link", self._link_target(a, b), False)
        )
        return self

    def port_down(self, cycle: int, router: RouterId, port: str) -> "FaultSchedule":
        """One router output port (``to:<n>`` or ``local:<ep>``) goes down."""
        self._events.append(
            FaultEvent(self._check_cycle(cycle), "port", (router, port), True)
        )
        return self

    def port_up(self, cycle: int, router: RouterId, port: str) -> "FaultSchedule":
        self._events.append(
            FaultEvent(self._check_cycle(cycle), "port", (router, port), False)
        )
        return self

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def events(self) -> List[FaultEvent]:
        """Events ordered by cycle (stable: insertion order within one)."""
        return sorted(self._events, key=lambda ev: ev.cycle)

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def extended(self, events: Sequence[FaultEvent]) -> "FaultSchedule":
        """A copy with ``events`` appended (keeps budget/allow flags)."""
        merged = FaultSchedule(
            partition_budget=self.partition_budget,
            allow_partition=self.allow_partition,
        )
        merged._events = list(self._events) + list(events)
        return merged

    # ------------------------------------------------------------------ #
    # build-time validation
    # ------------------------------------------------------------------ #
    def validate(self, topology: Topology) -> None:
        """Raise a named :class:`FaultConfigError` subclass on a bad schedule.

        Checks, in order: every event's target exists in ``topology``
        (:class:`UnknownFaultTargetError`); per-target down/up windows
        are well-formed — no double-down, no up-without-down, no
        zero-length window (:class:`OverlappingFaultWindowError`); and no
        moment of the replayed schedule disconnects an endpoint pair on
        the surviving graph (:class:`NoSurvivingPathError`, unless
        ``allow_partition``).
        """
        graph = topology.graph
        for ev in self._events:
            if ev.kind == "link":
                a, b = ev.target
                if a not in graph or b not in graph or not graph.has_edge(a, b):
                    raise UnknownFaultTargetError(
                        f"fault schedule: no link {a!r} -- {b!r} in "
                        f"topology {topology.name!r}"
                    )
            else:
                router, port = ev.target
                if router not in graph:
                    raise UnknownFaultTargetError(
                        f"fault schedule: unknown router {router!r} in "
                        f"topology {topology.name!r}"
                    )
                valid = {port_to(n) for n in graph.neighbors(router)}
                valid.update(
                    port_local(ep) for ep in topology.endpoints_at(router)
                )
                if port not in valid:
                    raise UnknownFaultTargetError(
                        f"fault schedule: router {router!r} has no output "
                        f"port {port!r} (valid: {sorted(valid)})"
                    )
        # Window well-formedness: replay per target.
        state: Dict[Tuple[str, tuple], Tuple[bool, int]] = {}
        for ev in self.events:
            key = (ev.kind, ev.target)
            down, since = state.get(key, (False, -1))
            if ev.down:
                if down:
                    raise OverlappingFaultWindowError(
                        f"fault schedule: {ev.kind} {ev.target!r} taken down "
                        f"at cycle {ev.cycle} but already down since cycle "
                        f"{since} (overlapping down-windows)"
                    )
                state[key] = (True, ev.cycle)
            else:
                if not down:
                    raise OverlappingFaultWindowError(
                        f"fault schedule: {ev.kind} {ev.target!r} brought up "
                        f"at cycle {ev.cycle} but was not down"
                    )
                if ev.cycle <= since:
                    raise OverlappingFaultWindowError(
                        f"fault schedule: {ev.kind} {ev.target!r} window "
                        f"[{since}, {ev.cycle}) is empty — up must come "
                        f"strictly after down"
                    )
                state[key] = (False, ev.cycle)
        # Connectivity: no moment of the schedule may strand an endpoint
        # pair on the graph itself (adaptive recompute can route around
        # anything short of a true partition).
        if self.allow_partition:
            return
        down_links: Set[DirectedEdge] = set()
        down_ports: Set[PortKey] = set()
        events = self.events
        index = 0
        while index < len(events):
            cycle = events[index].cycle
            while index < len(events) and events[index].cycle == cycle:
                _apply_event(events[index], down_links, down_ports)
                index += 1
            stranded = unreachable_endpoint_pairs(topology, down_links, down_ports)
            if stranded:
                src, dst = stranded[0]
                raise NoSurvivingPathError(
                    f"fault schedule: from cycle {cycle} endpoint {src} has "
                    f"no surviving path to endpoint {dst} (plus "
                    f"{len(stranded) - 1} more stranded pairs) — not even an "
                    f"escape route survives; pass allow_partition=True to "
                    f"build anyway and rely on runtime partition detection"
                )


def _apply_event(
    ev: FaultEvent,
    down_links: Set[DirectedEdge],
    down_ports: Set[PortKey],
) -> None:
    """Fold one event into the down-state sets (both link directions)."""
    if ev.kind == "link":
        a, b = ev.target
        for edge in ((a, b), (b, a)):
            if ev.down:
                down_links.add(edge)
            else:
                down_links.discard(edge)
    else:
        if ev.down:
            down_ports.add(ev.target)
        else:
            down_ports.discard(ev.target)


def expand_link_spec_windows(
    topology: Topology, link_spec
) -> List[FaultEvent]:
    """Per-link :attr:`LinkSpec.fault_windows` as schedule events.

    A window ``(down, up)`` on the inter-router link spec applies to
    *every* inter-router link of the plane (the spec describes a link
    class, exactly as its width/pipeline fields do).
    """
    windows = getattr(link_spec, "fault_windows", ())
    if not windows:
        return []
    events: List[FaultEvent] = []
    edges = sorted(
        (tuple(sorted(edge, key=router_sort_key)) for edge in topology.graph.edges),
        key=lambda e: (router_sort_key(e[0]), router_sort_key(e[1])),
    )
    for a, b in edges:
        for down, up in windows:
            events.append(FaultEvent(down, "link", (a, b), True))
            events.append(FaultEvent(up, "link", (a, b), False))
    return events


# ---------------------------------------------------------------------- #
# surviving-graph route recomputation
# ---------------------------------------------------------------------- #
def _alive_adjacency(
    topology: Topology,
    down_links: Set[DirectedEdge],
    down_ports: Set[PortKey],
) -> Dict[RouterId, List[RouterId]]:
    """Directed surviving adjacency: r -> neighbours its output can reach."""
    alive: Dict[RouterId, List[RouterId]] = {}
    for router in topology.routers:
        alive[router] = [
            n
            for n in topology.neighbors(router)
            if (router, n) not in down_links
            and (router, port_to(n)) not in down_ports
        ]
    return alive


def _reverse_distances(
    alive: Dict[RouterId, List[RouterId]], home: RouterId
) -> Dict[RouterId, int]:
    """BFS hop distance *to* ``home`` along surviving directed edges."""
    reverse: Dict[RouterId, List[RouterId]] = {r: [] for r in alive}
    for router, neighbors in alive.items():
        for n in neighbors:
            reverse[n].append(router)
    dist = {home: 0}
    frontier = [home]
    while frontier:
        nxt: List[RouterId] = []
        for node in frontier:
            d = dist[node] + 1
            for pred in reverse[node]:
                if pred not in dist:
                    dist[pred] = d
                    nxt.append(pred)
        frontier = nxt
    return dist


def compute_degraded_tables(
    topology: Topology,
    down_links: Set[DirectedEdge],
    down_ports: Set[PortKey],
    healthy_escape: Optional[Dict[RouterId, Dict[int, str]]] = None,
) -> Tuple[Dict[RouterId, AdaptiveRoutingTable], Dict[RouterId, Set[int]]]:
    """Adaptive tables recomputed on the surviving directed graph.

    Candidate sets are the alive neighbours strictly closer to the
    destination's home router under *surviving-graph* BFS distance — a
    genuine reroute, so a router whose healthy-minimal neighbours all
    died still forwards along the detour.  The escape entry keeps the
    healthy deterministic (DOR/XY) port wherever it is still alive and
    minimal, preserving the proven escape construction away from the
    fault; elsewhere it falls back to the first surviving candidate (a
    per-destination BFS tree — acyclic per destination but *not* proven
    deadlock-free across destinations, which is why the partition
    watchdog and ``run_until`` budgets stay armed while degraded).

    Returns ``(tables, unroutable)`` where ``unroutable[router]`` is the
    set of endpoints unreachable from that router this epoch (empty sets
    omitted).  An endpoint whose ``local:`` ejection port is down is
    unreachable from everywhere, including its home router.
    """
    alive = _alive_adjacency(topology, down_links, down_ports)
    routers = topology.routers
    candidates: Dict[RouterId, Dict[int, Tuple[str, ...]]] = {
        r: {} for r in routers
    }
    escape: Dict[RouterId, Dict[int, str]] = {r: {} for r in routers}
    unroutable: Dict[RouterId, Set[int]] = {}
    big = 1 << 30
    for endpoint in topology.endpoints:
        home = topology.router_of(endpoint)
        local_dead = (home, port_local(endpoint)) in down_ports
        dist = {} if local_dead else _reverse_distances(alive, home)
        for router in routers:
            if router == home and not local_dead:
                cands: Tuple[str, ...] = (port_local(endpoint),)
            elif router in dist:
                here = dist[router]
                cands = tuple(
                    port_to(n)
                    for n in alive[router]
                    if dist.get(n, big) < here
                )
            else:
                cands = ()
            candidates[router][endpoint] = cands
            if cands:
                choice = cands[0]
                if healthy_escape is not None:
                    preferred = healthy_escape[router].get(endpoint)
                    if preferred in cands:
                        choice = preferred
                escape[router][endpoint] = choice
            else:
                unroutable.setdefault(router, set()).add(endpoint)
    tables = {
        r: AdaptiveRoutingTable(candidates[r], escape[r]) for r in routers
    }
    return tables, unroutable


def unreachable_endpoint_pairs(
    topology: Topology,
    down_links: Set[DirectedEdge],
    down_ports: Set[PortKey],
) -> List[Tuple[int, int]]:
    """Ordered endpoint pairs ``(src, dst)`` with no surviving path."""
    alive = _alive_adjacency(topology, down_links, down_ports)
    stranded: List[Tuple[int, int]] = []
    endpoints = topology.endpoints
    for dst in endpoints:
        home = topology.router_of(dst)
        if (home, port_local(dst)) in down_ports:
            stranded.extend((src, dst) for src in endpoints if src != dst)
            continue
        dist = _reverse_distances(alive, home)
        for src in endpoints:
            if src != dst and topology.router_of(src) not in dist:
                stranded.append((src, dst))
    return stranded


# ---------------------------------------------------------------------- #
# runtime: one injector per plane
# ---------------------------------------------------------------------- #
class FaultInjector(Component, Snapshottable):
    """Applies a plane's fault schedule and watches for partitions.

    Registered by :class:`~repro.transport.network.Network` *before* the
    plane's routers, so an epoch's new fault state is visible to every
    router tick of the same cycle under both kernels (registration order
    is tick order).  ``next_event_cycle`` is the next scheduled fault
    edge or watchdog deadline, which is what lets the event-wheel kernel
    skip quiet stretches without ever skipping over a fault.
    """

    _next_event_known = True

    def __init__(self, name: str, network, schedule: FaultSchedule) -> None:
        super().__init__(name)
        self.network = network
        self.schedule = schedule
        self._events = schedule.events
        self._idx = 0
        self.down_links: Set[DirectedEdge] = set()
        self.down_ports: Set[PortKey] = set()
        #: Bumped once per applied event batch; routers key their blocked-
        #: head rescans off the matching _release_version bump.
        self.fault_epoch = 0
        #: ``(cycle, event)`` log of applied events (tests/introspection).
        self.applied: List[Tuple[int, FaultEvent]] = []
        self.budget = schedule.partition_budget
        self._deadline: Optional[int] = None
        self._unroutable: Dict[RouterId, FrozenSet[int]] = {}
        #: Watchdog parked: the plane is degraded but fully drained, so
        #: nothing can become stuck until new traffic is injected.  The
        #: injection-side wake hooks (below) re-arm the deadline then.
        self._parked = False
        self._injection_wakes_registered = False

    # -- state capture ----------------------------------------------------
    _snapshot_fields = (
        "_idx",
        "down_links",
        "down_ports",
        "fault_epoch",
        "applied",
        "_deadline",
        "_unroutable",
        "_parked",
    )

    def _snapshot_state(self) -> dict:
        state = super()._snapshot_state()
        state["injection_wakes"] = self._injection_wakes_registered
        return state

    def _restore_state(self, state) -> None:
        super()._restore_state(state)
        # The wake hooks are *registrations*, not a flag: a fresh build
        # has none, so replay the arming instead of restoring the bool.
        if state["injection_wakes"] and not self._injection_wakes_registered:
            self._ensure_injection_wakes()

    # -- runtime schedule extension (design-space sweeps) ------------------
    def extend_schedule(self, events: Sequence[FaultEvent]) -> None:
        """Merge new fault events into the not-yet-applied suffix.

        This is how a forked what-if run imposes an alternative fault
        future on a restored checkpoint: events already applied are
        history and stay untouched; the new events sort into the pending
        tail by cycle.  Events dated before the current cycle are
        rejected (:class:`FaultConfigError`) — they could never have
        been applied on a cold run either.
        """
        if not events:
            return
        now = self._simulator.cycle if self._simulator is not None else 0
        for ev in events:
            if ev.cycle < now:
                raise FaultConfigError(
                    f"{self.name}: cannot extend the schedule with an "
                    f"event at past cycle {ev.cycle} (now {now})"
                )
        self.schedule = self.schedule.extended(events)
        self.schedule.validate(self.network.topology)
        suffix = self._events[self._idx :] + list(events)
        suffix.sort(key=lambda ev: ev.cycle)
        self._events = self._events[: self._idx] + suffix
        self._parked = False
        self.wake()

    # -- activity contract ------------------------------------------------
    def is_idle(self) -> bool:
        return self._idx >= len(self._events) and self._deadline is None

    def next_event_cycle(self, now: int):
        nxt = self._events[self._idx].cycle if self._idx < len(self._events) else None
        if self._deadline is not None and (nxt is None or self._deadline < nxt):
            nxt = self._deadline
        if nxt is None:
            return None
        return nxt if nxt > now else now

    # -- the cycle --------------------------------------------------------
    def tick(self, cycle: int) -> None:
        events = self._events
        applied = False
        while self._idx < len(events) and events[self._idx].cycle <= cycle:
            self._apply(cycle, events[self._idx])
            self._idx += 1
            applied = True
        if applied:
            self._refresh(cycle)
        elif self._parked:
            # Woken from the injection side while parked: if traffic is
            # actually visible, it could wedge behind the standing fault,
            # so the watchdog re-arms from scratch.  (Spurious wakes with
            # a still-drained plane stay parked.)
            if not self._plane_drained():
                self._parked = False
                self._deadline = cycle + self.budget
            return
        if self._deadline is not None and cycle >= self._deadline:
            self._check_partition(cycle)

    def _apply(self, cycle: int, ev: FaultEvent) -> None:
        if ev.kind == "link" and ev.down:
            self._account_cut(ev.target)
        elif ev.kind == "port" and ev.down and ev.target[1].startswith("to:"):
            router, port = ev.target
            neighbor = self.network.routers[router]._out_neighbor.get(port)
            if neighbor is not None:
                self._account_cut((router, neighbor), directed=True)
        _apply_event(ev, self.down_links, self.down_ports)
        self.applied.append((cycle, ev))

    def _account_cut(self, target: tuple, directed: bool = False) -> None:
        """Record phits in flight on a freshly downed link (they drain)."""
        a, b = target
        edges = ((a, b),) if directed else ((a, b), (b, a))
        in_flight = 0
        for edge in edges:
            link = self.network._edge_links.get(edge)
            if link is None:
                continue  # transparent wire: nothing is ever in flight
            in_flight += link.in_flight
            in_flight += sum(
                q.occupancy for q in self.network._edge_feeds.get(edge, ())
            )
        self.simulator.stats.counter(
            f"{self.network.name}.faults.phits_in_flight_at_cut"
        ).inc(in_flight)

    def _refresh(self, cycle: int) -> None:
        """Recompute routes/routability and push the new epoch to routers."""
        net = self.network
        degraded = bool(self.down_links or self.down_ports)
        dead_by_router: Dict[RouterId, FrozenSet[str]] = {}
        if degraded:
            for a, b in self.down_links:
                dead_by_router.setdefault(a, set()).add(port_to(b))  # type: ignore[attr-defined]
            for router, port in self.down_ports:
                dead_by_router.setdefault(router, set()).add(port)  # type: ignore[attr-defined]
            dead_by_router = {
                r: frozenset(ports) for r, ports in dead_by_router.items()
            }
        if net.routing == "adaptive":
            if degraded:
                tables, unroutable = compute_degraded_tables(
                    net.topology,
                    self.down_links,
                    self.down_ports,
                    healthy_escape={
                        r: t.escape for r, t in net._adaptive_tables.items()
                    },
                )
            else:
                tables, unroutable = net._adaptive_tables, {}
        else:
            tables = None
            unroutable = self._trace_unroutable(dead_by_router) if degraded else {}
        self._unroutable = {
            r: frozenset(eps) for r, eps in unroutable.items() if eps
        }
        self.fault_epoch += 1
        empty: FrozenSet[str] = frozenset()
        for rid, router in net.routers.items():
            router.apply_fault_state(
                dead_by_router.get(rid, empty),
                degraded,
                tables[rid] if tables is not None else None,
            )
        self._parked = False
        if degraded:
            pending_up = [
                ev.cycle for ev in self._events[self._idx :] if not ev.down
            ]
            base = max(pending_up) if pending_up else cycle
            self._deadline = max(cycle, base) + self.budget
        else:
            self._deadline = None

    def _trace_unroutable(
        self, dead_by_router: Dict[RouterId, FrozenSet[str]]
    ) -> Dict[RouterId, Set[int]]:
        """Deterministic planes: follow each table path across dead ports."""
        net = self.network
        topology = net.topology
        unroutable: Dict[RouterId, Set[int]] = {}
        for endpoint in topology.endpoints:
            reachable: Dict[RouterId, bool] = {}
            for start in topology.routers:
                chain: List[RouterId] = []
                node = start
                verdict: Optional[bool] = None
                while verdict is None:
                    known = reachable.get(node)
                    if known is not None:
                        verdict = known
                        break
                    chain.append(node)
                    router = net.routers[node]
                    port = router.table[endpoint]
                    if port in dead_by_router.get(node, ()):
                        verdict = False
                    elif port.startswith("local:"):
                        verdict = True
                    else:
                        node = router._out_neighbor[port]
                for visited in chain:
                    reachable[visited] = verdict
                if not verdict:
                    unroutable.setdefault(start, set()).add(endpoint)
        return unroutable

    # -- partition watchdog ----------------------------------------------
    def _check_partition(self, cycle: int) -> None:
        stuck = self._scan_stuck()
        if stuck:
            shown = "; ".join(stuck[:4])
            more = f" (+{len(stuck) - 4} more)" if len(stuck) > 4 else ""
            raise FabricPartitionError(
                f"{self.name}: traffic stuck behind a permanent fault at "
                f"cycle {cycle} (watchdog budget {self.budget}): {shown}{more}"
            )
        # Still degraded, nothing provably stuck yet.  If every event has
        # been applied (no heal can change routability) and the plane has
        # fully drained, nothing can *become* stuck until new traffic is
        # injected — park instead of re-arming every budget cycles, so an
        # idle degraded fabric skips like a healthy one.  The injection
        # wake hooks re-arm the watchdog when traffic reappears (tick).
        if self._idx >= len(self._events) and self._plane_drained():
            self._ensure_injection_wakes()
            self._parked = True
            self._deadline = None
        else:
            self._deadline = cycle + self.budget

    def _plane_drained(self) -> bool:
        """True when no traffic exists anywhere in this plane.

        Checked only at watchdog deadlines and parked-wake ticks, so the
        full sweep (injection ports, router input VCs, link pipes) stays
        off the per-cycle path.  Occupancy reads include staged items, so
        a push from earlier this cycle already counts.
        """
        net = self.network
        for port in net.injection_ports.values():
            if port.packet_queue._occ or any(port._pending):
                return False
        for router in net.routers.values():
            for _ivc, queue in router._sorted_inputs:
                if queue._occ:
                    return False
        for link in net._edge_links.values():
            if link is not None and link.in_flight:
                return False
        for feeds in net._edge_feeds.values():
            for queue in feeds:
                if queue.occupancy:
                    return False
        return True

    def _ensure_injection_wakes(self) -> None:
        """Arm the park/re-arm path: new injection traffic wakes us.

        Registered lazily at first park so healthy (or never-drained)
        runs pay nothing; ``wake_on_push`` fires when packets *commit*
        into an injection port's queue, which under both kernels is the
        cycle before this injector could have observed them anyway.
        """
        if self._injection_wakes_registered:
            return
        self._injection_wakes_registered = True
        for port in self.network.injection_ports.values():
            port.packet_queue.wake_on_push(self)

    def _scan_stuck(self) -> List[str]:
        """Provably stuck traffic, in canonical order (deterministic)."""
        net = self.network
        stuck: List[str] = []
        unroutable = self._unroutable
        for rid in net.topology.routers:
            router = net.routers[rid]
            bad = unroutable.get(rid)
            if not bad:
                continue
            for ivc, queue in router._sorted_inputs:
                committed = queue._committed
                if not committed:
                    continue
                flit = committed[0]
                # In-flight streams always drain (allocations held across
                # a cut keep streaming); only an unallocated head whose
                # destination is unroutable from here is provably stuck.
                if router._input_alloc[ivc] is None and flit.dest in bad:
                    stuck.append(
                        f"packet {flit.packet_id} at router {rid!r} bound "
                        f"for unreachable endpoint {flit.dest}"
                    )
        for endpoint in net.topology.endpoints:
            home = net.topology.router_of(endpoint)
            bad = unroutable.get(home)
            if not bad:
                continue
            port = net.injection_ports[endpoint]
            for pending in port._pending:
                if pending and pending[0].dest in bad:
                    stuck.append(
                        f"injection port {endpoint}: staged packet "
                        f"{pending[0].packet_id} bound for unreachable "
                        f"endpoint {pending[0].dest}"
                    )
                    break
            for packet in port.packet_queue._committed:
                if packet.route_destination in bad:
                    stuck.append(
                        f"injection port {endpoint}: queued packet bound "
                        f"for unreachable endpoint {packet.route_destination}"
                    )
                    break
        return stuck
