"""Quality-of-service arbitration at switch output ports.

"The transport layer focuses on quality of service and scalability"
(paper §1).  QoS here is the output-port arbitration policy: when several
input ports want the same output, who goes first.  Policies only ever see
the transport-visible header fields (priority, age) — never transaction
content — preserving layer separation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.sim.snapshot import Snapshottable


@dataclass(frozen=True, slots=True)
class Candidate:
    """One input port competing for an output port this cycle."""

    port: str
    priority: int
    age: int  # cycles since the head flit reached the front
    urgency: int = 0  # dynamic boost (URGENCY NoC service)

    @property
    def effective_priority(self) -> int:
        return self.priority + self.urgency


class Arbiter(Snapshottable):
    """Base arbitration policy; subclasses implement :meth:`pick`."""

    name = "base"

    _snapshot_fields = ("_grant_seq", "_grants")

    #: True when granting a *lone* candidate is state-equivalent to
    #: :meth:`note_sole_grant` — it holds for every built-in policy
    #: (each reduces to the shared round-robin over its top set, and a
    #: singleton always wins, so the only state change is the grant
    #: recency update).  Routers rely on it to skip candidate
    #: construction for uncontested outputs; a subclass whose
    #: :meth:`pick` does anything more on a single candidate must set
    #: this False to keep the bypass off.
    sole_pick_is_grant = True

    def __init__(self) -> None:
        self._grant_seq = 0
        self._grants: Dict[tuple, int] = {}  # (output, port) -> grant seq

    def pick(self, output: str, candidates: Sequence[Candidate]) -> Candidate:
        raise NotImplementedError

    def note_sole_grant(self, output: str, port: str) -> None:
        """Record an uncontested grant without building a candidate.

        Byte-identical to ``pick(output, [the_sole_candidate])`` for any
        policy with ``sole_pick_is_grant``: the rotation state must see
        the grant or a later contested tie would break differently.
        """
        self._grant_seq += 1
        self._grants[(output, port)] = self._grant_seq

    # ------------------------------------------------------------------ #
    # round-robin helper shared by subclasses
    # ------------------------------------------------------------------ #
    def _round_robin(
        self, output: str, candidates: Sequence[Candidate]
    ) -> Candidate:
        """Least-recently-granted rotation, per output port.

        :class:`PriorityArbiter`/:class:`AgeArbiter` delegate here with a
        *filtered subset* of the contenders (the priority/age winners),
        so the rotation state must stay fair across varying candidate
        sets.  The old pointer scheme ("first port after the last
        winner") could starve a port forever when contests alternated
        between subsets on either side of it; granting the candidate
        whose last win is oldest (never-granted first, earliest list
        position as the tie-break — callers build candidate lists in
        canonical port order, so ties never fall back to lexicographic
        port-string comparison) serves every persistent contender within
        one full rotation regardless of how the subsets are sliced.
        """
        grants = self._grants
        __, winner = min(
            enumerate(candidates),
            key=lambda item: (grants.get((output, item[1].port), -1), item[0]),
        )
        self._grant_seq += 1
        grants[(output, winner.port)] = self._grant_seq
        return winner


class RoundRobinArbiter(Arbiter):
    """Fair rotation among requesting inputs; ignores priority."""

    name = "round-robin"

    def pick(self, output: str, candidates: Sequence[Candidate]) -> Candidate:
        if not candidates:
            raise ValueError("pick() with no candidates")
        return self._round_robin(output, candidates)


class PriorityArbiter(Arbiter):
    """Strict priority (highest effective priority first), RR tie-break.

    This is the paper's QoS knob: latency-critical flows get a higher
    packet priority and overtake best-effort traffic at every switch.
    """

    name = "priority"

    def pick(self, output: str, candidates: Sequence[Candidate]) -> Candidate:
        if not candidates:
            raise ValueError("pick() with no candidates")
        best = max(c.effective_priority for c in candidates)
        top = [c for c in candidates if c.effective_priority == best]
        return self._round_robin(output, top)


class AgeArbiter(Arbiter):
    """Oldest-first arbitration — bounds worst-case waiting time."""

    name = "age"

    def pick(self, output: str, candidates: Sequence[Candidate]) -> Candidate:
        if not candidates:
            raise ValueError("pick() with no candidates")
        oldest = max(c.age for c in candidates)
        top = [c for c in candidates if c.age == oldest]
        return self._round_robin(output, top)


ARBITERS = {
    cls.name: cls for cls in (RoundRobinArbiter, PriorityArbiter, AgeArbiter)
}


def make_arbiter(name: str) -> Arbiter:
    try:
        return ARBITERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown arbiter {name!r}; known: {sorted(ARBITERS)}"
        ) from None
