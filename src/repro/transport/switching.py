"""Packet switching disciplines.

Paper §1: "wormhole or store-and-forward packet handling makes no
difference at the transaction level".  The switching mode decides *when*
a packet's head flit may leave a router:

- **WORMHOLE** — immediately; the packet snakes through, occupying a
  channel per hop (lowest latency, lowest buffering).
- **STORE_AND_FORWARD** — only once the entire packet is buffered in this
  router (highest latency, per-hop integrity).
- **VIRTUAL_CUT_THROUGH** — immediately, but only if the downstream
  buffer can hold the whole packet (wormhole latency, no mid-link stalls).

Benchmark E5 runs identical workloads under all three and asserts that
transaction-level results are unchanged while transport metrics differ.
"""

from __future__ import annotations

import enum


class SwitchingMode(enum.Enum):
    WORMHOLE = "WORMHOLE"
    STORE_AND_FORWARD = "STORE_AND_FORWARD"
    VIRTUAL_CUT_THROUGH = "VIRTUAL_CUT_THROUGH"

    def head_may_depart(
        self,
        flits_buffered: int,
        packet_flits: int,
        downstream_free: int,
    ) -> bool:
        """May the head flit of a packet leave the current router?

        Parameters
        ----------
        flits_buffered:
            Flits of *this* packet already sitting in the local input
            buffer (head included).
        packet_flits:
            Total flits in the packet.
        downstream_free:
            Free slots in the downstream buffer this cycle.
        """
        if downstream_free < 1:
            return False
        if self is SwitchingMode.WORMHOLE:
            return True
        if self is SwitchingMode.STORE_AND_FORWARD:
            return flits_buffered >= packet_flits
        # virtual cut-through
        return downstream_free >= packet_flits

    def min_buffer_for(self, max_packet_flits: int) -> int:
        """Smallest legal input-buffer capacity under this mode."""
        if self is SwitchingMode.WORMHOLE:
            return 1
        return max_packet_flits

    def __str__(self) -> str:
        return self.value
