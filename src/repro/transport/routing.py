"""Deterministic routing.

Two schemes, both deadlock-free on the topologies the benches use:

- **table routing** — per-router lookup tables computed from BFS shortest
  paths with lexicographic tie-breaking (deterministic across runs);
- **XY routing** — dimension-ordered routing for meshes/tori whose router
  ids are ``(x, y)`` tuples; provably deadlock-free on meshes.

Port naming convention (shared with :mod:`repro.transport.router`):
``to:<router>`` for an inter-router link towards ``<router>`` and
``local:<endpoint>`` for the ejection port of an attached endpoint.
"""

from __future__ import annotations

from typing import Dict, Hashable

import networkx as nx

from repro.transport.topology import Topology

RouterId = Hashable


class RoutingError(RuntimeError):
    """No route exists (configuration bug — topologies are connected)."""


def port_to(neighbor: RouterId) -> str:
    return f"to:{neighbor}"


def port_local(endpoint: int) -> str:
    return f"local:{endpoint}"


def compute_routing_tables(
    topology: Topology,
) -> Dict[RouterId, Dict[int, str]]:
    """``tables[router][endpoint] -> output port name``.

    Next hops follow BFS shortest paths; among equal-length choices the
    lexicographically smallest neighbour (by ``str``) wins, making tables
    reproducible regardless of graph-internal ordering.
    """
    tables: Dict[RouterId, Dict[int, str]] = {r: {} for r in topology.routers}
    for endpoint in topology.endpoints:
        home = topology.router_of(endpoint)
        # BFS distances from the endpoint's home router.
        dist = nx.single_source_shortest_path_length(topology.graph, home)
        for router in topology.routers:
            if router == home:
                tables[router][endpoint] = port_local(endpoint)
                continue
            best = min(
                (n for n in topology.graph.neighbors(router) if dist[n] < dist[router]),
                key=str,
            )
            tables[router][endpoint] = port_to(best)
    return tables


def xy_route(router: RouterId, dest_router: RouterId) -> RouterId:
    """Next router on the X-then-Y path (mesh/torus with tuple ids)."""
    if not (isinstance(router, tuple) and isinstance(dest_router, tuple)):
        raise RoutingError(
            f"XY routing needs (x, y) router ids, got {router!r} -> {dest_router!r}"
        )
    x, y = router
    dx, dy = dest_router
    if x != dx:
        return (x + (1 if dx > x else -1), y)
    if y != dy:
        return (x, y + (1 if dy > y else -1))
    raise RoutingError(f"xy_route called with router == dest ({router!r})")


def compute_xy_tables(topology: Topology) -> Dict[RouterId, Dict[int, str]]:
    """Dimension-ordered tables for mesh topologies (tuple router ids)."""
    tables: Dict[RouterId, Dict[int, str]] = {r: {} for r in topology.routers}
    for endpoint in topology.endpoints:
        home = topology.router_of(endpoint)
        for router in topology.routers:
            if router == home:
                tables[router][endpoint] = port_local(endpoint)
            else:
                nxt = xy_route(router, home)
                if not topology.graph.has_edge(router, nxt):
                    raise RoutingError(
                        f"XY next hop {router!r}->{nxt!r} is not a mesh link"
                    )
                tables[router][endpoint] = port_to(nxt)
    return tables
