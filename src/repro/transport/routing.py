"""Deterministic routing and virtual-channel selection policies.

Four routing schemes:

- **table routing** — per-router lookup tables computed from BFS shortest
  paths with canonical tie-breaking (deterministic across runs);
- **XY routing** — dimension-ordered routing for meshes whose router ids
  are ``(x, y)`` tuples; provably deadlock-free on meshes;
- **DOR routing** — dimension-ordered routing *with wraparound* for
  rings (integer ids) and tori (tuple ids): each dimension is traversed
  the shortest way around its ring (ties towards the positive
  direction), X before Y.  Minimal and deterministic; combined with the
  dateline VC policy below it is provably deadlock-free with 2 VCs;
- **adaptive routing** — Duato-style minimal-adaptive: every hop may
  forward on *any* output of the minimal set (any neighbour strictly
  closer to the destination), chosen per cycle by downstream congestion,
  while a reserved *escape* VC pair falls back to the deterministic
  scheme (DOR with dateline classes on rings/tori, XY on meshes).  See
  :class:`AdaptiveRoutingTable` / :class:`EscapeVcPolicy` and the
  deadlock argument below.

Port naming convention (shared with :mod:`repro.transport.router`):
``to:<router>`` for an inter-router link towards ``<router>`` and
``local:<endpoint>`` for the ejection port of an attached endpoint.

Virtual-channel selection
-------------------------
A :class:`VcPolicy` decides which VC a packet is injected on and which
output VC a router's VC-allocation stage assigns at each hop.  The
default policy keeps everything on VC 0.  :class:`PriorityVcPolicy`
maps packet priority classes onto VCs (QoS isolation: a high-priority
flow can never be head-of-line blocked behind best-effort traffic
sharing its input port).  :class:`DatelineVcPolicy` implements the
classic dateline construction for wraparound topologies:

**Deadlock-freedom argument (dateline, 2 VCs).**  Under DOR routing a
packet traverses each dimension's unidirectional ring at most once and
crosses that ring's wraparound edge (the *dateline*) at most once.
Packets enter every dimension on VC 0 and are promoted to VC 1 for the
rest of that dimension when they cross the dateline.  Order the channels
of one unidirectional ring ``c0 < c1 < … < ck`` starting just past the
dateline: a packet on VC 0 only ever waits for strictly increasing VC-0
channels (it would have been promoted before wrapping), and a packet on
VC 1 only for strictly increasing VC-1 channels, so neither VC class
contains a cyclic channel dependency.  Across dimensions DOR orders X
strictly before Y, so inter-dimension dependencies are acyclic too, and
ejection queues are always drainable sinks.  Hence the channel
dependency graph is acyclic and wormhole routing cannot deadlock.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

import networkx as nx

from repro.transport.topology import Topology, router_sort_key

RouterId = Hashable


class RoutingError(RuntimeError):
    """No route exists (configuration bug — topologies are connected)."""


def port_to(neighbor: RouterId) -> str:
    return f"to:{neighbor}"


def port_local(endpoint: int) -> str:
    return f"local:{endpoint}"


def compute_routing_tables(
    topology: Topology,
) -> Dict[RouterId, Dict[int, str]]:
    """``tables[router][endpoint] -> output port name``.

    Next hops follow BFS shortest paths; among equal-length choices the
    canonically smallest neighbour (see
    :func:`~repro.transport.topology.router_sort_key`) wins, making
    tables reproducible regardless of graph-internal ordering — and,
    unlike the old ``key=str`` tie-break, independent of whether router
    indices have one digit or two.
    """
    tables: Dict[RouterId, Dict[int, str]] = {r: {} for r in topology.routers}
    for endpoint in topology.endpoints:
        home = topology.router_of(endpoint)
        # BFS distances from the endpoint's home router.
        dist = nx.single_source_shortest_path_length(topology.graph, home)
        for router in topology.routers:
            if router == home:
                tables[router][endpoint] = port_local(endpoint)
                continue
            best = min(
                (n for n in topology.graph.neighbors(router) if dist[n] < dist[router]),
                key=router_sort_key,
            )
            tables[router][endpoint] = port_to(best)
    return tables


def xy_route(router: RouterId, dest_router: RouterId) -> RouterId:
    """Next router on the X-then-Y path (mesh with tuple ids, no wrap)."""
    if not (isinstance(router, tuple) and isinstance(dest_router, tuple)):
        raise RoutingError(
            f"XY routing needs (x, y) router ids, got {router!r} -> {dest_router!r}"
        )
    x, y = router
    dx, dy = dest_router
    if x != dx:
        return (x + (1 if dx > x else -1), y)
    if y != dy:
        return (x, y + (1 if dy > y else -1))
    raise RoutingError(f"xy_route called with router == dest ({router!r})")


def compute_xy_tables(topology: Topology) -> Dict[RouterId, Dict[int, str]]:
    """Dimension-ordered tables for mesh topologies (tuple router ids)."""
    tables: Dict[RouterId, Dict[int, str]] = {r: {} for r in topology.routers}
    for endpoint in topology.endpoints:
        home = topology.router_of(endpoint)
        for router in topology.routers:
            if router == home:
                tables[router][endpoint] = port_local(endpoint)
            else:
                nxt = xy_route(router, home)
                if not topology.graph.has_edge(router, nxt):
                    raise RoutingError(
                        f"XY next hop {router!r}->{nxt!r} is not a mesh link"
                    )
                tables[router][endpoint] = port_to(nxt)
    return tables


# ---------------------------------------------------------------------- #
# dimension-ordered routing with wraparound (rings and tori)
# ---------------------------------------------------------------------- #
def _ring_step(coord: int, dest: int, size: int) -> int:
    """Next coordinate moving the shortest way around a ring of ``size``
    positions; an even split ties towards the positive direction."""
    forward = (dest - coord) % size
    backward = (coord - dest) % size
    step = 1 if forward <= backward else -1
    return (coord + step) % size


def _torus_dims(topology: Topology) -> Tuple[int, int]:
    """Grid dimensions inferred from ``(x, y)`` router ids."""
    xs = {r[0] for r in topology.graph.nodes}
    ys = {r[1] for r in topology.graph.nodes}
    return max(xs) + 1, max(ys) + 1


def dor_route(
    router: RouterId, dest_router: RouterId, dims: Tuple[int, ...]
) -> RouterId:
    """Next router under dimension-ordered routing with wraparound.

    ``dims`` holds the ring size per dimension: ``(n,)`` for an
    integer-id ring, ``(width, height)`` for a torus.
    """
    if isinstance(router, tuple):
        x, y = router
        dx, dy = dest_router
        if x != dx:
            return (_ring_step(x, dx, dims[0]), y)
        if y != dy:
            return (x, _ring_step(y, dy, dims[1]))
        raise RoutingError(f"dor_route called with router == dest ({router!r})")
    if router == dest_router:
        raise RoutingError(f"dor_route called with router == dest ({router!r})")
    return _ring_step(router, dest_router, dims[0])


def compute_dor_tables(topology: Topology) -> Dict[RouterId, Dict[int, str]]:
    """Dimension-ordered wraparound tables for rings and tori.

    Integer router ids are treated as a single ring; ``(x, y)`` ids as a
    torus whose dimensions are inferred from the id set.  Every next hop
    is checked against the graph, so a topology missing the wraparound
    link the scheme wants (e.g. a plain mesh) fails loudly.
    """
    sample = topology.routers[0]
    if isinstance(sample, tuple):
        dims: Tuple[int, ...] = _torus_dims(topology)
    else:
        dims = (topology.graph.number_of_nodes(),)
    tables: Dict[RouterId, Dict[int, str]] = {r: {} for r in topology.routers}
    for endpoint in topology.endpoints:
        home = topology.router_of(endpoint)
        for router in topology.routers:
            if router == home:
                tables[router][endpoint] = port_local(endpoint)
            else:
                nxt = dor_route(router, home, dims)
                if not topology.graph.has_edge(router, nxt):
                    raise RoutingError(
                        f"DOR next hop {router!r}->{nxt!r} is not a link of "
                        f"{topology.name!r} (scheme needs ring/torus wraparound)"
                    )
                tables[router][endpoint] = port_to(nxt)
    return tables


ROUTING_SCHEMES = ("table", "xy", "dor", "adaptive")


def compute_tables(
    topology: Topology, scheme: str
) -> Dict[RouterId, Dict[int, str]]:
    """Dispatch on the routing scheme name (the ``routing=`` knob)."""
    if scheme == "table":
        return compute_routing_tables(topology)
    if scheme == "xy":
        return compute_xy_tables(topology)
    if scheme == "dor":
        return compute_dor_tables(topology)
    if scheme == "adaptive":
        raise ValueError(
            "adaptive routing has multi-output tables; "
            "use compute_adaptive_tables()"
        )
    raise ValueError(
        f"unknown routing scheme {scheme!r}; known: {ROUTING_SCHEMES}"
    )


# ---------------------------------------------------------------------- #
# minimal-adaptive routing with escape VCs
# ---------------------------------------------------------------------- #
class AdaptiveRoutingTable:
    """One router's multi-output route lookup for minimal-adaptive routing.

    ``candidates[endpoint]`` is the tuple of output ports that keep the
    route minimal (canonical order — this is the deterministic tie-break
    order of congestion-equal choices), and ``escape[endpoint]`` the
    single output of the deterministic escape scheme (DOR on rings/tori,
    XY on meshes, BFS tables elsewhere).  The escape port is always a
    member of the candidate set (both schemes are minimal).  At the home
    router both collapse to the ejection port.
    """

    __slots__ = ("candidates", "escape")

    def __init__(
        self,
        candidates: Dict[int, Tuple[str, ...]],
        escape: Dict[int, str],
    ) -> None:
        self.candidates = candidates
        self.escape = escape

    def outputs(self, dest: int) -> Tuple[str, ...]:
        try:
            return self.candidates[dest]
        except KeyError:
            raise KeyError(
                f"no adaptive route to endpoint {dest} "
                f"(table has {sorted(self.candidates)})"
            ) from None

    def escape_port(self, dest: int) -> str:
        return self.escape[dest]


def compute_adaptive_tables(
    topology: Topology,
) -> Dict[RouterId, AdaptiveRoutingTable]:
    """Minimal output sets + deterministic escape tables per router.

    The candidate sets come from BFS distances (on a mesh/torus that is
    exactly the minimal quadrant, at most one neighbour per dimension
    with a non-zero offset); the escape table is the strongest
    deterministic scheme the topology supports: DOR where the wraparound
    links exist, XY on plain meshes, canonical BFS tables for arbitrary
    graphs (deadlock freedom of the escape subnetwork is only *argued*
    for ring/torus — with dateline classes — and mesh; see
    :class:`EscapeVcPolicy`).
    """
    escape_tables: Optional[Dict[RouterId, Dict[int, str]]] = None
    for scheme in ("dor", "xy", "table"):
        try:
            escape_tables = compute_tables(topology, scheme)
            break
        except (RoutingError, TypeError):
            # TypeError: DOR/XY arithmetic on non-numeric router ids
            # (topo.custom allows arbitrary hashables) — fall through to
            # the next scheme, ending at BFS tables which accept any id.
            continue
    assert escape_tables is not None  # "table" never raises RoutingError
    tables: Dict[RouterId, AdaptiveRoutingTable] = {}
    for router in topology.routers:
        candidates: Dict[int, Tuple[str, ...]] = {}
        for endpoint in topology.endpoints:
            home = topology.router_of(endpoint)
            if router == home:
                candidates[endpoint] = (port_local(endpoint),)
            else:
                candidates[endpoint] = tuple(
                    port_to(n)
                    for n in topology.minimal_neighbors(router, home)
                )
        tables[router] = AdaptiveRoutingTable(
            candidates, escape_tables[router]
        )
    return tables


# ---------------------------------------------------------------------- #
# virtual-channel selection policies
# ---------------------------------------------------------------------- #
class VcPolicy:
    """Chooses virtual channels at injection and per hop.

    ``injection_vc`` runs in the injection port when a packet is
    segmented; ``output_vc`` runs in the router's VC-allocation stage
    when a head flit requests an output.  ``prev_router`` is the
    neighbour the packet arrived from (``None`` at the injection hop)
    and ``next_router`` the neighbour the chosen output leads to
    (``None`` for ejection ports).  Policies are stateless: everything
    they need rides on the packet or in the hop geometry, so one
    instance can serve every router of a plane.
    """

    name = "keep"
    min_vcs = 1

    def injection_vc(self, packet, vcs: int) -> int:
        return 0

    def output_vc(
        self,
        router: RouterId,
        prev_router: Optional[RouterId],
        next_router: Optional[RouterId],
        in_vc: int,
        vcs: int,
    ) -> int:
        return in_vc


class PriorityVcPolicy(VcPolicy):
    """QoS isolation: packet priority class selects the injection VC.

    Priority ``p`` rides VC ``min(p, vcs - 1)`` end to end, so a
    high-priority flow owns its buffer at every *fabric* input port and
    is never head-of-line blocked there behind a stalled best-effort
    packet — the per-output QoS arbiters finally see the high-priority
    head.  (The injection port's packet queue is still a shared FIFO;
    one blocked packet parks aside per VC, deeper backlogs queue in
    arrival order — see ROADMAP open items.)
    """

    name = "priority"

    def injection_vc(self, packet, vcs: int) -> int:
        return max(0, min(packet.priority, vcs - 1))


class DatelineVcPolicy(VcPolicy):
    """Dateline VC classes for rings/tori (see module docstring).

    Packets enter each dimension on VC 0 and move to VC 1 when the hop
    crosses that dimension's wraparound edge (detected geometrically: a
    coordinate delta whose magnitude exceeds 1).  With DOR routing this
    makes wormhole routing on ``topology.ring`` / ``topology.torus``
    deadlock-free with 2 VCs.  Ejection keeps the current VC.
    """

    name = "dateline"
    min_vcs = 2

    @staticmethod
    def _deltas(a: RouterId, b: RouterId) -> Tuple[int, ...]:
        if isinstance(a, tuple):
            return tuple(ax - bx for ax, bx in zip(a, b))
        return (a - b,)

    @classmethod
    def _hop_dim(cls, a: RouterId, b: RouterId) -> int:
        for dim, delta in enumerate(cls._deltas(a, b)):
            if delta:
                return dim
        return -1

    @classmethod
    def _crosses_dateline(cls, a: RouterId, b: RouterId) -> bool:
        return any(abs(delta) > 1 for delta in cls._deltas(a, b))

    def output_vc(
        self,
        router: RouterId,
        prev_router: Optional[RouterId],
        next_router: Optional[RouterId],
        in_vc: int,
        vcs: int,
    ) -> int:
        if next_router is None:  # ejection: per-VC delivery, keep class
            return in_vc
        if self._crosses_dateline(router, next_router):
            return 1
        if prev_router is None:  # injection hop, dateline not crossed
            return 0
        if self._hop_dim(prev_router, router) != self._hop_dim(router, next_router):
            return 0  # entering a fresh dimension ring
        return min(in_vc, 1)


class EscapeVcPolicy(VcPolicy):
    """VC split for minimal-adaptive routing (Duato's methodology).

    The VC space of a plane is divided into two classes:

    - **adaptive VCs** ``0 .. vcs - 3``: a head flit may acquire any
      adaptive VC of any output in its *minimal* set, chosen per cycle
      by downstream congestion.  No ordering discipline applies, so
      these channels may form cyclic dependencies under load;
    - **escape VCs** ``vcs - 2, vcs - 1``: the top two VCs are reserved
      for the deterministic escape subnetwork — DOR routing with the
      dateline construction mapped onto the pair (class 0 before the
      wraparound crossing, class 1 after).  A packet that enters the
      escape class stays on it (DOR from wherever it is) until ejection.

    **Deadlock-freedom argument.**  The escape subnetwork on its own is
    the PR 3 construction: DOR keeps inter-dimension dependencies
    acyclic and the dateline pair breaks each ring's wrap cycle, so the
    escape channel dependency graph is acyclic and always drains (a
    packet joining escape mid-route still crosses each dimension's
    dateline at most once — minimal routing never wraps a ring twice —
    so the strictly-increasing channel-order argument is unchanged).
    Every head flit blocked on adaptive VCs *also* requests its escape
    VC each cycle, and escape admission only waits on escape-network
    state; since escape drains, every waiting head is eventually
    granted, so the whole fabric is deadlock-free however tangled the
    adaptive-class dependencies get.  ``EscapeVcPolicy(escape=False)``
    removes the escape class (pure minimal-adaptive) — the configuration
    the adversarial tests freeze — to demonstrate that the escape VCs,
    not luck, provide the guarantee.

    **Under faults** (a :class:`~repro.transport.faults.FaultSchedule`
    attached to the plane), the argument weakens honestly rather than
    silently.  What still holds: routers whose ports all survive keep
    their DOR escape next-hops verbatim (the degraded recompute prefers
    the healthy escape port wherever it is alive and still minimal, see
    :func:`~repro.transport.faults.compute_degraded_tables`), so away
    from the fault the dateline/DOR acyclicity argument is untouched;
    and blocked heads still request escape every cycle.  What is *lost*:
    at routers forced to detour, the escape entry falls back to a
    BFS-tree port on the surviving graph — acyclic per destination but
    with no cross-destination channel ordering — so degraded escape
    routes are **not proven deadlock-free**.  What loudly fails instead
    of wedging: the plane's
    :class:`~repro.transport.faults.FaultInjector` keeps a partition
    watchdog armed the whole time any fault is active, raising a named
    :class:`~repro.transport.faults.FabricPartitionError` for provably
    stuck traffic within its cycle budget, and ``run_until`` budgets
    bound everything else.  A destination with *no* surviving path is
    rejected at build time (:class:`NoSurvivingPathError`) unless
    explicitly allowed.

    Injection maps priority classes onto the adaptive VCs (as
    :class:`PriorityVcPolicy` does over the whole space), keeping QoS
    isolation inside the adaptive class.
    """

    name = "escape"
    min_vcs = 3
    escape_vcs = 2

    def __init__(self, escape: bool = True) -> None:
        self.escape = escape
        if not escape:
            self.min_vcs = 1
            self.escape_vcs = 0

    def adaptive_vcs(self, vcs: int) -> int:
        """Number of adaptive-class VCs on a plane with ``vcs`` total."""
        return vcs - self.escape_vcs

    def escape_base(self, vcs: int) -> int:
        return vcs - self.escape_vcs

    def is_escape_vc(self, vc: int, vcs: int) -> bool:
        return self.escape and vc >= vcs - self.escape_vcs

    def injection_vc(self, packet, vcs: int) -> int:
        return max(0, min(packet.priority, self.adaptive_vcs(vcs) - 1))

    def escape_output_vc(
        self,
        router: RouterId,
        prev_router: Optional[RouterId],
        next_router: RouterId,
        in_vc: int,
        vcs: int,
    ) -> int:
        """Escape-class VC for the hop ``router -> next_router``.

        Dateline classes within the escape pair: promotion on the
        wraparound edge, reset on a dimension change, and a packet
        transitioning in from an adaptive VC enters at class 0 (its
        remaining DOR path crosses each remaining dateline at most
        once, which is all the argument needs).
        """
        base = self.escape_base(vcs)
        was_escape = in_vc >= base
        try:
            if DatelineVcPolicy._crosses_dateline(router, next_router):
                cls = 1
            elif not was_escape or prev_router is None:
                cls = 0
            elif DatelineVcPolicy._hop_dim(
                prev_router, router
            ) != DatelineVcPolicy._hop_dim(router, next_router):
                cls = 0  # entering a fresh dimension ring
            else:
                cls = min(in_vc - base, 1)
        except TypeError:
            # Non-numeric router ids (arbitrary topo.custom graphs) have
            # no ring geometry and hence no datelines to cross.
            cls = 0
        return base + cls

    def output_vc(
        self,
        router: RouterId,
        prev_router: Optional[RouterId],
        next_router: Optional[RouterId],
        in_vc: int,
        vcs: int,
    ) -> int:
        # Only meaningful on an adaptive router, whose VC-allocation
        # stage enumerates (output, VC) candidates itself; ejection (the
        # one case routed through the generic hook) keeps the class.
        return in_vc


VC_POLICIES = {
    cls.name: cls
    for cls in (VcPolicy, PriorityVcPolicy, DatelineVcPolicy, EscapeVcPolicy)
}


def make_vc_policy(policy) -> VcPolicy:
    """Accept a policy instance, a registered name, or ``None`` (keep)."""
    if policy is None:
        return VcPolicy()
    if isinstance(policy, VcPolicy):
        return policy
    try:
        return VC_POLICIES[policy]()
    except KeyError:
        raise KeyError(
            f"unknown VC policy {policy!r}; known: {sorted(VC_POLICIES)}"
        ) from None
