"""Network assembly: routers + links + injection/ejection ports.

A :class:`Network` is one routing plane.  A :class:`Fabric` is what NIUs
actually attach to: two independent planes — one for requests, one for
responses — the standard construction that removes request/response
protocol deadlock without virtual channels.

Every connection — inter-router and NIU↔router — is built through a
:class:`~repro.phys.link.LinkSpec`.  The default spec (full width, no
pipeline stages, both ends in the same clock domain) wires the connection
as one raw shared :class:`~repro.sim.queue.SimQueue`, exactly as a fabric
with no physical layer: zero extra components, cycle-identical.  Anything
else (narrow phits, wire pipelining, or a clock-domain boundary between
an endpoint's region and the fabric domain) instantiates a
:class:`~repro.phys.link.PhysicalLink` between two staging queues, with
the CDC synchronizer folded into the link when the domains differ —
per-link timing is part of the fabric, not a bolt-on.

NIU-facing API (all packet granularity; flits are internal):

- ``fabric.can_inject_request(ep)`` / ``fabric.inject_request(ep, pkt)``
- ``fabric.requests(ep)`` — :class:`SimQueue` of request packets arriving
  at target endpoint ``ep`` (target NIU pops);
- symmetric ``*_response`` / ``responses(ep)`` for the reply direction.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.packet import NocPacket, PacketFormat
from repro.phys.link import LinkSpec, PhysicalLink, domains_cross
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.sim.queue import SimQueue
from repro.transport.flit import Flit, Packetizer, Reassembler, flits_for_packet
from repro.transport.qos import Arbiter, make_arbiter
from repro.transport.router import Router
from repro.transport.routing import (
    compute_routing_tables,
    compute_xy_tables,
    port_local,
    port_to,
)
from repro.transport.switching import SwitchingMode
from repro.transport.topology import Topology


class InjectionPort(Component):
    """Segments packets from a NIU into flits feeding the local router."""

    def __init__(
        self,
        name: str,
        endpoint: int,
        packetizer: Packetizer,
        packet_queue: SimQueue,
        flit_queue: SimQueue,
    ) -> None:
        super().__init__(name)
        self.endpoint = endpoint
        self.packetizer = packetizer
        self.packet_queue = packet_queue
        self.flit_queue = flit_queue
        self._pending: List[Flit] = []
        self.packets_injected = 0
        self.flits_injected = 0
        packet_queue.wake_on_push(self)
        flit_queue.wake_on_pop(self)

    def is_idle(self) -> bool:
        return not self._pending and not self.packet_queue

    def tick(self, cycle: int) -> None:
        if not self._pending and self.packet_queue:
            packet = self.packet_queue.pop()
            packet.injected_cycle = cycle
            self._pending = self.packetizer.segment(packet)
            self.packets_injected += 1
        if self._pending and self.flit_queue.can_push():
            self.flit_queue.push(self._pending.pop(0))
            self.flits_injected += 1


class EjectionPort(Component):
    """Reassembles flits arriving at an endpoint back into packets."""

    def __init__(
        self,
        name: str,
        endpoint: int,
        flit_queue: SimQueue,
        packet_queue: SimQueue,
    ) -> None:
        super().__init__(name)
        self.endpoint = endpoint
        self.flit_queue = flit_queue
        self.packet_queue = packet_queue
        self.reassembler = Reassembler(name)
        self.packets_ejected = 0
        flit_queue.wake_on_push(self)
        packet_queue.wake_on_pop(self)

    def is_idle(self) -> bool:
        return not self.flit_queue

    def tick(self, cycle: int) -> None:
        # One flit per cycle; hold the tail until the packet queue has room
        # so backpressure propagates into the fabric at packet granularity.
        if not self.flit_queue:
            return
        flit = self.flit_queue.peek()
        if flit.is_tail and not self.packet_queue.can_push():
            return
        self.flit_queue.pop()
        packet = self.reassembler.accept(flit)
        if packet is not None:
            self.packet_queue.push(packet)
            self.packets_ejected += 1


class Network:
    """One routing plane: routers, links, injection/ejection ports."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        name: str = "net",
        mode: SwitchingMode = SwitchingMode.WORMHOLE,
        flit_payload_bits: int = 128,
        buffer_capacity: int = 8,
        arbiter: str = "priority",
        packet_format: Optional[PacketFormat] = None,
        routing: str = "table",
        endpoint_queue_capacity: int = 4,
        lock_support: bool = True,
        link_spec: Optional[LinkSpec] = None,
        endpoint_link_spec: Optional[LinkSpec] = None,
        fabric_domain=None,
        endpoint_domains: Optional[Dict[int, object]] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.name = name
        self.mode = mode
        self.flit_payload_bits = flit_payload_bits
        self.buffer_capacity = buffer_capacity
        self.packetizer = Packetizer(flit_payload_bits, packet_format)
        self.link_spec = link_spec if link_spec is not None else LinkSpec()
        self.endpoint_link_spec = (
            endpoint_link_spec if endpoint_link_spec is not None else LinkSpec()
        )
        self.fabric_domain = fabric_domain
        self.endpoint_domains = dict(endpoint_domains or {})
        self.links: List[PhysicalLink] = []
        self._link_feed_queues: List[SimQueue] = []

        if routing == "xy":
            tables = compute_xy_tables(topology)
        elif routing == "table":
            tables = compute_routing_tables(topology)
        else:
            raise ValueError(f"unknown routing scheme {routing!r}")

        self.routers: Dict[Hashable, Router] = {}
        for router_id in topology.routers:
            router = Router(
                name=f"{name}.r{router_id}",
                router_id=router_id,
                table=tables[router_id],
                mode=mode,
                buffer_capacity=buffer_capacity,
                arbiter=make_arbiter(arbiter),
                lock_support=lock_support,
            )
            if fabric_domain is not None:
                router.set_clock_domain(fabric_domain)
            sim.add(router)
            self.routers[router_id] = router

        # Inter-router links: router A's output "to:B" feeds router B's
        # input "in:A" (one link per direction, built per the link spec —
        # a transparent spec degenerates to one shared queue).
        for a, b in sorted(topology.graph.edges, key=str):
            for src, dst in ((a, b), (b, a)):
                feed, delivery = self._build_link(
                    f"{name}.link.{src}->{dst}",
                    self.link_spec,
                    fabric_domain,
                    fabric_domain,
                )
                self.routers[src].add_output(port_to(dst), feed)
                self.routers[dst].add_input(f"in:{src}", delivery)

        # Endpoint attachment: injection + ejection per endpoint.  An
        # endpoint whose region differs from the fabric domain gets the
        # CDC folded into its links automatically.
        self._inject_queues: Dict[int, SimQueue] = {}
        self._eject_queues: Dict[int, SimQueue] = {}
        self.injection_ports: Dict[int, InjectionPort] = {}
        self.ejection_ports: Dict[int, EjectionPort] = {}
        for endpoint in topology.endpoints:
            router = self.routers[topology.router_of(endpoint)]
            ep_domain = self.endpoint_domains.get(endpoint)
            inj_packets = sim.new_queue(
                f"{name}.inj.{endpoint}.pkts", capacity=endpoint_queue_capacity
            )
            inj_feed, inj_delivery = self._build_link(
                f"{name}.inj.{endpoint}.flits",
                self.endpoint_link_spec,
                ep_domain,
                fabric_domain,
            )
            router.add_input(f"inj:{endpoint}", inj_delivery)
            port = InjectionPort(
                f"{name}.inj.{endpoint}",
                endpoint,
                self.packetizer,
                inj_packets,
                inj_feed,
            )
            if ep_domain is not None:
                port.set_clock_domain(ep_domain)
            sim.add(port)
            self._inject_queues[endpoint] = inj_packets
            self.injection_ports[endpoint] = port

            ej_feed, ej_delivery = self._build_link(
                f"{name}.ej.{endpoint}.flits",
                self.endpoint_link_spec,
                fabric_domain,
                ep_domain,
            )
            router.add_output(port_local(endpoint), ej_feed)
            ej_packets = sim.new_queue(
                f"{name}.ej.{endpoint}.pkts", capacity=endpoint_queue_capacity
            )
            eport = EjectionPort(
                f"{name}.ej.{endpoint}", endpoint, ej_delivery, ej_packets
            )
            if ep_domain is not None:
                eport.set_clock_domain(ep_domain)
            sim.add(eport)
            self._eject_queues[endpoint] = ej_packets
            self.ejection_ports[endpoint] = eport

    # ------------------------------------------------------------------ #
    # physical-layer wiring
    # ------------------------------------------------------------------ #
    def _build_link(
        self, qname: str, spec: LinkSpec, producer_domain, consumer_domain
    ) -> Tuple[SimQueue, SimQueue]:
        """Build one directed connection per ``spec``.

        Returns ``(feed, delivery)``: the producer pushes into ``feed``
        and the consumer pops from ``delivery``.  A transparent spec
        (ideal wire, same domain at both ends) returns one shared queue
        under the historical link name — byte-identical wiring to a
        fabric without a physical layer.  Otherwise a
        :class:`PhysicalLink` (serialization, pipeline, CDC when the
        domains differ) is instantiated between two staging queues.
        """
        crosses = domains_cross(producer_domain, consumer_domain)
        if spec.transparent(crosses):
            queue = self.sim.new_queue(qname, capacity=self.buffer_capacity)
            return queue, queue
        capacity = spec.capacity or self.buffer_capacity
        feed = self.sim.new_queue(f"{qname}.tx", capacity=capacity)
        delivery = self.sim.new_queue(qname, capacity=capacity)
        flit_bits = self.packetizer.flit_bits
        link = PhysicalLink(
            f"{qname}.phy",
            feed,
            delivery,
            flit_bits=flit_bits,
            phit_bits=spec.phit_bits or flit_bits,
            pipeline_latency=spec.pipeline_latency,
            producer_domain=producer_domain,
            consumer_domain=consumer_domain,
            sync_stages=spec.sync_stages,
        )
        self.sim.add(link)
        self.links.append(link)
        self._link_feed_queues.append(feed)
        return feed, delivery

    # ------------------------------------------------------------------ #
    # NIU-facing API
    # ------------------------------------------------------------------ #
    def can_inject(self, endpoint: int) -> bool:
        return self._inject_queues[endpoint].can_push()

    def inject(self, endpoint: int, packet: NocPacket) -> None:
        flits = flits_for_packet(
            packet,
            self.flit_payload_bits,
            header_bits=self.packetizer._header_bits,
        )
        if self.mode is not SwitchingMode.WORMHOLE and flits > self.buffer_capacity:
            raise ValueError(
                f"{self.name}: packet of {flits} flits exceeds buffer "
                f"capacity {self.buffer_capacity} under {self.mode} switching"
            )
        self._inject_queues[endpoint].push(packet)

    def ejected(self, endpoint: int) -> SimQueue:
        return self._eject_queues[endpoint]

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def total_flits_forwarded(self) -> int:
        return sum(r.flits_forwarded for r in self.routers.values())

    def total_lock_stall_cycles(self) -> int:
        return sum(r.lock_stall_cycles for r in self.routers.values())

    def idle(self) -> bool:
        """No flit anywhere in this plane (used for drain detection)."""
        for router in self.routers.values():
            for queue in router.inputs.values():
                if queue.occupancy:
                    return False
        for port in self.injection_ports.values():
            if port._pending or port.packet_queue.occupancy:
                return False
        for queue in self._eject_queues.values():
            if queue.occupancy:
                return False
        for eport in self.ejection_ports.values():
            if eport.flit_queue.occupancy or eport.reassembler.mid_packet:
                return False
        # Physical links: flits may be staged on the feed side (a router
        # output that is no longer any router's input) or in flight on
        # the wires / in a synchronizer.
        for queue in self._link_feed_queues:
            if queue.occupancy:
                return False
        for link in self.links:
            if link.in_flight:
                return False
        return True

    def mean_link_utilization(self, cycles: int) -> float:
        if cycles <= 0:
            return 0.0
        busy = sum(
            sum(r.output_busy_cycles.values()) for r in self.routers.values()
        )
        ports = sum(len(r.outputs) for r in self.routers.values())
        return busy / (cycles * ports) if ports else 0.0


class Fabric:
    """Two independent planes: requests and responses.

    This is the object NIUs bind to.  It also exposes the transaction-
    layer packet format in force, because the paper's configuration flow
    derives the format from the attached sockets and hands it to every
    NIU.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        name: str = "noc",
        mode: SwitchingMode = SwitchingMode.WORMHOLE,
        flit_payload_bits: int = 128,
        buffer_capacity: int = 8,
        arbiter: str = "priority",
        packet_format: Optional[PacketFormat] = None,
        routing: str = "table",
        lock_support: bool = True,
        link_spec: Optional[LinkSpec] = None,
        endpoint_link_spec: Optional[LinkSpec] = None,
        fabric_domain=None,
        endpoint_domains: Optional[Dict[int, object]] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.name = name
        self.packet_format = packet_format
        self.fabric_domain = fabric_domain
        self.endpoint_domains = dict(endpoint_domains or {})
        common = dict(
            mode=mode,
            flit_payload_bits=flit_payload_bits,
            buffer_capacity=buffer_capacity,
            arbiter=arbiter,
            packet_format=packet_format,
            routing=routing,
            lock_support=lock_support,
            link_spec=link_spec,
            endpoint_link_spec=endpoint_link_spec,
            fabric_domain=fabric_domain,
            endpoint_domains=endpoint_domains,
        )
        self.request_plane = Network(sim, topology, name=f"{name}.req", **common)
        self.response_plane = Network(sim, topology, name=f"{name}.rsp", **common)

    # request direction (initiator -> target)
    def can_inject_request(self, endpoint: int) -> bool:
        return self.request_plane.can_inject(endpoint)

    def inject_request(self, endpoint: int, packet: NocPacket) -> None:
        self.request_plane.inject(endpoint, packet)

    def requests(self, endpoint: int) -> SimQueue:
        """Request packets delivered to target endpoint ``endpoint``."""
        return self.request_plane.ejected(endpoint)

    # response direction (target -> initiator)
    def can_inject_response(self, endpoint: int) -> bool:
        return self.response_plane.can_inject(endpoint)

    def inject_response(self, endpoint: int, packet: NocPacket) -> None:
        self.response_plane.inject(endpoint, packet)

    def responses(self, endpoint: int) -> SimQueue:
        """Response packets delivered to initiator endpoint ``endpoint``."""
        return self.response_plane.ejected(endpoint)

    def idle(self) -> bool:
        return self.request_plane.idle() and self.response_plane.idle()

    @property
    def physical_links(self) -> List[PhysicalLink]:
        """Every non-transparent link across both planes (introspection)."""
        return self.request_plane.links + self.response_plane.links

    def total_phits_carried(self) -> int:
        return sum(link.phits_carried for link in self.physical_links)

    def total_flits_forwarded(self) -> int:
        return (
            self.request_plane.total_flits_forwarded()
            + self.response_plane.total_flits_forwarded()
        )

    def total_lock_stall_cycles(self) -> int:
        return (
            self.request_plane.total_lock_stall_cycles()
            + self.response_plane.total_lock_stall_cycles()
        )
