"""Network assembly: routers + links + injection/ejection ports.

A :class:`Network` is one routing plane.  A :class:`Fabric` is what NIUs
actually attach to: by default two independent planes — one for
requests, one for responses — the standard construction that removes
request/response protocol deadlock without virtual channels.  With
``vc_separation=True`` the fabric instead builds **one** plane and puts
requests and responses on disjoint virtual-channel classes — half the
links for the same deadlock guarantee, the VC-era construction.

Every connection — inter-router and NIU↔router — is built through a
:class:`~repro.phys.link.LinkSpec`.  The default spec (full width, no
pipeline stages, both ends in the same clock domain) wires the connection
as one raw shared :class:`~repro.sim.queue.SimQueue` per virtual channel,
exactly as a fabric with no physical layer: zero extra components,
cycle-identical.  Anything else (narrow phits, wire pipelining, or a
clock-domain boundary between an endpoint's region and the fabric
domain) instantiates a link component between staging queues: a
:class:`~repro.phys.link.PhysicalLink` for single-VC planes, or a
:class:`~repro.phys.link.VcPhysicalLink` that time-multiplexes all VCs
of the connection over one physical channel with per-VC credit
accounting — per-link timing is part of the fabric, not a bolt-on.

NIU-facing API (all packet granularity; flits and VCs are internal):

- ``fabric.can_inject_request(ep)`` / ``fabric.inject_request(ep, pkt)``
- ``fabric.requests(ep)`` — :class:`SimQueue` of request packets arriving
  at target endpoint ``ep`` (target NIU pops);
- symmetric ``*_response`` / ``responses(ep)`` for the reply direction.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, Hashable, List, Optional, Tuple, Union

from repro.core.packet import NocPacket, PacketFormat, PacketKind
from repro.phys.link import LinkSpec, PhysicalLink, VcPhysicalLink, domains_cross
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.sim.queue import SimQueue
from repro.sim.shard import (
    ShardConfigError,
    ShardLinkRx,
    ShardLinkTx,
    ShardOwnership,
    ShardPlan,
)
from repro.sim.snapshot import Snapshottable
from repro.transport.faults import (
    FaultConfigError,
    FaultInjector,
    FaultSchedule,
    expand_link_spec_windows,
)
from repro.transport.flit import Flit, Packetizer, Reassembler, flits_for_packet
from repro.transport.qos import make_arbiter
from repro.transport.router import Router
from repro.transport.router_core import (
    ROUTER_CORES,
    ArrayCore,
    BatchedPlaneStepper,
)
from repro.transport.routing import (
    EscapeVcPolicy,
    VcPolicy,
    compute_adaptive_tables,
    compute_tables,
    make_vc_policy,
    port_local,
    port_to,
)
from repro.transport.switching import SwitchingMode
from repro.transport.topology import Topology, router_sort_key


class BufferSizingError(ValueError):
    """A buffer/link capacity cannot satisfy the switching mode.

    Raised at build time (a link spec stages fewer flits than the
    switching mode can be asked to forward — the configuration would
    wedge silently mid-run) and at injection (a packet longer than the
    router input buffers admit under store-and-forward / cut-through).
    """


class KindVcPolicy(VcPolicy):
    """Request/response separation on disjoint VC classes.

    Wraps an inner policy: requests ride VCs ``0 .. vcs/2 - 1``,
    responses ``vcs/2 .. vcs - 1``, and the inner policy (dateline,
    priority, …) operates inside each half.  Responses can therefore
    never be blocked behind requests on any buffer, which removes
    request/response protocol deadlock on a *single* plane.
    """

    name = "kind-split"

    def __init__(self, inner: Optional[VcPolicy] = None) -> None:
        self.inner = inner if inner is not None else VcPolicy()
        self.min_vcs = 2 * self.inner.min_vcs

    def injection_vc(self, packet, vcs: int) -> int:
        half = vcs // 2
        base = 0 if packet.kind is PacketKind.REQUEST else half
        return base + self.inner.injection_vc(packet, half)

    def output_vc(self, router, prev_router, next_router, in_vc, vcs):
        half = vcs // 2
        base = half if in_vc >= half else 0
        return base + self.inner.output_vc(
            router, prev_router, next_router, in_vc - base, half
        )


class InjectionPort(Component, Snapshottable):
    """Segments packets from a NIU into flits feeding the local router.

    With several VCs the port keeps one pending flit stream per VC (the
    VC chosen per packet by the plane's :class:`VcPolicy`) and pushes at
    most one flit per cycle, round-robin over the VCs with flits staged
    and feed space — one physical channel, per-VC buffering.  A blocked
    packet parks aside into its VC's pending stream, so the *next*
    packet in the queue still reaches the fabric on its own VC; a
    backlog of several blocked packets queues in arrival order (the
    packet queue itself is a shared FIFO — per-VC injection queues are
    an open item, see ROADMAP).
    """

    def __init__(
        self,
        name: str,
        endpoint: int,
        packetizer: Packetizer,
        packet_queue: SimQueue,
        flit_queues: List[SimQueue],
        vc_policy: Optional[VcPolicy] = None,
    ) -> None:
        super().__init__(name)
        self.endpoint = endpoint
        self.packetizer = packetizer
        self.packet_queue = packet_queue
        self.flit_queues = list(flit_queues)
        self.vcs = len(self.flit_queues)
        self.vc_policy = vc_policy if vc_policy is not None else VcPolicy()
        self._pending: List[List[Flit]] = [[] for _ in range(self.vcs)]
        self._last_vc = self.vcs - 1
        self.packets_injected = 0
        self.flits_injected = 0
        packet_queue.wake_on_push(self)
        for queue in self.flit_queues:
            queue.wake_on_pop(self)

    _snapshot_fields = (
        "_pending",
        "_last_vc",
        "packets_injected",
        "flits_injected",
    )

    @property
    def flit_queue(self) -> SimQueue:
        """The VC-0 feed (compatibility accessor for single-VC planes)."""
        return self.flit_queues[0]

    def pending_flits(self) -> int:
        return sum(len(pending) for pending in self._pending)

    def is_idle(self) -> bool:
        return not self.pending_flits() and not self.packet_queue

    _next_event_known = True

    def next_event_cycle(self, now: int):
        """Dormant only when nothing is pending and no packet can be
        segmented (the packet pushes that end that are wake-registered in
        __init__).  A port holding flits blocked on a full feed must stay
        *hot*: a downstream pop frees feed space in the same cycle it
        happens, and the strict kernel lets a later-ticked port use that
        space immediately — a pop-wake would re-arm us one cycle late."""
        if self.packet_queue._committed:
            return now
        for pending in self._pending:
            if pending:
                return now
        return None

    def tick(self, cycle: int) -> None:
        if self.vcs == 1:
            # Single-VC fast path: no per-VC rotation, and the VC policy
            # (stateless by contract) is consulted only when a packet is
            # actually segmented.
            pending = self._pending[0]
            if not pending and self.packet_queue._committed:
                packet = self.packet_queue.pop()
                packet.injected_cycle = cycle
                pending = self._pending[0] = self.packetizer.segment(
                    packet, vc=0
                )
                self.packets_injected += 1
            if pending and self.flit_queues[0].can_push():
                self.flit_queues[0].push(pending.pop(0))
                self.flits_injected += 1
            return
        if self.packet_queue:
            vc = self.vc_policy.injection_vc(self.packet_queue.peek(), self.vcs)
            if not 0 <= vc < self.vcs:
                raise ValueError(
                    f"{self.name}: VC policy chose injection VC {vc} "
                    f"outside 0..{self.vcs - 1}"
                )
            if not self._pending[vc]:
                packet = self.packet_queue.pop()
                packet.injected_cycle = cycle
                self._pending[vc] = self.packetizer.segment(packet, vc=vc)
                self.packets_injected += 1
        # One flit per cycle onto the feed, round-robin over ready VCs.
        for offset in range(1, self.vcs + 1):
            vc = (self._last_vc + offset) % self.vcs
            if self._pending[vc] and self.flit_queues[vc].can_push():
                self.flit_queues[vc].push(self._pending[vc].pop(0))
                self.flits_injected += 1
                self._last_vc = vc
                break


class EjectionPort(Component, Snapshottable):
    """Reassembles flits arriving at an endpoint back into packets.

    One reassembler per VC (each VC carries whole packets, never
    interleaved), one flit accepted per cycle round-robin over the VCs.
    ``packet_queues`` is either a single queue or, on a plane with
    request/response VC separation, a ``{PacketKind: queue}`` mapping —
    the completed packet is delivered by its kind.

    ``resequence=True`` (adaptive planes) interposes a *reorder buffer*
    between reassembly and delivery: adaptive route choice is per
    packet, so packets between one (source, destination) pair can
    arrive out of order, but the transaction layer — state-table
    response matching, lock managers — is built on the fabric's per-pair
    FIFO contract.  :meth:`Network.inject` stamps every packet with a
    per-(source, destination) sequence number and the ejection port
    releases packets to the endpoint strictly in that order, holding
    later arrivals aside until the gap fills.  Only the tail of the
    *next expected* packet is ever refused (packet-granularity
    backpressure while its delivery queue is full, as on deterministic
    planes); out-of-order arrivals are always absorbed — refusing them
    could starve a gap-filling packet queued behind the refused tail on
    the same ejection VC.  The buffer's occupancy is therefore bounded
    by the traffic in flight towards this endpoint (a parked packet's
    missing predecessor is still in the fabric); ``reorder_high_watermark``
    tracks it.  Deterministic planes skip the machinery entirely
    (identical wiring and timing to the pre-adaptive fabric).
    """

    def __init__(
        self,
        name: str,
        endpoint: int,
        flit_queues: List[SimQueue],
        packet_queues: Union[SimQueue, Dict[PacketKind, SimQueue]],
        resequence: bool = False,
        flow_prefix: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.endpoint = endpoint
        # Per-flow latency recording (soc.flow_stats()): every delivered
        # packet's injection-to-delivery latency goes into registry
        # histograms under "<flow_prefix>.prio<p>" and
        # "<flow_prefix>.pair.<src>-><dst>".  None disables recording.
        self._flow_prefix = flow_prefix
        self.flit_queues = list(flit_queues)
        self.vcs = len(self.flit_queues)
        if isinstance(packet_queues, SimQueue):
            self._packet_queues = {kind: packet_queues for kind in PacketKind}
            self.packet_queue: Optional[SimQueue] = packet_queues
        else:
            self._packet_queues = dict(packet_queues)
            self.packet_queue = None
        self.reassemblers = [
            Reassembler(name if self.vcs == 1 else f"{name}.vc{vc}")
            for vc in range(self.vcs)
        ]
        self._last_vc = self.vcs - 1
        self.packets_ejected = 0
        self.resequence = resequence
        self._rob: Dict[int, Dict[int, NocPacket]] = {}  # src -> seq -> pkt
        self._expected: Dict[int, int] = {}  # src -> next seq to release
        self._rob_count = 0
        self.reorder_high_watermark = 0
        #: Packets that arrived ahead of a same-pair predecessor and had
        #: to wait in the reorder buffer (adaptive planes only).
        self.packets_resequenced = 0
        for queue in self.flit_queues:
            queue.wake_on_push(self)
        for queue in self._packet_queues.values():
            queue.wake_on_pop(self)

    _snapshot_fields = (
        "_last_vc",
        "packets_ejected",
        "_rob",
        "_expected",
        "_rob_count",
        "reorder_high_watermark",
        "packets_resequenced",
    )

    def _snapshot_state(self) -> dict:
        state = super()._snapshot_state()
        # _rob is a dict of dicts; shallow-capture the inner maps too so
        # the checkpoint's shape is fixed at capture time.
        state["_rob"] = {src: dict(m) for src, m in self._rob.items()}
        state["reassemblers"] = [a.snapshot() for a in self.reassemblers]
        return state

    def _restore_state(self, state) -> None:
        super()._restore_state(state)
        for reassembler, envelope in zip(
            self.reassemblers, state["reassemblers"]
        ):
            reassembler.restore(envelope)

    @property
    def reassembler(self) -> Reassembler:
        """VC-0 reassembler (compatibility accessor for single-VC planes)."""
        return self.reassemblers[0]

    @property
    def reorder_occupancy(self) -> int:
        """Packets currently parked in the reorder buffer."""
        return self._rob_count

    def _queue_for(self, vc: int, flit: Flit) -> SimQueue:
        head = self.reassemblers[vc]._current if not flit.is_head else flit
        assert head is not None and head.packet is not None
        return self._packet_queues[head.packet.kind]

    def _record_flow(self, packet: NocPacket) -> None:
        """Injection-to-delivery latency into the per-flow histograms."""
        if self._flow_prefix is None or packet.injected_cycle < 0:
            return
        latency = self._simulator.cycle - packet.injected_cycle
        stats = self._simulator.stats
        stats.histogram(f"{self._flow_prefix}.prio{packet.priority}").add(latency)
        stats.histogram(
            f"{self._flow_prefix}.pair.{packet.route_source}->{self.endpoint}"
        ).add(latency)

    def is_idle(self) -> bool:
        # Anything buffered — a committed flit or a parked reorder-buffer
        # packet — keeps the port hot: a delivery-queue pop can make a
        # held tail (or parked packet) releasable in the same cycle it
        # happens, which a pop-wake would only catch one cycle late.
        return not any(self.flit_queues) and not self._rob_count

    _next_event_known = True

    def next_event_cycle(self, now: int):
        """Dormant only while nothing is buffered: arrivals are
        wake-registered (flit-queue pushes).  A port holding a tail flit
        blocked on its full delivery queue must stay *hot* rather than
        waiting for the delivery pop's wake — the pop frees queue space
        in the same cycle it happens, and the strict kernel lets a
        later-ticked port deliver that same cycle."""
        if self._rob_count:
            return now
        for queue in self.flit_queues:
            if queue._committed:
                return now
        return None

    def tick(self, cycle: int) -> None:
        if self._rob_count:
            self._flush_reorder()
        packet_queue = self.packet_queue
        if self.vcs == 1 and packet_queue is not None and not self.resequence:
            # Single-VC, single delivery queue, no resequencing: the
            # historical ejection port, minus the rotation scaffolding.
            queue = self.flit_queues[0]
            committed = queue._committed
            if not committed:
                return
            flit = committed[0]
            if flit.seq == flit.count - 1 and not packet_queue.can_push():
                return  # hold the tail: packet-granularity backpressure
            queue.pop()
            packet = self.reassemblers[0].accept(flit)
            if packet is not None:
                packet_queue.push(packet)
                self.packets_ejected += 1
                self._record_flow(packet)
            return
        # One flit per cycle; hold a tail until its packet queue has room
        # so backpressure propagates into the fabric at packet granularity
        # — per VC, so a full queue on one VC never stalls the others.
        for offset in range(1, self.vcs + 1):
            vc = (self._last_vc + offset) % self.vcs
            queue = self.flit_queues[vc]
            if not queue:
                continue
            flit = queue.peek()
            if self.resequence:
                if flit.is_tail and self._hold_tail(vc, flit):
                    continue
                queue.pop()
                packet = self.reassemblers[vc].accept(flit)
                if packet is not None:
                    self._stage_packet(packet)
                self._last_vc = vc
                return
            out_queue = self._queue_for(vc, flit)
            if flit.is_tail and not out_queue.can_push():
                continue
            queue.pop()
            packet = self.reassemblers[vc].accept(flit)
            if packet is not None:
                out_queue.push(packet)
                self.packets_ejected += 1
                self._record_flow(packet)
            self._last_vc = vc
            return

    # ------------------------------------------------------------------ #
    # resequencing (adaptive planes)
    # ------------------------------------------------------------------ #
    def _hold_tail(self, vc: int, flit: Flit) -> bool:
        """Should this tail wait in its flit queue another cycle?

        A tail completing the *next expected* packet of its pair is held
        only while its delivery queue is full (packet-granularity
        backpressure, as on deterministic planes).  An out-of-order tail
        is never refused: holding it at the front of its flit queue
        could permanently block a gap-filling packet queued behind it on
        the same ejection VC.
        """
        head = self.reassemblers[vc]._current if not flit.is_head else flit
        assert head is not None and head.packet is not None
        packet = head.packet
        src = packet.route_source
        if packet.fabric_seq == self._expected.get(src, 0):
            return not self._packet_queues[packet.kind].can_push()
        return False

    def _stage_packet(self, packet: NocPacket) -> None:
        src = packet.route_source
        if packet.fabric_seq != self._expected.get(src, 0):
            self.packets_resequenced += 1
        self._rob.setdefault(src, {})[packet.fabric_seq] = packet
        self._rob_count += 1
        if self._rob_count > self.reorder_high_watermark:
            self.reorder_high_watermark = self._rob_count
        self._flush_reorder()

    def _flush_reorder(self) -> None:
        """Release every in-order packet its delivery queue can take."""
        for src in sorted(self._rob):
            pending = self._rob[src]
            expected = self._expected.get(src, 0)
            while True:
                packet = pending.get(expected)
                if packet is None:
                    break
                out_queue = self._packet_queues[packet.kind]
                if not out_queue.can_push():
                    break
                out_queue.push(packet)
                del pending[expected]
                self._rob_count -= 1
                expected += 1
                self.packets_ejected += 1
                self._record_flow(packet)
            self._expected[src] = expected
            if not pending:
                del self._rob[src]


class Network(Snapshottable):
    """One routing plane: routers, links, injection/ejection ports.

    The plane's only runtime state of its own is the per-(src, dst)
    injection sequence stream of adaptive planes; everything else lives
    on the registered components, which the kernel captures by name.
    """

    _snapshot_fields = ("_pair_seq",)

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        name: str = "net",
        mode: SwitchingMode = SwitchingMode.WORMHOLE,
        flit_payload_bits: int = 128,
        buffer_capacity: int = 8,
        arbiter: str = "priority",
        packet_format: Optional[PacketFormat] = None,
        routing: str = "table",
        endpoint_queue_capacity: int = 4,
        lock_support: bool = True,
        link_spec: Optional[LinkSpec] = None,
        endpoint_link_spec: Optional[LinkSpec] = None,
        fabric_domain=None,
        endpoint_domains: Optional[Dict[int, object]] = None,
        vcs: int = 1,
        vc_policy=None,
        split_ejection_by_kind: bool = False,
        stream_fast_path: bool = True,
        faults: Optional[FaultSchedule] = None,
        router_core: str = "object",
        shard_plan: Optional[ShardPlan] = None,
        shard_ownership: Optional[ShardOwnership] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.name = name
        self._shard_plan = shard_plan
        self._shard_ownership = shard_ownership
        #: Boundary halves of cut inter-router links, keyed (src, dst).
        self.boundary_tx: Dict[tuple, ShardLinkTx] = {}
        self.boundary_rx: Dict[tuple, ShardLinkRx] = {}
        self.mode = mode
        self.flit_payload_bits = flit_payload_bits
        self.buffer_capacity = buffer_capacity
        self.packetizer = Packetizer(flit_payload_bits, packet_format)
        self.link_spec = link_spec if link_spec is not None else LinkSpec()
        self.endpoint_link_spec = (
            endpoint_link_spec if endpoint_link_spec is not None else LinkSpec()
        )
        self.fabric_domain = fabric_domain
        self.endpoint_domains = dict(endpoint_domains or {})
        if vcs < 1:
            raise ValueError(f"{name}: vcs must be >= 1, got {vcs}")
        self.vcs = vcs
        self.routing = routing
        if routing == "adaptive" and vc_policy is None:
            vc_policy = "escape"  # the natural default for adaptive fabrics
        self.vc_policy = make_vc_policy(vc_policy)
        if routing == "adaptive" and not isinstance(
            self.vc_policy, EscapeVcPolicy
        ):
            raise ValueError(
                f"{name}: adaptive routing needs the escape VC policy "
                f"(vc_policy='escape' or an EscapeVcPolicy instance) to "
                f"split adaptive/escape VC classes, got "
                f"{self.vc_policy.name!r}"
            )
        if vcs < self.vc_policy.min_vcs:
            raise ValueError(
                f"{name}: VC policy {self.vc_policy.name!r} needs at least "
                f"{self.vc_policy.min_vcs} VCs, got vcs={vcs}"
            )
        self.split_ejection_by_kind = split_ejection_by_kind
        self.links: List[Union[PhysicalLink, VcPhysicalLink]] = []
        self._link_feed_queues: List[SimQueue] = []
        self._validate_buffer_sizing()
        if shard_plan is not None:
            shard_plan.validate(topology)
            if shard_plan.cut_edges(topology) and self.link_spec.transparent(
                False
            ):
                raise ShardConfigError(
                    f"{name}: the shard plan cuts inter-router links but "
                    f"the router link spec is transparent (an ideal wire "
                    f"has zero lookahead, so there is no safe window to "
                    f"parallelize over) — give the inter-router links a "
                    f"LinkSpec with pipeline_latency >= 1 or narrowed "
                    f"phits"
                )

        if routing == "adaptive":
            adaptive_tables = compute_adaptive_tables(topology)
            tables = {r: t.escape for r, t in adaptive_tables.items()}
        else:
            adaptive_tables = None
            tables = compute_tables(topology, routing)
        # Pristine tables, kept so the fault injector can restore them on
        # a full heal (its recomputed tables are BFS-canonical, not DOR).
        self._adaptive_tables = adaptive_tables

        # Fault schedule: the explicit SocBuilder/Fabric schedule merged
        # with per-link down-windows declared on the inter-router link
        # spec, validated here (named FaultConfigError subclasses).  The
        # injector is registered *before* the routers so a fault epoch is
        # visible to every router tick of its cycle, under both kernels.
        if getattr(self.endpoint_link_spec, "fault_windows", ()):
            raise FaultConfigError(
                f"{name}: endpoint (NIU) links are not faultable — move "
                f"fault_windows onto the inter-router link_spec, or fault "
                f"the endpoint's local: ejection port in a FaultSchedule"
            )
        window_events = expand_link_spec_windows(topology, self.link_spec)
        schedule = faults if faults is not None else FaultSchedule()
        if window_events:
            # A link-spec window downs the whole link class at once — a
            # transient full-plane brownout that the static connectivity
            # check would reject, even though every window heals by
            # construction (LinkSpec validates down < up) and the runtime
            # watchdog defers its deadline past the last pending up-event.
            # So: the explicit schedule keeps its own strictness, the
            # merged one waives only the build-time partition check.
            if schedule:
                schedule.validate(topology)
            schedule = schedule.extended(window_events)
            schedule.allow_partition = True
        self.fault_injector: Optional[FaultInjector] = None
        self._edge_links: Dict[tuple, Optional[Union[PhysicalLink, VcPhysicalLink]]] = {}
        self._edge_feeds: Dict[tuple, List[SimQueue]] = {}
        if shard_plan is not None and schedule:
            raise ShardConfigError(
                f"{name}: fault injection is out of scope for sharded "
                f"fabrics (v1) — a fault epoch is a global event that "
                f"the per-shard safe window cannot order; drop the fault "
                f"schedule (and any LinkSpec.fault_windows) or the "
                f"shards"
            )
        if schedule:
            schedule.validate(topology)
            self.fault_injector = FaultInjector(f"{name}.faults", self, schedule)
            sim.add(self.fault_injector)
        # Adaptive route choice is per packet, so one (source, dest)
        # pair's packets can arrive out of order; the transaction layer
        # is built on per-pair FIFO delivery, so adaptive planes stamp a
        # per-pair sequence number at injection and resequence at
        # ejection (see EjectionPort).  Deterministic planes skip both.
        self._sequenced = routing == "adaptive"
        self._pair_seq: Dict[Tuple[int, int], int] = {}

        # Router hot-core executor (see transport.router_core).  The
        # batched stepper is registered immediately *before* the router
        # block so its tick slot is exactly where the routers' would
        # have been — execution order relative to the fault injector,
        # links and endpoint ports is unchanged.
        if router_core not in ROUTER_CORES:
            raise ValueError(
                f"{name}: router_core must be one of {ROUTER_CORES}, "
                f"got {router_core!r}"
            )
        self.router_core = router_core
        self.router_stepper: Optional[BatchedPlaneStepper] = None
        if router_core == "batched":
            stepper = BatchedPlaneStepper(f"{name}.rcore")
            if fabric_domain is not None:
                stepper.set_clock_domain(fabric_domain)
            # The stepper executes every shard's routers, so in a sharded
            # build it is *shared*: each worker keeps it live and the
            # foreign routers' cores simply never activate (no flits ever
            # reach them).
            with self._shared_scope():
                sim.add(stepper)
            self.router_stepper = stepper

        self.routers: Dict[Hashable, Router] = {}
        for router_id in topology.routers:
            router = Router(
                name=f"{name}.r{router_id}",
                router_id=router_id,
                table=tables[router_id],
                mode=mode,
                buffer_capacity=buffer_capacity,
                arbiter=make_arbiter(arbiter),
                lock_support=lock_support,
                vcs=vcs,
                vc_policy=self.vc_policy,
                adaptive_table=(
                    adaptive_tables[router_id]
                    if adaptive_tables is not None
                    else None
                ),
                stream_fast_path=stream_fast_path,
            )
            if fabric_domain is not None:
                router.set_clock_domain(fabric_domain)
            with self._own(router_id):
                sim.add(router)
            self.routers[router_id] = router

        # Inter-router links: router A's output "to:B" feeds router B's
        # input "in:A" (one link per direction, built per the link spec —
        # a transparent spec degenerates to one shared queue per VC).
        for a, b in sorted(topology.graph.edges, key=_edge_sort_key):
            for src, dst in ((a, b), (b, a)):
                if shard_plan is not None and shard_plan.shard_of(
                    src
                ) != shard_plan.shard_of(dst):
                    # Cut edge: the link becomes a boundary tx/rx pair,
                    # feed queues on the source shard, delivery queues on
                    # the destination shard (see repro.sim.shard).
                    feeds, deliveries = self._build_boundary(
                        f"{name}.link.{src}->{dst}", src, dst
                    )
                    self._edge_links[(src, dst)] = None
                    self._edge_feeds[(src, dst)] = feeds
                else:
                    links_before = len(self.links)
                    with self._own(src):
                        feeds, deliveries = self._build_link(
                            f"{name}.link.{src}->{dst}",
                            self.link_spec,
                            fabric_domain,
                            fabric_domain,
                        )
                    if len(self.links) > links_before:
                        # Real link: the injector counts its staged/
                        # in-flight phits when a fault cuts this edge
                        # (they drain).
                        self._edge_links[(src, dst)] = self.links[-1]
                        self._edge_feeds[(src, dst)] = feeds
                    else:
                        # Transparent wire: the "link" is the downstream
                        # input buffer itself, nothing is ever in flight.
                        self._edge_links[(src, dst)] = None
                        self._edge_feeds[(src, dst)] = []
                for vc in range(self.vcs):
                    self.routers[src].add_output(
                        port_to(dst), feeds[vc], vc=vc, neighbor=dst
                    )
                    self.routers[dst].add_input(
                        f"in:{src}", deliveries[vc], vc=vc, neighbor=src
                    )

        # Endpoint attachment: injection + ejection per endpoint.  An
        # endpoint whose region differs from the fabric domain gets the
        # CDC folded into its links automatically.
        self._inject_queues: Dict[int, SimQueue] = {}
        self._eject_queues: Dict[int, Union[SimQueue, Dict[PacketKind, SimQueue]]] = {}
        self.injection_ports: Dict[int, InjectionPort] = {}
        self.ejection_ports: Dict[int, EjectionPort] = {}
        for endpoint in topology.endpoints:
            with self._own(topology.router_of(endpoint)):
                self._attach_endpoint(endpoint, endpoint_queue_capacity)

        # Dense cores are frozen only now: every input/output of every
        # router is wired, so the (port, vc) -> dense id maps are final.
        if router_core != "object":
            for router in self.routers.values():
                core = ArrayCore(router)
                if self.router_stepper is not None:
                    self.router_stepper.adopt(core)
                else:
                    core.attach()
            if self.router_stepper is not None:
                self.router_stepper.freeze()

    def _attach_endpoint(
        self, endpoint: int, endpoint_queue_capacity: int
    ) -> None:
        """Injection + ejection for one endpoint (everything this
        registers is owned by the endpoint's router's shard)."""
        sim = self.sim
        name = self.name
        fabric_domain = self.fabric_domain
        split_ejection_by_kind = self.split_ejection_by_kind
        router = self.routers[self.topology.router_of(endpoint)]
        ep_domain = self.endpoint_domains.get(endpoint)
        inj_packets = sim.new_queue(
            f"{name}.inj.{endpoint}.pkts", capacity=endpoint_queue_capacity
        )
        inj_feeds, inj_deliveries = self._build_link(
            f"{name}.inj.{endpoint}.flits",
            self.endpoint_link_spec,
            ep_domain,
            fabric_domain,
        )
        for vc in range(self.vcs):
            router.add_input(
                f"inj:{endpoint}", inj_deliveries[vc], vc=vc, order=endpoint
            )
        port = InjectionPort(
            f"{name}.inj.{endpoint}",
            endpoint,
            self.packetizer,
            inj_packets,
            inj_feeds,
            vc_policy=self.vc_policy,
        )
        if ep_domain is not None:
            port.set_clock_domain(ep_domain)
        sim.add(port)
        self._inject_queues[endpoint] = inj_packets
        self.injection_ports[endpoint] = port

        ej_feeds, ej_deliveries = self._build_link(
            f"{name}.ej.{endpoint}.flits",
            self.endpoint_link_spec,
            fabric_domain,
            ep_domain,
        )
        for vc in range(self.vcs):
            router.add_output(
                port_local(endpoint), ej_feeds[vc], vc=vc, order=endpoint
            )
        ej_packets: Union[SimQueue, Dict[PacketKind, SimQueue]]
        if split_ejection_by_kind:
            ej_packets = {
                PacketKind.REQUEST: sim.new_queue(
                    f"{name}.ej.{endpoint}.pkts.req",
                    capacity=endpoint_queue_capacity,
                ),
                PacketKind.RESPONSE: sim.new_queue(
                    f"{name}.ej.{endpoint}.pkts.rsp",
                    capacity=endpoint_queue_capacity,
                ),
            }
        else:
            ej_packets = sim.new_queue(
                f"{name}.ej.{endpoint}.pkts", capacity=endpoint_queue_capacity
            )
        eport = EjectionPort(
            f"{name}.ej.{endpoint}",
            endpoint,
            ej_deliveries,
            ej_packets,
            resequence=self._sequenced,
            flow_prefix=f"{name}.flow",
        )
        if ep_domain is not None:
            eport.set_clock_domain(ep_domain)
        sim.add(eport)
        self._eject_queues[endpoint] = ej_packets
        self.ejection_ports[endpoint] = eport

    # ------------------------------------------------------------------ #
    # shard boundary wiring
    # ------------------------------------------------------------------ #
    def _own(self, router_id: Hashable):
        """Ownership scope for state belonging to ``router_id``'s shard
        (a no-op context on unsharded builds)."""
        if self._shard_ownership is None or self._shard_plan is None:
            return nullcontext()
        return self._shard_ownership.owned_by(
            self._shard_plan.shard_of(router_id)
        )

    def _shared_scope(self):
        if self._shard_ownership is None:
            return nullcontext()
        return self._shard_ownership.shared()

    def _build_boundary(
        self, qname: str, src: Hashable, dst: Hashable
    ) -> Tuple[List[SimQueue], List[SimQueue]]:
        """Build a cut inter-router link as a ShardLinkTx/Rx pair.

        Queue names match :meth:`_build_link`'s non-transparent layout
        (feeds ``<qname>[.vcN].tx``, deliveries ``<qname>[.vcN]``); the
        tx half and the feeds belong to the source shard, the rx half
        and the deliveries to the destination shard.  The rx is
        registered here — after the plane's routers — so it observes
        destination-router pops in the cycle they happen.
        """
        spec = self.link_spec
        plan = self._shard_plan
        vcs = self.vcs
        names = [qname if vc == 0 else f"{qname}.vc{vc}" for vc in range(vcs)]
        capacity = spec.capacity or self.buffer_capacity
        flit_bits = self.packetizer.flit_bits
        credit_return = (
            plan.credit_return_latency
            if plan.credit_return_latency is not None
            else 1 + spec.pipeline_latency
        )
        with self._own(src):
            feeds = [
                self.sim.new_queue(f"{n}.tx", capacity=capacity)
                for n in names
            ]
            tx = ShardLinkTx(
                f"{qname}.phy.tx",
                feeds,
                [capacity] * vcs,
                flit_bits=flit_bits,
                phit_bits=spec.phit_bits or flit_bits,
                pipeline_latency=spec.pipeline_latency,
                credit_return_latency=credit_return,
            )
            if self.fabric_domain is not None:
                tx.set_clock_domain(self.fabric_domain)
            self.sim.add(tx)
        with self._own(dst):
            deliveries = [
                self.sim.new_queue(n, capacity=capacity) for n in names
            ]
            rx = ShardLinkRx(f"{qname}.phy.rx", deliveries)
            if self.fabric_domain is not None:
                rx.set_clock_domain(self.fabric_domain)
            self.sim.add(rx)
        tx.bind_peer(rx)
        rx.bind_peer(tx)
        self._link_feed_queues.extend(feeds)
        self.boundary_tx[(src, dst)] = tx
        self.boundary_rx[(src, dst)] = rx
        return feeds, deliveries

    # ------------------------------------------------------------------ #
    # build-time validation
    # ------------------------------------------------------------------ #
    def _validate_buffer_sizing(self) -> None:
        """Reject configurations that would wedge silently mid-run.

        :meth:`inject` admits packets of up to ``buffer_capacity`` flits
        under store-and-forward / cut-through (the router input buffer
        depth), so every flit queue on the datapath — including the
        staging buffers of non-transparent links — must hold at least
        :meth:`SwitchingMode.min_buffer_for` of that many flits, or a
        legally injected packet's head can wait forever for downstream
        space that cannot exist.
        """
        if self.mode is SwitchingMode.WORMHOLE:
            return
        minimum = self.mode.min_buffer_for(self.buffer_capacity)
        # A spec with no serialization/pipelining is still wired as a
        # real (capacity-limited) link when the connection crosses clock
        # domains, so judge transparency the way _build_link will.
        endpoint_crossing = any(
            domains_cross(self.endpoint_domains.get(ep), self.fabric_domain)
            for ep in self.topology.endpoints
        )
        for cls, spec, crosses in (
            ("router", self.link_spec, False),
            ("endpoint", self.endpoint_link_spec, endpoint_crossing),
        ):
            capacity = (
                self.buffer_capacity
                if spec.transparent(crosses)
                else (spec.capacity or self.buffer_capacity)
            )
            if capacity < minimum:
                raise BufferSizingError(
                    f"{self.name}: {cls} links stage only {capacity} flits "
                    f"but {self.mode} switching admits packets up to "
                    f"{self.buffer_capacity} flits (router input buffer "
                    f"depth), which need min_buffer_for = {minimum}; a "
                    f"long packet would wedge at every router of "
                    f"{self.topology.name!r} — raise LinkSpec.capacity to "
                    f">= {minimum} or lower buffer_capacity"
                )

    # ------------------------------------------------------------------ #
    # physical-layer wiring
    # ------------------------------------------------------------------ #
    def _build_link(
        self, qname: str, spec: LinkSpec, producer_domain, consumer_domain
    ) -> Tuple[List[SimQueue], List[SimQueue]]:
        """Build one directed connection per ``spec``.

        Returns ``(feeds, deliveries)``, one queue per VC: the producer
        pushes into ``feeds[vc]`` and the consumer pops from
        ``deliveries[vc]``.  A transparent spec (ideal wire, same domain
        at both ends) returns shared queues under the historical link
        name (suffixed ``.vc<N>`` beyond VC 0) — byte-identical wiring
        to a fabric without a physical layer.  Otherwise a link
        component (serialization, pipeline, CDC when the domains differ)
        is instantiated between per-VC staging queues: a
        :class:`PhysicalLink` when the plane has one VC, a
        :class:`VcPhysicalLink` time-multiplexing all VCs over one
        physical channel with per-VC credit accounting otherwise.
        """
        vcs = self.vcs
        names = [qname if vc == 0 else f"{qname}.vc{vc}" for vc in range(vcs)]
        crosses = domains_cross(producer_domain, consumer_domain)
        if spec.transparent(crosses):
            queues = [
                self.sim.new_queue(n, capacity=self.buffer_capacity)
                for n in names
            ]
            return queues, queues
        capacity = spec.capacity or self.buffer_capacity
        feeds = [self.sim.new_queue(f"{n}.tx", capacity=capacity) for n in names]
        deliveries = [self.sim.new_queue(n, capacity=capacity) for n in names]
        flit_bits = self.packetizer.flit_bits
        if vcs == 1:
            link: Union[PhysicalLink, VcPhysicalLink] = PhysicalLink(
                f"{qname}.phy",
                feeds[0],
                deliveries[0],
                flit_bits=flit_bits,
                phit_bits=spec.phit_bits or flit_bits,
                pipeline_latency=spec.pipeline_latency,
                producer_domain=producer_domain,
                consumer_domain=consumer_domain,
                sync_stages=spec.sync_stages,
            )
        else:
            link = VcPhysicalLink(
                f"{qname}.phy",
                feeds,
                deliveries,
                flit_bits=flit_bits,
                phit_bits=spec.phit_bits or flit_bits,
                pipeline_latency=spec.pipeline_latency,
                producer_domain=producer_domain,
                consumer_domain=consumer_domain,
                sync_stages=spec.sync_stages,
            )
        self.sim.add(link)
        self.links.append(link)
        self._link_feed_queues.extend(feeds)
        return feeds, deliveries

    # ------------------------------------------------------------------ #
    # NIU-facing API
    # ------------------------------------------------------------------ #
    def can_inject(self, endpoint: int) -> bool:
        return self._inject_queues[endpoint].can_push()

    def inject(self, endpoint: int, packet: NocPacket) -> None:
        flits = flits_for_packet(
            packet,
            self.flit_payload_bits,
            header_bits=self.packetizer._header_bits,
        )
        if self.mode is not SwitchingMode.WORMHOLE and flits > self.buffer_capacity:
            raise BufferSizingError(
                f"{self.name}: packet of {flits} flits needs buffers of "
                f"min_buffer_for = {self.mode.min_buffer_for(flits)} flits "
                f"under {self.mode} switching, but router "
                f"{self.topology.router_of(endpoint)!r} (and every other) "
                f"has buffer_capacity {self.buffer_capacity}"
            )
        if self._sequenced:
            pair = (endpoint, packet.route_destination)
            packet.fabric_seq = self._pair_seq.get(pair, 0)
            self._pair_seq[pair] = packet.fabric_seq + 1
        self._inject_queues[endpoint].push(packet)

    def ejected(
        self, endpoint: int, kind: Optional[PacketKind] = None
    ) -> SimQueue:
        queues = self._eject_queues[endpoint]
        if isinstance(queues, SimQueue):
            return queues
        if kind is None:
            raise ValueError(
                f"{self.name}: plane separates ejection by packet kind; "
                f"pass kind= to ejected()"
            )
        return queues[kind]

    def _eject_queue_list(self, endpoint: int) -> List[SimQueue]:
        queues = self._eject_queues[endpoint]
        if isinstance(queues, SimQueue):
            return [queues]
        return list(queues.values())

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def total_flits_forwarded(self) -> int:
        return sum(r.flits_forwarded for r in self.routers.values())

    def total_lock_stall_cycles(self) -> int:
        return sum(r.lock_stall_cycles for r in self.routers.values())

    def idle(self) -> bool:
        """No flit anywhere in this plane (used for drain detection)."""
        for router in self.routers.values():
            for queue in router.inputs.values():
                if queue.occupancy:
                    return False
        for port in self.injection_ports.values():
            if port.pending_flits() or port.packet_queue.occupancy:
                return False
        for endpoint in self._eject_queues:
            for queue in self._eject_queue_list(endpoint):
                if queue.occupancy:
                    return False
        for eport in self.ejection_ports.values():
            for queue in eport.flit_queues:
                if queue.occupancy:
                    return False
            for reassembler in eport.reassemblers:
                if reassembler.mid_packet:
                    return False
            if eport.reorder_occupancy:
                return False
        # Physical links: flits may be staged on the feed side (a router
        # output that is no longer any router's input) or in flight on
        # the wires / in a synchronizer.
        for queue in self._link_feed_queues:
            if queue.occupancy:
                return False
        for link in self.links:
            if link.in_flight:
                return False
        # Boundary halves of cut links: a flit mid-serialization or an
        # envelope waiting in an inbox/outbox is still in flight.
        for tx in self.boundary_tx.values():
            if not tx.idle():
                return False
        for rx in self.boundary_rx.values():
            if not rx.idle():
                return False
        return True

    def mean_link_utilization(self, cycles: int) -> float:
        if cycles <= 0:
            return 0.0
        busy = sum(
            sum(r.output_busy_cycles.values()) for r in self.routers.values()
        )
        ports = sum(len(r.output_busy_cycles) for r in self.routers.values())
        return busy / (cycles * ports) if ports else 0.0


def _edge_sort_key(edge) -> tuple:
    return (router_sort_key(edge[0]), router_sort_key(edge[1]))


class Fabric:
    """Request/response planes, dual-network or VC-separated.

    This is the object NIUs bind to.  It also exposes the transaction-
    layer packet format in force, because the paper's configuration flow
    derives the format from the attached sockets and hands it to every
    NIU.

    ``vcs``/``vc_policy`` configure virtual channels per plane.  With
    ``vc_separation=True`` a single plane carries both directions on
    disjoint VC classes (``vcs`` must be even; the inner policy operates
    within each half) — the NIU-facing API is unchanged.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        name: str = "noc",
        mode: SwitchingMode = SwitchingMode.WORMHOLE,
        flit_payload_bits: int = 128,
        buffer_capacity: int = 8,
        arbiter: str = "priority",
        packet_format: Optional[PacketFormat] = None,
        routing: str = "table",
        lock_support: bool = True,
        link_spec: Optional[LinkSpec] = None,
        endpoint_link_spec: Optional[LinkSpec] = None,
        fabric_domain=None,
        endpoint_domains: Optional[Dict[int, object]] = None,
        vcs: int = 1,
        vc_policy=None,
        vc_separation: bool = False,
        stream_fast_path: bool = True,
        faults: Optional[FaultSchedule] = None,
        router_core: str = "object",
        shard_plan: Optional[ShardPlan] = None,
        shard_ownership: Optional[ShardOwnership] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.name = name
        self.shard_plan = shard_plan
        self.packet_format = packet_format
        self.fabric_domain = fabric_domain
        self.endpoint_domains = dict(endpoint_domains or {})
        self.vcs = vcs
        self.vc_separation = vc_separation
        if routing == "adaptive":
            if vc_separation:
                raise ValueError(
                    f"{name}: adaptive routing is not supported with "
                    f"vc_separation (the kind-split wrapper cannot carve "
                    f"adaptive/escape classes out of each half); use the "
                    f"default dual-plane fabric"
                )
            if vc_policy is None:
                vc_policy = "escape"
        policy = make_vc_policy(vc_policy)
        common = dict(
            mode=mode,
            flit_payload_bits=flit_payload_bits,
            buffer_capacity=buffer_capacity,
            arbiter=arbiter,
            packet_format=packet_format,
            routing=routing,
            lock_support=lock_support,
            link_spec=link_spec,
            endpoint_link_spec=endpoint_link_spec,
            fabric_domain=fabric_domain,
            endpoint_domains=endpoint_domains,
            vcs=vcs,
            stream_fast_path=stream_fast_path,
            faults=faults,
            router_core=router_core,
            shard_plan=shard_plan,
            shard_ownership=shard_ownership,
        )
        if vc_separation:
            if vcs < 2 or vcs % 2:
                raise ValueError(
                    f"{name}: vc_separation needs an even vcs >= 2 "
                    f"(half per direction), got vcs={vcs}"
                )
            shared = Network(
                sim,
                topology,
                name=f"{name}.shr",
                vc_policy=KindVcPolicy(policy),
                split_ejection_by_kind=True,
                **common,
            )
            self.request_plane = shared
            self.response_plane = shared
            self._planes = [shared]
        else:
            self.request_plane = Network(
                sim, topology, name=f"{name}.req", vc_policy=policy, **common
            )
            self.response_plane = Network(
                sim, topology, name=f"{name}.rsp", vc_policy=policy, **common
            )
            self._planes = [self.request_plane, self.response_plane]

    # request direction (initiator -> target)
    def can_inject_request(self, endpoint: int) -> bool:
        return self.request_plane.can_inject(endpoint)

    def inject_request(self, endpoint: int, packet: NocPacket) -> None:
        self.request_plane.inject(endpoint, packet)

    def requests(self, endpoint: int) -> SimQueue:
        """Request packets delivered to target endpoint ``endpoint``."""
        if self.vc_separation:
            return self.request_plane.ejected(endpoint, PacketKind.REQUEST)
        return self.request_plane.ejected(endpoint)

    # response direction (target -> initiator)
    def can_inject_response(self, endpoint: int) -> bool:
        return self.response_plane.can_inject(endpoint)

    def inject_response(self, endpoint: int, packet: NocPacket) -> None:
        self.response_plane.inject(endpoint, packet)

    def responses(self, endpoint: int) -> SimQueue:
        """Response packets delivered to initiator endpoint ``endpoint``."""
        if self.vc_separation:
            return self.response_plane.ejected(endpoint, PacketKind.RESPONSE)
        return self.response_plane.ejected(endpoint)

    def idle(self) -> bool:
        return all(plane.idle() for plane in self._planes)

    @property
    def physical_links(self) -> List[Union[PhysicalLink, VcPhysicalLink]]:
        """Every non-transparent link across all planes (introspection)."""
        links: List[Union[PhysicalLink, VcPhysicalLink]] = []
        for plane in self._planes:
            links.extend(plane.links)
        return links

    def total_phits_carried(self) -> int:
        return sum(link.phits_carried for link in self.physical_links)

    def total_flits_forwarded(self) -> int:
        return sum(plane.total_flits_forwarded() for plane in self._planes)

    def total_lock_stall_cycles(self) -> int:
        return sum(plane.total_lock_stall_cycles() for plane in self._planes)
