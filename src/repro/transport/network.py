"""Network assembly: routers + links + injection/ejection ports.

A :class:`Network` is one routing plane.  A :class:`Fabric` is what NIUs
actually attach to: two independent planes — one for requests, one for
responses — the standard construction that removes request/response
protocol deadlock without virtual channels.

NIU-facing API (all packet granularity; flits are internal):

- ``fabric.can_inject_request(ep)`` / ``fabric.inject_request(ep, pkt)``
- ``fabric.requests(ep)`` — :class:`SimQueue` of request packets arriving
  at target endpoint ``ep`` (target NIU pops);
- symmetric ``*_response`` / ``responses(ep)`` for the reply direction.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.core.packet import NocPacket, PacketFormat
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.sim.queue import SimQueue
from repro.transport.flit import Flit, Packetizer, Reassembler, flits_for_packet
from repro.transport.qos import Arbiter, make_arbiter
from repro.transport.router import Router
from repro.transport.routing import (
    compute_routing_tables,
    compute_xy_tables,
    port_local,
    port_to,
)
from repro.transport.switching import SwitchingMode
from repro.transport.topology import Topology


class InjectionPort(Component):
    """Segments packets from a NIU into flits feeding the local router."""

    def __init__(
        self,
        name: str,
        endpoint: int,
        packetizer: Packetizer,
        packet_queue: SimQueue,
        flit_queue: SimQueue,
    ) -> None:
        super().__init__(name)
        self.endpoint = endpoint
        self.packetizer = packetizer
        self.packet_queue = packet_queue
        self.flit_queue = flit_queue
        self._pending: List[Flit] = []
        self.packets_injected = 0
        self.flits_injected = 0
        packet_queue.wake_on_push(self)
        flit_queue.wake_on_pop(self)

    def is_idle(self) -> bool:
        return not self._pending and not self.packet_queue

    def tick(self, cycle: int) -> None:
        if not self._pending and self.packet_queue:
            packet = self.packet_queue.pop()
            packet.injected_cycle = cycle
            self._pending = self.packetizer.segment(packet)
            self.packets_injected += 1
        if self._pending and self.flit_queue.can_push():
            self.flit_queue.push(self._pending.pop(0))
            self.flits_injected += 1


class EjectionPort(Component):
    """Reassembles flits arriving at an endpoint back into packets."""

    def __init__(
        self,
        name: str,
        endpoint: int,
        flit_queue: SimQueue,
        packet_queue: SimQueue,
    ) -> None:
        super().__init__(name)
        self.endpoint = endpoint
        self.flit_queue = flit_queue
        self.packet_queue = packet_queue
        self.reassembler = Reassembler(name)
        self.packets_ejected = 0
        flit_queue.wake_on_push(self)
        packet_queue.wake_on_pop(self)

    def is_idle(self) -> bool:
        return not self.flit_queue

    def tick(self, cycle: int) -> None:
        # One flit per cycle; hold the tail until the packet queue has room
        # so backpressure propagates into the fabric at packet granularity.
        if not self.flit_queue:
            return
        flit = self.flit_queue.peek()
        if flit.is_tail and not self.packet_queue.can_push():
            return
        self.flit_queue.pop()
        packet = self.reassembler.accept(flit)
        if packet is not None:
            self.packet_queue.push(packet)
            self.packets_ejected += 1


class Network:
    """One routing plane: routers, links, injection/ejection ports."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        name: str = "net",
        mode: SwitchingMode = SwitchingMode.WORMHOLE,
        flit_payload_bits: int = 128,
        buffer_capacity: int = 8,
        arbiter: str = "priority",
        packet_format: Optional[PacketFormat] = None,
        routing: str = "table",
        endpoint_queue_capacity: int = 4,
        lock_support: bool = True,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.name = name
        self.mode = mode
        self.flit_payload_bits = flit_payload_bits
        self.buffer_capacity = buffer_capacity
        self.packetizer = Packetizer(flit_payload_bits, packet_format)

        if routing == "xy":
            tables = compute_xy_tables(topology)
        elif routing == "table":
            tables = compute_routing_tables(topology)
        else:
            raise ValueError(f"unknown routing scheme {routing!r}")

        self.routers: Dict[Hashable, Router] = {}
        for router_id in topology.routers:
            router = Router(
                name=f"{name}.r{router_id}",
                router_id=router_id,
                table=tables[router_id],
                mode=mode,
                buffer_capacity=buffer_capacity,
                arbiter=make_arbiter(arbiter),
                lock_support=lock_support,
            )
            sim.add(router)
            self.routers[router_id] = router

        # Inter-router links: router A's output "to:B" feeds router B's
        # input "in:A" (one queue per direction).
        for a, b in sorted(topology.graph.edges, key=str):
            for src, dst in ((a, b), (b, a)):
                queue = sim.new_queue(
                    f"{name}.link.{src}->{dst}", capacity=buffer_capacity
                )
                self.routers[src].add_output(port_to(dst), queue)
                self.routers[dst].add_input(f"in:{src}", queue)

        # Endpoint attachment: injection + ejection per endpoint.
        self._inject_queues: Dict[int, SimQueue] = {}
        self._eject_queues: Dict[int, SimQueue] = {}
        self.injection_ports: Dict[int, InjectionPort] = {}
        self.ejection_ports: Dict[int, EjectionPort] = {}
        for endpoint in topology.endpoints:
            router = self.routers[topology.router_of(endpoint)]
            inj_packets = sim.new_queue(
                f"{name}.inj.{endpoint}.pkts", capacity=endpoint_queue_capacity
            )
            inj_flits = sim.new_queue(
                f"{name}.inj.{endpoint}.flits", capacity=buffer_capacity
            )
            router.add_input(f"inj:{endpoint}", inj_flits)
            port = InjectionPort(
                f"{name}.inj.{endpoint}",
                endpoint,
                self.packetizer,
                inj_packets,
                inj_flits,
            )
            sim.add(port)
            self._inject_queues[endpoint] = inj_packets
            self.injection_ports[endpoint] = port

            ej_flits = sim.new_queue(
                f"{name}.ej.{endpoint}.flits", capacity=buffer_capacity
            )
            router.add_output(port_local(endpoint), ej_flits)
            ej_packets = sim.new_queue(
                f"{name}.ej.{endpoint}.pkts", capacity=endpoint_queue_capacity
            )
            eport = EjectionPort(
                f"{name}.ej.{endpoint}", endpoint, ej_flits, ej_packets
            )
            sim.add(eport)
            self._eject_queues[endpoint] = ej_packets
            self.ejection_ports[endpoint] = eport

    # ------------------------------------------------------------------ #
    # NIU-facing API
    # ------------------------------------------------------------------ #
    def can_inject(self, endpoint: int) -> bool:
        return self._inject_queues[endpoint].can_push()

    def inject(self, endpoint: int, packet: NocPacket) -> None:
        flits = flits_for_packet(
            packet,
            self.flit_payload_bits,
            header_bits=self.packetizer._header_bits,
        )
        if self.mode is not SwitchingMode.WORMHOLE and flits > self.buffer_capacity:
            raise ValueError(
                f"{self.name}: packet of {flits} flits exceeds buffer "
                f"capacity {self.buffer_capacity} under {self.mode} switching"
            )
        self._inject_queues[endpoint].push(packet)

    def ejected(self, endpoint: int) -> SimQueue:
        return self._eject_queues[endpoint]

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def total_flits_forwarded(self) -> int:
        return sum(r.flits_forwarded for r in self.routers.values())

    def total_lock_stall_cycles(self) -> int:
        return sum(r.lock_stall_cycles for r in self.routers.values())

    def idle(self) -> bool:
        """No flit anywhere in this plane (used for drain detection)."""
        for router in self.routers.values():
            for queue in router.inputs.values():
                if queue.occupancy:
                    return False
        for port in self.injection_ports.values():
            if port._pending or port.packet_queue.occupancy:
                return False
        for queue in self._eject_queues.values():
            if queue.occupancy:
                return False
        for eport in self.ejection_ports.values():
            if eport.flit_queue.occupancy or eport.reassembler.mid_packet:
                return False
        return True

    def mean_link_utilization(self, cycles: int) -> float:
        if cycles <= 0:
            return 0.0
        busy = sum(
            sum(r.output_busy_cycles.values()) for r in self.routers.values()
        )
        ports = sum(len(r.outputs) for r in self.routers.values())
        return busy / (cycles * ports) if ports else 0.0


class Fabric:
    """Two independent planes: requests and responses.

    This is the object NIUs bind to.  It also exposes the transaction-
    layer packet format in force, because the paper's configuration flow
    derives the format from the attached sockets and hands it to every
    NIU.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        name: str = "noc",
        mode: SwitchingMode = SwitchingMode.WORMHOLE,
        flit_payload_bits: int = 128,
        buffer_capacity: int = 8,
        arbiter: str = "priority",
        packet_format: Optional[PacketFormat] = None,
        routing: str = "table",
        lock_support: bool = True,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.name = name
        self.packet_format = packet_format
        common = dict(
            mode=mode,
            flit_payload_bits=flit_payload_bits,
            buffer_capacity=buffer_capacity,
            arbiter=arbiter,
            packet_format=packet_format,
            routing=routing,
            lock_support=lock_support,
        )
        self.request_plane = Network(sim, topology, name=f"{name}.req", **common)
        self.response_plane = Network(sim, topology, name=f"{name}.rsp", **common)

    # request direction (initiator -> target)
    def can_inject_request(self, endpoint: int) -> bool:
        return self.request_plane.can_inject(endpoint)

    def inject_request(self, endpoint: int, packet: NocPacket) -> None:
        self.request_plane.inject(endpoint, packet)

    def requests(self, endpoint: int) -> SimQueue:
        """Request packets delivered to target endpoint ``endpoint``."""
        return self.request_plane.ejected(endpoint)

    # response direction (target -> initiator)
    def can_inject_response(self, endpoint: int) -> bool:
        return self.response_plane.can_inject(endpoint)

    def inject_response(self, endpoint: int, packet: NocPacket) -> None:
        self.response_plane.inject(endpoint, packet)

    def responses(self, endpoint: int) -> SimQueue:
        """Response packets delivered to initiator endpoint ``endpoint``."""
        return self.response_plane.ejected(endpoint)

    def idle(self) -> bool:
        return self.request_plane.idle() and self.response_plane.idle()

    def total_flits_forwarded(self) -> int:
        return (
            self.request_plane.total_flits_forwarded()
            + self.response_plane.total_flits_forwarded()
        )

    def total_lock_stall_cycles(self) -> int:
        return (
            self.request_plane.total_lock_stall_cycles()
            + self.response_plane.total_lock_stall_cycles()
        )
