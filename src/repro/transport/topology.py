"""NoC topologies.

A :class:`Topology` is an undirected router graph (networkx) plus a
mapping from *endpoint ids* (the transaction layer's SlvAddr/MstAddr
space) to the router each NIU attaches to.  Constructors cover the shapes
used by the benchmarks: 2-D mesh, torus, ring, star, binary fat-tree-ish
tree, and arbitrary graphs for irregular SoC floorplans.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

RouterId = Hashable


def router_sort_key(router: RouterId):
    """Canonical, type-aware sort key for router ids.

    Numeric ids sort numerically and tuple ids element-wise, so router
    ``(1, 10)`` orders *after* ``(1, 2)`` — ``key=str`` put it first,
    which silently changed port/neighbor (and hence arbitration
    tie-break) order between fabrics narrower and wider than 10 routers.
    Categories (numbers, strings, tuples) are kept disjoint so
    heterogeneous id sets still have a total order.
    """
    if isinstance(router, tuple):
        return (2, tuple(router_sort_key(element) for element in router))
    if isinstance(router, bool):  # bool is an int subclass; keep it numeric
        return (0, int(router), "")
    if isinstance(router, (int, float)):
        return (0, router, "")
    return (1, 0, str(router))


class Topology:
    """Router graph + endpoint attachment map."""

    def __init__(
        self,
        graph: nx.Graph,
        endpoint_router: Dict[int, RouterId],
        name: str = "custom",
    ) -> None:
        if not nx.is_connected(graph):
            raise ValueError(f"topology {name!r}: router graph is not connected")
        for endpoint, router in endpoint_router.items():
            if router not in graph:
                raise ValueError(
                    f"topology {name!r}: endpoint {endpoint} attaches to "
                    f"unknown router {router!r}"
                )
            if endpoint < 0:
                raise ValueError(f"topology {name!r}: negative endpoint id")
        self.graph = graph
        self.endpoint_router = dict(endpoint_router)
        self.name = name
        # Reverse index so wiring never rescans the whole endpoint map
        # per router (endpoints_at used to be O(endpoints) per call).
        self._router_endpoints: Dict[RouterId, List[int]] = {}
        for endpoint in sorted(self.endpoint_router):
            self._router_endpoints.setdefault(
                self.endpoint_router[endpoint], []
            ).append(endpoint)
        # BFS distance maps keyed by destination router, computed lazily
        # and cached: adaptive routing asks for the minimal-neighbour set
        # of every (router, destination) pair, which would be O(V * E)
        # BFS runs without the cache.
        self._dist_maps: Dict[RouterId, Dict[RouterId, int]] = {}

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def routers(self) -> List[RouterId]:
        return sorted(self.graph.nodes, key=router_sort_key)

    @property
    def endpoints(self) -> List[int]:
        return sorted(self.endpoint_router)

    def neighbors(self, router: RouterId) -> List[RouterId]:
        return sorted(self.graph.neighbors(router), key=router_sort_key)

    def endpoints_at(self, router: RouterId) -> List[int]:
        """Endpoints attached to ``router`` (precomputed, ascending)."""
        return list(self._router_endpoints.get(router, ()))

    def router_of(self, endpoint: int) -> RouterId:
        try:
            return self.endpoint_router[endpoint]
        except KeyError:
            raise KeyError(f"unknown endpoint {endpoint}") from None

    def distances_to(self, dest_router: RouterId) -> Dict[RouterId, int]:
        """BFS hop distances from every router to ``dest_router`` (cached)."""
        dist = self._dist_maps.get(dest_router)
        if dist is None:
            dist = nx.single_source_shortest_path_length(self.graph, dest_router)
            self._dist_maps[dest_router] = dist
        return dist

    def minimal_neighbors(
        self, router: RouterId, dest_router: RouterId
    ) -> List[RouterId]:
        """Neighbours of ``router`` strictly closer to ``dest_router``.

        This is the *minimal output set* of adaptive routing: forwarding
        to any of these neighbours keeps the path shortest.  On a mesh or
        torus it is exactly the minimal quadrant (at most one neighbour
        per dimension with a non-zero offset, both ring directions when a
        torus offset is an even split).  Returned in canonical
        :func:`router_sort_key` order so table construction — and hence
        arbitration tie-breaking — is reproducible.
        """
        dist = self.distances_to(dest_router)
        here = dist[router]
        return sorted(
            (n for n in self.graph.neighbors(router) if dist[n] < here),
            key=router_sort_key,
        )

    def hop_distance(self, src_endpoint: int, dst_endpoint: int) -> int:
        """Router hops between two endpoints (0 if they share a router)."""
        return nx.shortest_path_length(
            self.graph,
            self.router_of(src_endpoint),
            self.router_of(dst_endpoint),
        )

    def diameter(self) -> int:
        return nx.diameter(self.graph)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Topology {self.name!r} routers={self.graph.number_of_nodes()} "
            f"links={self.graph.number_of_edges()} "
            f"endpoints={len(self.endpoint_router)}>"
        )


# ---------------------------------------------------------------------- #
# constructors
# ---------------------------------------------------------------------- #
def _auto_attach(
    routers: Sequence[RouterId], endpoints: Optional[int]
) -> Dict[int, RouterId]:
    """Spread ``endpoints`` endpoint ids round-robin over ``routers``."""
    count = endpoints if endpoints is not None else len(routers)
    return {ep: routers[ep % len(routers)] for ep in range(count)}


def mesh(
    width: int,
    height: int,
    endpoints: Optional[int] = None,
) -> Topology:
    """2-D mesh; router ids are ``(x, y)`` tuples (enables XY routing)."""
    if width < 1 or height < 1:
        raise ValueError("mesh dimensions must be >= 1")
    graph = nx.Graph()
    for x in range(width):
        for y in range(height):
            graph.add_node((x, y))
            if x > 0:
                graph.add_edge((x - 1, y), (x, y))
            if y > 0:
                graph.add_edge((x, y - 1), (x, y))
    routers = [(x, y) for y in range(height) for x in range(width)]
    return Topology(graph, _auto_attach(routers, endpoints), name=f"mesh{width}x{height}")


def torus(width: int, height: int, endpoints: Optional[int] = None) -> Topology:
    """2-D torus (mesh + wraparound links)."""
    topo = mesh(width, height, endpoints)
    graph = topo.graph
    for x in range(width):
        if height > 2:
            graph.add_edge((x, 0), (x, height - 1))
    for y in range(height):
        if width > 2:
            graph.add_edge((0, y), (width - 1, y))
    return Topology(graph, topo.endpoint_router, name=f"torus{width}x{height}")


def ring(routers: int, endpoints: Optional[int] = None) -> Topology:
    """Unidirectionally-indexed ring of ``routers`` routers."""
    if routers < 2:
        raise ValueError("ring needs >= 2 routers")
    graph = nx.cycle_graph(routers)
    ids = list(range(routers))
    return Topology(graph, _auto_attach(ids, endpoints), name=f"ring{routers}")


def star(leaves: int, endpoints: Optional[int] = None) -> Topology:
    """One hub router with ``leaves`` leaf routers (crossbar-ish)."""
    if leaves < 1:
        raise ValueError("star needs >= 1 leaf")
    graph = nx.star_graph(leaves)  # node 0 is the hub
    ids = list(range(1, leaves + 1))  # endpoints attach to leaves
    return Topology(graph, _auto_attach(ids, endpoints), name=f"star{leaves}")


def tree(depth: int, fanout: int = 2, endpoints: Optional[int] = None) -> Topology:
    """Balanced tree; endpoints attach to the leaves."""
    if depth < 1:
        raise ValueError("tree depth must be >= 1")
    graph = nx.balanced_tree(fanout, depth)
    leaves = sorted(n for n in graph.nodes if graph.degree[n] == 1 and n != 0)
    return Topology(
        graph, _auto_attach(leaves, endpoints), name=f"tree_d{depth}_f{fanout}"
    )


def single_router(endpoints: int) -> Topology:
    """All endpoints on one router — the degenerate crossbar case."""
    graph = nx.Graph()
    graph.add_node(0)
    return Topology(graph, {ep: 0 for ep in range(endpoints)}, name="xbar")


def custom(
    edges: Iterable[Tuple[RouterId, RouterId]],
    endpoint_router: Dict[int, RouterId],
    name: str = "custom",
) -> Topology:
    """Arbitrary router graph for irregular SoC floorplans."""
    graph = nx.Graph()
    graph.add_edges_from(edges)
    return Topology(graph, endpoint_router, name=name)
