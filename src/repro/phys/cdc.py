"""Clock-domain-crossing FIFO.

Models the standard dual-clock FIFO: items written in the producer domain
become visible to the consumer domain only after a synchronizer delay
measured in *consumer* clock edges (two-flop synchronizer = 2 edges).
Used by physical-layer experiments that put NIUs and fabric in different
clock domains.  (Fabric links get their CDC folded into
:class:`~repro.phys.link.PhysicalLink`; this class is the standalone
crossing primitive for direct component-to-component use.)

Activity contract: the FIFO participates in the PR-1 wake protocol like a
:class:`~repro.sim.queue.SimQueue`, two-phase commit included.  Items
that mature out of the synchronizer during :meth:`tick` are *staged* and
only become consumer-visible when the kernel commits (the FIFO joins the
dirty list like any queue), so visibility flips between cycles — never
mid-cycle — and results are independent of registration order and
identical under the strict and activity kernels.  A :meth:`push` wakes
the FIFO itself (it must tick to advance the synchronizer); components
registered via :meth:`~repro.sim.queue.WakeHooks.wake_on_push` are woken
at commit, when items mature into view, and
:meth:`~repro.sim.queue.WakeHooks.wake_on_pop` waiters when space frees.
With nothing crossing, :meth:`is_idle` is true and the FIFO retires from
the schedule.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Tuple

from repro.phys.clocking import ClockDomain
from repro.sim.component import Component
from repro.sim.queue import WakeHooks
from repro.sim.snapshot import Snapshottable


class CdcFifo(Component, WakeHooks, Snapshottable):
    """Bounded FIFO between two clock domains with synchronizer latency."""

    _snapshot_fields = (
        "_crossing",
        "_staged",
        "_visible",
        "total_pushed",
        "total_popped",
        "_dirty",
    )

    def __init__(
        self,
        name: str,
        producer_domain: ClockDomain,
        consumer_domain: ClockDomain,
        capacity: int = 8,
        sync_stages: int = 2,
    ) -> None:
        super().__init__(name)
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sync_stages < 1:
            raise ValueError("sync_stages must be >= 1")
        self.producer_domain = producer_domain
        self.consumer_domain = consumer_domain
        self.capacity = capacity
        self.sync_stages = sync_stages
        # (consumer edges remaining before visible, item)
        self._crossing: Deque[Tuple[int, Any]] = deque()
        self._staged: List[Any] = []  # matured, visible at next commit
        self._visible: Deque[Any] = deque()
        self.total_pushed = 0
        self.total_popped = 0
        self._dirty = False

    def bind(self, simulator) -> None:
        """Registering the FIFO as a component also enrolls it with the
        kernel's queue commit machinery (it is both: a ticked component
        for the synchronizer, a committed channel for visibility)."""
        super().bind(simulator)
        simulator.add_queue(self)

    # producer side ----------------------------------------------------- #
    def can_push(self) -> bool:
        return (
            len(self._crossing) + len(self._staged) + len(self._visible)
            < self.capacity
        )

    def push(self, item: Any) -> None:
        if not self.can_push():
            raise OverflowError(f"CDC FIFO {self.name!r} full")
        self._crossing.append((self.sync_stages, item))
        self.total_pushed += 1
        # The FIFO itself must tick to age the synchronizer.
        self.wake()

    # consumer side ------------------------------------------------------ #
    def can_pop(self) -> bool:
        return bool(self._visible)

    def pop(self) -> Any:
        if not self._visible:
            raise IndexError(f"CDC FIFO {self.name!r} empty")
        self.total_popped += 1
        item = self._visible.popleft()
        for waiter in self._pop_waiters:
            waiter.wake()
        return item

    def peek(self) -> Any:
        if not self._visible:
            raise IndexError(f"CDC FIFO {self.name!r} empty")
        return self._visible[0]

    def __len__(self) -> int:
        return len(self._visible)

    # kernel --------------------------------------------------------------#
    def is_idle(self) -> bool:
        """Nothing in the synchronizer: ticks are no-ops until a push
        (which wakes us).  Visible items need no ticking — consumers were
        woken when they matured.  Evaluated post-commit, so the staged
        region is always empty here."""
        return not self._crossing and not self._staged

    _next_event_known = True

    def next_event_cycle(self, now: int):
        """The synchronizer ages once per consumer edge while anything is
        crossing (those edges are never skippable); otherwise the FIFO is
        dormant until the next push wakes it."""
        if self._crossing or self._staged:
            return self.consumer_domain.next_edge(now)
        return None

    def tick(self, cycle: int) -> None:
        # Synchronizer stages advance on consumer clock edges.
        if not self.consumer_domain.active(cycle):
            return
        updated: Deque[Tuple[int, Any]] = deque()
        for stages, item in self._crossing:
            stages -= 1
            if stages <= 0:
                # Items mature strictly in order; once one is still
                # crossing, everything behind it stays behind it.
                if updated:
                    updated.append((1, item))
                else:
                    self._staged.append(item)
            else:
                updated.append((stages, item))
        self._crossing = updated
        if self._staged and not self._dirty:
            kernel = self._simulator
            if kernel is not None:
                self._dirty = True
                kernel._dirty_queues.append(self)
            else:
                # Standalone use (manually ticked, no kernel to run the
                # commit phase): publish immediately, as pre-wake-protocol
                # CdcFifo did.
                self.commit()

    def commit(self) -> None:
        """Publish matured items (kernel only, like ``SimQueue.commit``):
        staged items become consumer-visible and push-waiters wake."""
        self._dirty = False
        if self._staged:
            self._visible.extend(self._staged)
            self._staged.clear()
            for waiter in self._push_waiters:
                waiter.wake()

    @property
    def in_flight(self) -> int:
        return len(self._crossing) + len(self._staged)
