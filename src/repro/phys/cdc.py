"""Clock-domain-crossing FIFO.

Models the standard dual-clock FIFO: items written in the producer domain
become visible to the consumer domain only after a synchronizer delay
measured in *consumer* clock edges (two-flop synchronizer = 2 edges).
Used by physical-layer experiments that put NIUs and fabric in different
clock domains.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from repro.phys.clocking import ClockDomain
from repro.sim.component import Component


class CdcFifo(Component):
    """Bounded FIFO between two clock domains with synchronizer latency."""

    def __init__(
        self,
        name: str,
        producer_domain: ClockDomain,
        consumer_domain: ClockDomain,
        capacity: int = 8,
        sync_stages: int = 2,
    ) -> None:
        super().__init__(name)
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sync_stages < 1:
            raise ValueError("sync_stages must be >= 1")
        self.producer_domain = producer_domain
        self.consumer_domain = consumer_domain
        self.capacity = capacity
        self.sync_stages = sync_stages
        # (consumer edges remaining before visible, item)
        self._crossing: Deque[Tuple[int, Any]] = deque()
        self._visible: Deque[Any] = deque()
        self.total_pushed = 0
        self.total_popped = 0

    # producer side ----------------------------------------------------- #
    def can_push(self) -> bool:
        return len(self._crossing) + len(self._visible) < self.capacity

    def push(self, item: Any) -> None:
        if not self.can_push():
            raise OverflowError(f"CDC FIFO {self.name!r} full")
        self._crossing.append((self.sync_stages, item))
        self.total_pushed += 1

    # consumer side ------------------------------------------------------ #
    def can_pop(self) -> bool:
        return bool(self._visible)

    def pop(self) -> Any:
        if not self._visible:
            raise IndexError(f"CDC FIFO {self.name!r} empty")
        self.total_popped += 1
        return self._visible.popleft()

    def peek(self) -> Any:
        if not self._visible:
            raise IndexError(f"CDC FIFO {self.name!r} empty")
        return self._visible[0]

    def __len__(self) -> int:
        return len(self._visible)

    # kernel --------------------------------------------------------------#
    def tick(self, cycle: int) -> None:
        # Synchronizer stages advance on consumer clock edges.
        if not self.consumer_domain.active(cycle):
            return
        matured = 0
        updated: Deque[Tuple[int, Any]] = deque()
        for stages, item in self._crossing:
            stages -= 1
            if stages <= 0:
                # Items mature strictly in order; once one is still
                # crossing, everything behind it stays behind it.
                if updated:
                    updated.append((1, item))
                else:
                    self._visible.append(item)
                    matured += 1
            else:
                updated.append((stages, item))
        self._crossing = updated

    @property
    def in_flight(self) -> int:
        return len(self._crossing)
