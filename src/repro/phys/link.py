"""Physical link: flit serialization into phits, pipelining and CDC.

A transport-layer flit of ``flit_bits`` is carried over a wire bundle of
``phit_bits`` wires; each phit takes one cycle of the producer's clock,
plus a fixed pipeline latency for wire/repeater delay.  When the two ends
sit in different clock domains the link additionally carries the flit
through a synchronizer (``sync_stages`` consumer clock edges — the
classic dual-clock FIFO crossing).  The link is transparent above: it
moves whole flits between two flit queues, just more slowly when narrow,
piped or crossing clocks — the paper's point that physical width and
clocking are invisible to transaction semantics.

:class:`LinkSpec` is the declarative record the SoC configuration layer
uses to request all of this per fabric connection; the default spec is
the ideal full-width, zero-latency wire, which the network wires as a
plain shared queue (zero simulation cost, cycle-identical to a fabric
built with no physical layer at all).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.sim.component import Component
from repro.sim.queue import SimQueue
from repro.sim.snapshot import Snapshottable
from repro.transport.flit import Flit
from repro.transport.flow_control import CreditCounter


def phits_per_flit(flit_bits: int, phit_bits: int) -> int:
    """Cycles to serialize one flit over a ``phit_bits``-wide bundle."""
    if flit_bits < 1 or phit_bits < 1:
        raise ValueError("flit_bits and phit_bits must be >= 1")
    return math.ceil(flit_bits / phit_bits)


@dataclass(frozen=True)
class LinkSpec:
    """Physical configuration of one fabric connection.

    The default instance is the *ideal wire*: full flit width, no
    pipeline stages, no clock crossing.  The network wires an ideal
    same-domain link as one raw shared queue — no link component, no
    extra latency — so a SoC that never mentions the physical layer is
    cycle-identical to one built before it existed.

    Parameters
    ----------
    phit_bits:
        Wire-bundle width.  ``None`` means full flit width (one phit per
        flit); any narrower width serializes each flit over
        ``ceil(flit_bits / phit_bits)`` producer-clock cycles.
    pipeline_latency:
        Extra kernel cycles of wire/repeater delay added to every flit.
    sync_stages:
        Synchronizer depth, in consumer clock edges, applied only when
        the link's two ends are in different clock domains (a CDC).
    capacity:
        Staging-FIFO depth on each side of a non-transparent link;
        ``None`` inherits the network's buffer capacity.
    fault_windows:
        Deterministic down-windows ``(down_cycle, up_cycle)`` applied to
        every inter-router link built from this spec (the spec describes
        a link *class*, exactly like its width/latency fields).  Windows
        must be non-negative, non-empty and strictly ascending without
        overlap; the network folds them into the plane's
        :class:`~repro.transport.faults.FaultSchedule` at build time,
        where they get the same named-error validation as explicit
        schedules.  Only inter-router link specs may carry windows —
        endpoint (NIU) links are not faultable.
    """

    phit_bits: Optional[int] = None
    pipeline_latency: int = 0
    sync_stages: int = 2
    capacity: Optional[int] = None
    fault_windows: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.phit_bits is not None and self.phit_bits < 1:
            raise ValueError("LinkSpec: phit_bits must be >= 1 or None")
        if self.pipeline_latency < 0:
            raise ValueError("LinkSpec: pipeline_latency must be >= 0")
        if self.sync_stages < 1:
            raise ValueError("LinkSpec: sync_stages must be >= 1")
        if self.capacity is not None and self.capacity < 1:
            raise ValueError("LinkSpec: capacity must be >= 1 or None")
        windows = tuple(tuple(w) for w in self.fault_windows)
        object.__setattr__(self, "fault_windows", windows)
        previous_up = -1
        for window in windows:
            if len(window) != 2:
                raise ValueError(
                    f"LinkSpec: fault window must be (down, up), got {window!r}"
                )
            down, up = window
            if down < 0 or up <= down:
                raise ValueError(
                    f"LinkSpec: fault window {window!r} must satisfy "
                    f"0 <= down < up"
                )
            if down <= previous_up:
                raise ValueError(
                    "LinkSpec: fault_windows must be strictly ascending "
                    f"and non-overlapping, got {windows!r}"
                )
            previous_up = up

    def transparent(self, crosses_domains: bool = False) -> bool:
        """True when this spec can be wired as a raw shared queue."""
        return (
            self.phit_bits is None
            and self.pipeline_latency == 0
            and not crosses_domains
        )


def _domain_name(domain) -> Optional[str]:
    return None if domain is None else domain.name


def _edge_at_or_after(domain, cycle: int) -> int:
    """First clock edge of ``domain`` at or after ``cycle`` (``None`` =
    the kernel reference clock, which has an edge every cycle)."""
    if domain is None:
        return cycle
    return domain.next_edge(cycle)


def domains_cross(producer_domain, consumer_domain) -> bool:
    """True when two link ends are asynchronous to each other.

    Domains are compared by *name* (``None`` = the kernel reference
    clock): two differently-named domains are asynchronous even at equal
    ratios, so a crossing needs a synchronizer.  This is the single
    source of truth for both the network's wiring decision (transparent
    queue vs link component) and the link's own CDC decision.
    """
    return _domain_name(producer_domain) != _domain_name(consumer_domain)


class PhysicalLink(Component, Snapshottable):
    """Serializing, pipelined point-to-point link between two flit queues.

    Parameters
    ----------
    flit_bits / phit_bits:
        Determines the serialization factor (1 = full-width link).
    pipeline_latency:
        Extra cycles of wire delay added to every flit (0 = none).
    producer_domain / consumer_domain:
        Clock domains of the two ends (``None`` = kernel reference
        clock).  Serialization advances on producer edges and delivery on
        consumer edges.  When the ends are in *different* domains the
        link synchronizes every flit for ``sync_stages`` consumer edges —
        the CDC is part of the link, not a bolt-on.

    Activity contract: the link registers ``wake_on_push`` with its
    upstream queue and ``wake_on_pop`` with its downstream queue, and
    :meth:`is_idle` is true only when nothing is buffered upstream,
    shifting, piped, crossing or awaiting delivery — so serialized links
    retire from the schedule exactly like any other component.  The link
    itself is never domain-gated by the kernel (it spans two domains);
    it self-gates each side on the matching domain's edges.
    """

    def __init__(
        self,
        name: str,
        upstream: SimQueue,
        downstream: SimQueue,
        flit_bits: int = 72,
        phit_bits: int = 72,
        pipeline_latency: int = 0,
        producer_domain=None,
        consumer_domain=None,
        sync_stages: int = 2,
    ) -> None:
        super().__init__(name)
        if pipeline_latency < 0:
            raise ValueError("pipeline latency must be >= 0")
        if sync_stages < 1:
            raise ValueError("sync_stages must be >= 1")
        self.upstream = upstream
        self.downstream = downstream
        self.flit_bits = flit_bits
        self.phit_bits = phit_bits
        self.pipeline_latency = pipeline_latency
        self.producer_domain = producer_domain
        self.consumer_domain = consumer_domain
        self.sync_stages = sync_stages
        # Asynchronous ends (see domains_cross): every flit takes the
        # synchronizer.
        self.crosses_domains = domains_cross(producer_domain, consumer_domain)
        self.serialization = phits_per_flit(flit_bits, phit_bits)
        self._shifting: Optional[Tuple[Flit, int]] = None  # (flit, phits left)
        self._pipe: Deque[Tuple[int, Flit]] = deque()  # (ready cycle, flit)
        self._crossing: Deque[List] = deque()  # [consumer edges left, flit]
        self._deliver: Deque[Flit] = deque()  # synchronized, awaiting room
        # Edge bookkeeping for the time-skipping kernel: shifting and
        # synchronizer aging are *internal* per-edge state (nothing
        # outside the link can observe a partially shifted flit), so a
        # tick that lands after skipped cycles catches the countdowns up
        # by the number of elapsed edges.  These record the last edge on
        # which each side ran, so elapsed edges are exact.
        self._shift_edge = -1  # producer edge of the last shift/start
        self._cross_edge = -1  # last consumer edge the link ticked on
        self._max_in_flight = pipeline_latency + 1 + (
            sync_stages if self.crosses_domains else 0
        )
        # Integer clock gates (divisor/phase) so the per-tick edge tests
        # are two arithmetic compares instead of method calls.
        self._pdiv = 1 if producer_domain is None else producer_domain.divisor
        self._ppha = 0 if producer_domain is None else producer_domain.phase
        self._cdiv = 1 if consumer_domain is None else consumer_domain.divisor
        self._cpha = 0 if consumer_domain is None else consumer_domain.phase
        self.flits_carried = 0
        self.phits_carried = 0
        upstream.wake_on_push(self)
        downstream.wake_on_pop(self)

    # ------------------------------------------------------------------ #
    # activity protocol
    # ------------------------------------------------------------------ #
    @property
    def in_flight(self) -> int:
        """Flits somewhere inside the link (not counting upstream)."""
        return (
            (1 if self._shifting is not None else 0)
            + len(self._pipe)
            + len(self._crossing)
            + len(self._deliver)
        )

    def is_idle(self) -> bool:
        """Nothing upstream and nothing in flight: every tick is a no-op
        until the upstream queue commits a push (which wakes us)."""
        return self.in_flight == 0 and not self.upstream

    def idle(self) -> bool:
        """No flit on the wires or in the synchronizer (drain check)."""
        return self.in_flight == 0

    _next_event_known = True

    def next_event_cycle(self, now: int):
        """Next clock edge on which this link's tick changes *visible*
        state.

        Shifting and synchronizer aging are internal countdowns that the
        tick catches up across skipped edges, so their events are the
        countdowns' completion edges, not every edge: the shift ends at
        the ``remaining``-th producer edge after the last shift tick and
        the synchronizer's head flit matures (and is delivered) at its
        ``edges-left``-th consumer edge — nothing outside the link can
        tell the intermediate edges happened or not.  Pipeline maturation
        and blocked delivery contribute their own consumer edges, an
        idle-but-fed producer its next edge; a fully empty link is
        dormant (upstream-push / downstream-pop wakes re-arm it).
        """
        producer = self.producer_domain
        consumer = self.consumer_domain
        best = None
        shifting = self._shifting
        if shifting is not None:
            best = self._shift_edge + shifting[1] * self._pdiv
            if best < now:  # defensive: never propose the past
                best = _edge_at_or_after(producer, now)
        elif self.upstream._committed and self.in_flight < self._max_in_flight:
            best = _edge_at_or_after(producer, now)
        if self._deliver:
            event = _edge_at_or_after(consumer, now)
            if best is None or event < best:
                best = event
        if self._crossing:
            event = self._cross_edge + self._crossing[0][0] * self._cdiv
            if event < now:
                event = _edge_at_or_after(consumer, now)
            if best is None or event < best:
                best = event
        if self._pipe:
            ready = self._pipe[0][0]
            event = _edge_at_or_after(consumer, ready if ready > now else now)
            if best is None or event < best:
                best = event
        return best

    # ------------------------------------------------------------------ #
    # the cycle
    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> None:
        cdiv = self._cdiv
        if cdiv == 1 or cycle % cdiv == self._cpha:
            last_edge = self._cross_edge
            self._cross_edge = cycle
            if self.crosses_domains:
                # Age the synchronizer; flits mature strictly in order
                # (all entries share sync_stages).  When the kernel
                # skipped edges (it never skips past the head flit's
                # maturation — see next_event_cycle), the aging catches
                # up by the number of elapsed consumer edges.
                if self._crossing:
                    if last_edge < 0:
                        edges = 1
                    else:
                        edges = (cycle - last_edge) // cdiv
                    for entry in self._crossing:
                        entry[0] -= edges
                    while self._crossing and self._crossing[0][0] <= 0:
                        self._deliver.append(self._crossing.popleft()[1])
                # Pipeline-matured flits enter the synchronizer.
                while self._pipe and self._pipe[0][0] <= cycle:
                    __, flit = self._pipe.popleft()
                    self._crossing.append([self.sync_stages, flit])
                # Deliver synchronized flits while downstream has room.
                while self._deliver and self.downstream.can_push():
                    self.downstream.push(self._deliver.popleft())
                    self.flits_carried += 1
            elif self._pipe:
                # Same-domain link: deliver flits whose pipeline matured.
                while self._pipe and self._pipe[0][0] <= cycle:
                    if not self.downstream.can_push():
                        break
                    __, flit = self._pipe.popleft()
                    self.downstream.push(flit)
                    self.flits_carried += 1

        pdiv = self._pdiv
        if pdiv != 1 and cycle % pdiv != self._ppha:
            return

        # Shift phits of the flit currently on the wires, catching up
        # over skipped producer edges (the kernel never skips past the
        # completion edge, where the flit enters the wire pipeline).
        if self._shifting is not None:
            flit, remaining = self._shifting
            edges = (cycle - self._shift_edge) // pdiv
            self._shift_edge = cycle
            if edges > remaining:
                edges = remaining  # keep the phit counter exact
            remaining -= edges
            self.phits_carried += edges
            if remaining <= 0:
                # +1: the last phit lands this cycle, the flit is whole at
                # the far end next cycle, plus any pipeline stages.
                self._pipe.append((cycle + 1 + self.pipeline_latency, flit))
                self._shifting = None
            else:
                self._shifting = (flit, remaining)
            return

        # Start serializing the next flit, with lookahead backpressure:
        # never take a flit off the upstream queue unless the in-flight
        # window (pipe + synchronizer + delivery staging) has room, so a
        # blocked downstream stalls the wires instead of dropping flits.
        # (_shifting is None here — the shift branch above returned.)
        if self.upstream._committed and (
            len(self._pipe) + len(self._crossing) + len(self._deliver)
            < self._max_in_flight
        ):
            flit = self.upstream.pop()
            self._shifting = (flit, self.serialization)
            self._shift_edge = cycle

    @property
    def bandwidth_bits_per_cycle(self) -> float:
        """Peak payload bandwidth of this link (producer-clock cycles)."""
        return self.flit_bits / self.serialization

    @property
    def latency_cycles(self) -> int:
        """Cycles from first phit to delivery for one flit (same-domain;
        a CDC adds ``sync_stages`` consumer edges on top)."""
        return self.serialization + self.pipeline_latency

    # ------------------------------------------------------------------ #
    # state capture
    # ------------------------------------------------------------------ #
    _snapshot_fields = (
        "_shifting",
        "_pipe",
        "_crossing",
        "_deliver",
        "_shift_edge",
        "_cross_edge",
        "flits_carried",
        "phits_carried",
    )


class VcPhysicalLink(Component, Snapshottable):
    """One physical channel time-multiplexing several virtual channels.

    The hardware reality virtual channels model: per-VC buffers at both
    ends, **one** set of wires in between.  ``upstreams[v]`` /
    ``downstreams[v]`` are the per-VC staging queues; the link serializes
    one flit at a time over the shared ``phit_bits`` bundle, choosing the
    next VC round-robin among those with a flit staged *and* a credit
    available.  Credits are per VC (:class:`CreditCounter`, capacity =
    the downstream buffer depth): a credit is consumed when a flit
    leaves the upstream queue and returned — ``credit_return_latency``
    producer edges later — when the downstream buffer drains, so a
    blocked VC stalls only itself while the wires keep carrying the
    other VCs.  Because every in-flight flit holds a credit, delivery
    can never find its downstream buffer full; flits therefore never
    reorder *within* a VC, while VCs interleave freely on the wires.

    Pipelining and CDC behave as in :class:`PhysicalLink`: serialization
    advances on producer edges, delivery on consumer edges, and when the
    two ends sit in different clock domains every flit takes
    ``sync_stages`` consumer edges through the synchronizer.

    Activity contract: the link wakes on any upstream push or downstream
    pop, and :meth:`is_idle` is true only when nothing is staged, in
    flight, *or awaiting credit maturation* — credit bookkeeping advances
    in :meth:`tick`, so the link must stay scheduled until every counter
    is full again or the strict and activity kernels would disagree.
    """

    def __init__(
        self,
        name: str,
        upstreams: List[SimQueue],
        downstreams: List[SimQueue],
        flit_bits: int = 72,
        phit_bits: int = 72,
        pipeline_latency: int = 0,
        producer_domain=None,
        consumer_domain=None,
        sync_stages: int = 2,
        credit_return_latency: int = 1,
    ) -> None:
        super().__init__(name)
        if len(upstreams) != len(downstreams) or not upstreams:
            raise ValueError(f"{name}: need matching per-VC queue lists")
        if pipeline_latency < 0:
            raise ValueError("pipeline latency must be >= 0")
        if sync_stages < 1:
            raise ValueError("sync_stages must be >= 1")
        self.vcs = len(upstreams)
        self.upstreams = list(upstreams)
        self.downstreams = list(downstreams)
        self.flit_bits = flit_bits
        self.phit_bits = phit_bits
        self.pipeline_latency = pipeline_latency
        self.producer_domain = producer_domain
        self.consumer_domain = consumer_domain
        self.sync_stages = sync_stages
        self.crosses_domains = domains_cross(producer_domain, consumer_domain)
        self.serialization = phits_per_flit(flit_bits, phit_bits)
        self.credits: List[CreditCounter] = []
        for vc, queue in enumerate(self.downstreams):
            if queue.capacity is None:
                raise ValueError(
                    f"{name}: VC {vc} delivery queue must be bounded "
                    f"(credits track its depth)"
                )
            self.credits.append(
                CreditCounter(queue.capacity, credit_return_latency)
            )
        self._shifting: Optional[Tuple[int, Flit, int]] = None  # (vc, flit, left)
        self._pipe: Deque[Tuple[int, int, Flit]] = deque()  # (ready, vc, flit)
        self._crossing: Deque[List] = deque()  # [edges left, vc, flit]
        self._in_flight_vc = [0] * self.vcs
        self._next_vc = 0
        self.flits_carried = 0
        self.phits_carried = 0
        self.flits_per_vc = [0] * self.vcs
        for queue in self.upstreams:
            queue.wake_on_push(self)
        for queue in self.downstreams:
            queue.wake_on_pop(self)

    # ------------------------------------------------------------------ #
    # activity protocol
    # ------------------------------------------------------------------ #
    @property
    def in_flight(self) -> int:
        """Flits somewhere inside the link (not counting upstream)."""
        return (
            (1 if self._shifting is not None else 0)
            + len(self._pipe)
            + len(self._crossing)
        )

    def is_idle(self) -> bool:
        if self.in_flight or any(self.upstreams):
            return False
        # Credits still travelling back (or held by occupied downstream
        # buffers) evolve inside tick; sleep only once every counter is
        # whole again.
        return all(c.available == c.capacity for c in self.credits)

    def idle(self) -> bool:
        """No flit on the wires or in the synchronizer (drain check)."""
        return self.in_flight == 0

    _next_event_known = True

    def next_event_cycle(self, now: int):
        """Like :meth:`PhysicalLink.next_event_cycle`, with one extra
        producer-side clause: credit bookkeeping (maturation and the
        drain-driven give-back) advances on every producer edge while any
        counter is below capacity, so those edges stay unskippable until
        the credit loop is whole again — mirroring :meth:`is_idle`."""
        producer = self.producer_domain
        consumer = self.consumer_domain
        best = None
        if (
            self._shifting is not None
            or any(queue._committed for queue in self.upstreams)
            or any(c._available != c.capacity for c in self.credits)
        ):
            best = _edge_at_or_after(producer, now)
        if self.crosses_domains and self._crossing:
            event = _edge_at_or_after(consumer, now)
            if best is None or event < best:
                best = event
        elif self._pipe:
            ready = self._pipe[0][0]
            event = _edge_at_or_after(consumer, ready if ready > now else now)
            if best is None or event < best:
                best = event
        return best

    # ------------------------------------------------------------------ #
    # the cycle
    # ------------------------------------------------------------------ #
    def _deliver(self, vc: int, flit: Flit) -> None:
        # A held credit guarantees the downstream buffer has room.
        self.downstreams[vc].push(flit)
        self._in_flight_vc[vc] -= 1
        self.flits_carried += 1
        self.flits_per_vc[vc] += 1

    def tick(self, cycle: int) -> None:
        producer = self.producer_domain
        consumer = self.consumer_domain
        on_consumer = consumer is None or consumer.active(cycle)

        if on_consumer:
            if self.crosses_domains:
                if self._crossing:
                    for entry in self._crossing:
                        entry[0] -= 1
                    while self._crossing and self._crossing[0][0] <= 0:
                        __, vc, flit = self._crossing.popleft()
                        self._deliver(vc, flit)
                while self._pipe and self._pipe[0][0] <= cycle:
                    __, vc, flit = self._pipe.popleft()
                    self._crossing.append([self.sync_stages, vc, flit])
            else:
                while self._pipe and self._pipe[0][0] <= cycle:
                    __, vc, flit = self._pipe.popleft()
                    self._deliver(vc, flit)

        if producer is not None and not producer.active(cycle):
            return

        # Sender-side credit loop: mature in-flight returns, then return
        # credits for flits the downstream consumer has drained since the
        # last producer edge.  Credits already travelling back
        # (in_return_loop) still count as outstanding, so subtract them
        # or every pre-maturation edge would re-return the same credit.
        for vc, credit in enumerate(self.credits):
            credit.advance()
            held = self._in_flight_vc[vc] + self.downstreams[vc].occupancy
            freed = credit.outstanding - credit.in_return_loop - held
            if freed > 0:
                credit.give_back(freed)

        # Shift phits of the flit currently on the wires.
        if self._shifting is not None:
            vc, flit, remaining = self._shifting
            remaining -= 1
            self.phits_carried += 1
            if remaining == 0:
                # +1: the last phit lands this cycle, the flit is whole at
                # the far end next cycle, plus any pipeline stages.
                self._pipe.append((cycle + 1 + self.pipeline_latency, vc, flit))
                self._shifting = None
            else:
                self._shifting = (vc, flit, remaining)
            return

        # Start serializing the next flit: round-robin over VCs with a
        # flit staged and a credit in hand, so one blocked VC never
        # claims the wires.
        for offset in range(self.vcs):
            vc = (self._next_vc + offset) % self.vcs
            if self.upstreams[vc] and self.credits[vc].can_send():
                flit = self.upstreams[vc].pop()
                self.credits[vc].consume()
                self._in_flight_vc[vc] += 1
                self._shifting = (vc, flit, self.serialization)
                self._next_vc = (vc + 1) % self.vcs
                return

    @property
    def bandwidth_bits_per_cycle(self) -> float:
        """Peak payload bandwidth of this link (producer-clock cycles)."""
        return self.flit_bits / self.serialization

    @property
    def latency_cycles(self) -> int:
        """Cycles from first phit to delivery for one flit (same-domain;
        a CDC adds ``sync_stages`` consumer edges on top)."""
        return self.serialization + self.pipeline_latency

    # ------------------------------------------------------------------ #
    # state capture
    # ------------------------------------------------------------------ #
    _snapshot_fields = (
        "_shifting",
        "_pipe",
        "_crossing",
        "_in_flight_vc",
        "_next_vc",
        "flits_carried",
        "phits_carried",
        "flits_per_vc",
    )

    def _snapshot_state(self) -> dict:
        state = super()._snapshot_state()
        state["credits"] = [c.snapshot() for c in self.credits]
        return state

    def _restore_state(self, state) -> None:
        super()._restore_state(state)
        for credit, envelope in zip(self.credits, state["credits"]):
            credit.restore(envelope)
