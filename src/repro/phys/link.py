"""Physical link: flit serialization into phits.

A transport-layer flit of ``flit_bits`` is carried over a wire bundle of
``phit_bits`` wires; each phit takes one cycle, plus a fixed pipeline
latency for wire/repeater delay.  The link is transparent above: it moves
whole flits between two flit queues, just more slowly when narrow — the
paper's point that physical width is invisible to transaction semantics.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional, Tuple

from repro.sim.component import Component
from repro.sim.queue import SimQueue
from repro.transport.flit import Flit


def phits_per_flit(flit_bits: int, phit_bits: int) -> int:
    """Cycles to serialize one flit over a ``phit_bits``-wide bundle."""
    if flit_bits < 1 or phit_bits < 1:
        raise ValueError("flit_bits and phit_bits must be >= 1")
    return math.ceil(flit_bits / phit_bits)


class PhysicalLink(Component):
    """Serializing, pipelined point-to-point link between two flit queues.

    Parameters
    ----------
    flit_bits / phit_bits:
        Determines the serialization factor (1 = full-width link).
    pipeline_latency:
        Extra cycles of wire delay added to every flit (0 = none).
    """

    def __init__(
        self,
        name: str,
        upstream: SimQueue,
        downstream: SimQueue,
        flit_bits: int = 72,
        phit_bits: int = 72,
        pipeline_latency: int = 0,
    ) -> None:
        super().__init__(name)
        if pipeline_latency < 0:
            raise ValueError("pipeline latency must be >= 0")
        self.upstream = upstream
        self.downstream = downstream
        self.flit_bits = flit_bits
        self.phit_bits = phit_bits
        self.pipeline_latency = pipeline_latency
        self.serialization = phits_per_flit(flit_bits, phit_bits)
        self._shifting: Optional[Tuple[Flit, int]] = None  # (flit, phits left)
        self._pipe: Deque[Tuple[int, Flit]] = deque()  # (ready cycle, flit)
        self.flits_carried = 0
        self.phits_carried = 0

    def tick(self, cycle: int) -> None:
        # Deliver flits whose pipeline delay matured.
        while self._pipe and self._pipe[0][0] <= cycle:
            if not self.downstream.can_push():
                break
            __, flit = self._pipe.popleft()
            self.downstream.push(flit)
            self.flits_carried += 1

        # Shift phits of the flit currently on the wires.
        if self._shifting is not None:
            flit, remaining = self._shifting
            remaining -= 1
            self.phits_carried += 1
            if remaining == 0:
                # +1: the last phit lands this cycle, the flit is whole at
                # the far end next cycle, plus any pipeline stages.
                self._pipe.append((cycle + 1 + self.pipeline_latency, flit))
                self._shifting = None
            else:
                self._shifting = (flit, remaining)
            return

        # Start serializing the next flit, with lookahead backpressure:
        # never take a flit off the upstream queue unless the downstream
        # side will have room by the time it arrives (bounded pipe).
        if self.upstream and len(self._pipe) < self.pipeline_latency + 1:
            flit = self.upstream.pop()
            self._shifting = (flit, self.serialization)
            self.phits_carried += 0  # counted as phits shift

    @property
    def bandwidth_bits_per_cycle(self) -> float:
        """Peak payload bandwidth of this link."""
        return self.flit_bits / self.serialization

    @property
    def latency_cycles(self) -> int:
        """Cycles from first phit to delivery for one flit."""
        return self.serialization + self.pipeline_latency

    def idle(self) -> bool:
        return self._shifting is None and not self._pipe
