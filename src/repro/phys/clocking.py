"""Clock domains with integer frequency ratios.

The simulation kernel ticks at the fastest clock in the system.  Two ways
to slow a component down:

- :meth:`~repro.sim.component.Component.set_clock_domain` places a
  registered component directly in a domain; both kernels (activity and
  strict) then tick it only on that domain's edges, with kernel cycle
  numbers.  This is what :class:`~repro.soc.builder.SocBuilder` uses for
  its ``clock_domains=`` / per-spec ``region=`` knobs.
- :class:`ClockedRegion` wraps unregistered children and forwards every
  N-th kernel tick to them with *local* cycle numbers (legacy wrapper,
  useful for self-contained experiments).

Either way this models GALS-style NoCs where the switch fabric runs
faster than attached IP — a physical-layer concern that, per the paper,
must not leak upward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.component import Component


@dataclass(frozen=True)
class ClockDomain:
    """A named clock running at ``1/divisor`` of the kernel clock."""

    name: str
    divisor: int = 1
    phase: int = 0

    def __post_init__(self) -> None:
        if self.divisor < 1:
            raise ValueError(f"clock {self.name!r}: divisor must be >= 1")
        if not 0 <= self.phase < self.divisor:
            raise ValueError(f"clock {self.name!r}: phase out of range")

    def active(self, kernel_cycle: int) -> bool:
        """Does this domain have a clock edge at ``kernel_cycle``?"""
        return kernel_cycle % self.divisor == self.phase

    def next_edge(self, kernel_cycle: int) -> int:
        """First clock edge at or after ``kernel_cycle`` — what the
        event-wheel kernel aligns a component's next event to."""
        return kernel_cycle + (self.phase - kernel_cycle) % self.divisor

    def local_cycle(self, kernel_cycle: int) -> int:
        """This domain's own cycle count at kernel time ``kernel_cycle``."""
        return (kernel_cycle - self.phase + self.divisor - 1) // self.divisor


def make_clock_domain(name: str, value) -> ClockDomain:
    """Coerce a declarative clock-domain value into a :class:`ClockDomain`.

    Accepted forms (what ``SocBuilder(clock_domains={...})`` takes):
    an existing :class:`ClockDomain` (renamed to ``name`` if needed so
    the mapping key is authoritative), an ``int`` divisor, or a
    ``(divisor, phase)`` tuple.
    """
    if isinstance(value, ClockDomain):
        if value.name == name:
            return value
        return ClockDomain(name, value.divisor, value.phase)
    if isinstance(value, int):
        return ClockDomain(name, value)
    if isinstance(value, tuple) and len(value) == 2:
        return ClockDomain(name, value[0], value[1])
    raise ValueError(
        f"clock domain {name!r}: expected ClockDomain, divisor int or "
        f"(divisor, phase) tuple, got {value!r}"
    )


class ClockedRegion(Component):
    """Ticks its children only on their clock domain's edges."""

    def __init__(self, name: str, domain: ClockDomain) -> None:
        super().__init__(name)
        self.domain = domain
        self._children: List[Component] = []

    def add(self, component: Component) -> Component:
        self._children.append(component)
        return component

    def bind(self, simulator) -> None:
        super().bind(simulator)
        for child in self._children:
            child.bind(simulator)

    def tick(self, cycle: int) -> None:
        if self.domain.active(cycle):
            local = self.domain.local_cycle(cycle)
            for child in self._children:
                child.tick(local)

    def finish(self) -> None:
        for child in self._children:
            child.finish()
