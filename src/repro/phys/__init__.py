"""The NoC physical layer.

"The physical layer defines how packets are physically transmitted …
independent from transaction and transport layers" (paper §1).  We model
the three physical concerns the paper names:

- **raw bandwidth** — :class:`~repro.phys.link.PhysicalLink` serializes
  flits into *phits* of configurable width, so halving the wire count
  doubles cycles-per-flit without any transport/transaction change;
- **matching clocks** — :mod:`repro.phys.clocking` provides clock domains
  with integer ratios and :class:`~repro.phys.cdc.CdcFifo` a synchronizer
  FIFO with the classic two-flop crossing latency;
- **off-chip communication** — a narrow, high-latency ``PhysicalLink``
  configuration (see the E7 bench).
"""

from repro.phys.cdc import CdcFifo
from repro.phys.clocking import ClockDomain, ClockedRegion, make_clock_domain
from repro.phys.link import LinkSpec, PhysicalLink, phits_per_flit

__all__ = [
    "CdcFifo",
    "ClockDomain",
    "ClockedRegion",
    "LinkSpec",
    "PhysicalLink",
    "make_clock_domain",
    "phits_per_flit",
]
