"""Assemble a complete Fig-2 system: masters + bridges + shared bus.

Takes the *same* :class:`~repro.soc.config.InitiatorSpec` /
:class:`~repro.soc.config.TargetSpec` lists as the NoC builder, so
benchmark E1 runs identical IP and workloads on both architectures.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bus.bridge import Bridge
from repro.bus.shared_bus import SharedBus
from repro.core.address_map import AddressMap
from repro.protocols.base import ProtocolMaster
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer
from repro.soc.config import InitiatorSpec, TargetSpec

# Master model classes are shared with the NoC builder.
from repro.soc.builder import _MASTER_CLASSES


class BusSoc:
    """A built, runnable bridged-bus system (mirrors :class:`NocSoc`)."""

    def __init__(
        self,
        sim: Simulator,
        bus: SharedBus,
        address_map: AddressMap,
        masters: Dict[str, ProtocolMaster],
        bridges: Dict[str, Bridge],
    ) -> None:
        self.sim = sim
        self.bus = bus
        self.address_map = address_map
        self.masters = masters
        self.bridges = bridges

    def quiescent(self) -> bool:
        return (
            all(m.finished() for m in self.masters.values())
            and all(b.idle() for b in self.bridges.values())
            and self.bus.idle()
        )

    def run_to_completion(self, max_cycles: int = 500_000) -> int:
        return self.sim.run_until(self.quiescent, max_cycles=max_cycles)

    def run(self, cycles: int) -> int:
        return self.sim.run(cycles)

    def master_latency(self, name: str) -> Dict[str, float]:
        return self.sim.stats.latency(f"{name}.txn").histogram.summary()

    def aggregate_latency(self) -> Dict[str, float]:
        from repro.sim.stats import Histogram

        merged = Histogram("all-masters")
        for name in self.masters:
            for sample in self.sim.stats.latency(f"{name}.txn").histogram.samples:
                merged.add(sample)
        return merged.summary()

    def total_completed(self) -> int:
        return sum(m.completed for m in self.masters.values())

    def ordering_violations(self) -> int:
        return sum(len(m.checker.violations) for m in self.masters.values())


def build_bus_soc(
    initiators: List[InitiatorSpec],
    targets: List[TargetSpec],
    arbitration: str = "rr",
    bridge_latency: int = 2,
    max_burst_beats: int = 16,
    trace: Optional[Tracer] = None,
) -> BusSoc:
    """Build the Fig-2 baseline from the same specs as the NoC builder."""
    if not initiators or not targets:
        raise ValueError("bus SoC needs at least one initiator and one target")
    sim = Simulator(trace=trace)

    address_map = AddressMap()
    cursor = 0
    for index, spec in enumerate(targets):
        base = spec.base if spec.base is not None else cursor
        try:
            address_map.add_range(
                base, spec.size, slv_addr=index, name=spec.name
            )
        except ValueError as exc:
            raise ValueError(
                f"target {spec.name!r}: explicit base {base:#x} aliases an "
                f"already-assigned range in the bus address map ({exc})"
            ) from exc
        cursor = max(cursor, base + spec.size)

    bus = SharedBus(
        "bus",
        sim,
        address_map,
        arbitration=arbitration,
        max_burst_beats=max_burst_beats,
    )
    for index, spec in enumerate(targets):
        base = address_map.range_for_target(index)[0].base
        bus.add_target(
            spec.name,
            base=base,
            size=spec.size,
            read_latency=spec.read_latency,
            write_latency=spec.write_latency,
            slv_addr=index,
        )

    masters: Dict[str, ProtocolMaster] = {}
    bridges: Dict[str, Bridge] = {}
    for spec in initiators:
        master_cls = _MASTER_CLASSES[spec.protocol]
        master = master_cls(spec.name, sim, spec.traffic, **spec.protocol_kwargs)
        sim.add(master)
        bridge = Bridge(
            f"{spec.name}.bridge",
            master,
            spec.protocol,
            bus,
            latency=bridge_latency,
        )
        sim.add(bridge)
        masters[spec.name] = master
        bridges[spec.name] = bridge
    # The bus ticks after bridges so same-cycle requests are visible the
    # next cycle (queues enforce this anyway; order is for determinism).
    sim.add(bus)

    return BusSoc(sim, bus, address_map, masters, bridges)
