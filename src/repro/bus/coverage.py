"""Feature-coverage matrices: what survives a bridge vs. an NIU.

Paper §2: bridges "do not support the full set of VC transactions
because they are limited by the interconnect protocol and physical
design".  These tables make that loss explicit and benchmark E8 prints
them.  Classification per (protocol feature, attachment):

- ``NATIVE`` — carried with full semantics;
- ``EMULATED`` — functionally preserved but with degraded behaviour
  (e.g. non-blocking exclusives emulated by blocking bus locks);
- ``LOST`` — semantics silently narrowed or unavailable.
"""

from __future__ import annotations

import enum
from typing import Dict, List


class FeatureSupport(enum.Enum):
    NATIVE = "NATIVE"
    EMULATED = "EMULATED"
    LOST = "LOST"

    @property
    def score(self) -> float:
        return {"NATIVE": 1.0, "EMULATED": 0.5, "LOST": 0.0}[self.value]


#: Features exercised by the workloads, per protocol.
PROTOCOL_FEATURES: Dict[str, List[str]] = {
    "AHB": ["bursts", "locked_sequences", "full_ordering"],
    "AXI": [
        "bursts",
        "out_of_order_ids",
        "independent_rw_channels",
        "exclusive_access",
        "qos_signalling",
    ],
    "OCP": [
        "bursts",
        "threads",
        "posted_writes",
        "lazy_synchronization",
    ],
    "PVCI": ["bursts", "full_ordering"],
    "BVCI": ["bursts", "full_ordering", "locked_sequences", "pipelining"],
    "AVCI": ["bursts", "pipelining", "out_of_order_ids"],
    "PROPRIETARY": ["bursts", "posted_writes", "fence"],
}

#: NoC NIU attachment: the transaction layer was *designed* for the
#: union of socket features, so everything is native (paper's claim).
NIU_COVERAGE: Dict[str, Dict[str, FeatureSupport]] = {
    protocol: {feature: FeatureSupport.NATIVE for feature in features}
    for protocol, features in PROTOCOL_FEATURES.items()
}

#: Bridge-to-reference-bus attachment.  The reference socket is the
#: AHB-flavoured bus of :mod:`repro.bus.shared_bus`: single outstanding
#: transfer, in-order, bus locking, INCR/WRAP bursts <= 16 beats,
#: acknowledged writes only, no threads/IDs/QoS.
BRIDGE_COVERAGE: Dict[str, Dict[str, FeatureSupport]] = {
    "AHB": {
        "bursts": FeatureSupport.NATIVE,
        "locked_sequences": FeatureSupport.NATIVE,
        "full_ordering": FeatureSupport.NATIVE,
    },
    "AXI": {
        "bursts": FeatureSupport.EMULATED,  # FIXED bursts split to singles
        "out_of_order_ids": FeatureSupport.LOST,  # serialized to one stream
        "independent_rw_channels": FeatureSupport.LOST,  # one bus port
        "exclusive_access": FeatureSupport.EMULATED,  # via blocking bus lock
        "qos_signalling": FeatureSupport.LOST,  # bus arbiter ignores AxQOS
    },
    "OCP": {
        "bursts": FeatureSupport.NATIVE,
        "threads": FeatureSupport.LOST,  # serialized to one stream
        "posted_writes": FeatureSupport.EMULATED,  # acknowledged on the bus
        "lazy_synchronization": FeatureSupport.EMULATED,  # blocking lock
    },
    "PVCI": {
        "bursts": FeatureSupport.NATIVE,
        "full_ordering": FeatureSupport.NATIVE,
    },
    "BVCI": {
        "bursts": FeatureSupport.NATIVE,
        "full_ordering": FeatureSupport.NATIVE,
        "locked_sequences": FeatureSupport.NATIVE,
        "pipelining": FeatureSupport.LOST,  # one outstanding on the bus
    },
    "AVCI": {
        "bursts": FeatureSupport.NATIVE,
        "pipelining": FeatureSupport.LOST,
        "out_of_order_ids": FeatureSupport.LOST,
    },
    "PROPRIETARY": {
        "bursts": FeatureSupport.NATIVE,
        "posted_writes": FeatureSupport.EMULATED,
        "fence": FeatureSupport.EMULATED,  # trivial once serialized
    },
}


def coverage_matrix(attachment: str) -> Dict[str, Dict[str, FeatureSupport]]:
    """``attachment`` is ``"niu"`` or ``"bridge"``."""
    if attachment == "niu":
        return NIU_COVERAGE
    if attachment == "bridge":
        return BRIDGE_COVERAGE
    raise ValueError(f"unknown attachment {attachment!r} (niu|bridge)")


def coverage_score(protocol: str, attachment: str) -> float:
    """Mean feature score in [0, 1] for one protocol and attachment."""
    matrix = coverage_matrix(attachment)
    features = matrix[protocol.upper()]
    return sum(s.score for s in features.values()) / len(features)


def format_matrix(attachment: str) -> str:
    """Printable matrix for benches and EXPERIMENTS.md."""
    matrix = coverage_matrix(attachment)
    lines = [f"feature coverage via {attachment.upper()}:"]
    for protocol in sorted(matrix):
        entries = ", ".join(
            f"{feat}={sup.value}" for feat, sup in sorted(matrix[protocol].items())
        )
        lines.append(
            f"  {protocol:<12} score={coverage_score(protocol, attachment):.2f}"
            f"  ({entries})"
        )
    return "\n".join(lines)
