"""Per-protocol bridges onto the reference-socket bus (Fig 2).

A bridge is what the paper says it is: a converter that pays latency
(pipeline registers each way), pays area (two protocol front-ends plus
conversion buffering — see :func:`repro.niu.gate_count.bridge_gate_count`)
and *narrows* the socket's feature set to whatever the reference socket
can express:

- multi-threaded / multi-ID sockets are serialized to one outstanding
  transfer;
- bursts longer than the bus cap (or FIXED bursts) are split;
- posted writes become acknowledged bus writes;
- non-blocking exclusives are emulated with blocking bus locks.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.core.transaction import Opcode, ResponseStatus, Transaction
from repro.bus.shared_bus import BusOp, BusReply, SharedBus
from repro.protocols.ahb import AhbResponse, hresp_from_status
from repro.protocols.axi import AxiB, AxiR, xresp_from_status
from repro.protocols.base import ProtocolMaster
from repro.protocols.ocp import OcpResponse, SResp
from repro.protocols.proprietary import MsgKind, MsgResponse
from repro.protocols.vci import VciResponse, rerror_from_status
from repro.sim.component import Component

#: request channel(s) per protocol, in polling order.
_REQ_CHANNELS = {
    "AHB": ["req"],
    "AXI": ["ar", "aw"],
    "OCP": ["req"],
    "PVCI": ["cmd"],
    "BVCI": ["cmd"],
    "AVCI": ["cmd"],
    "PROPRIETARY": ["msg"],
}


class Bridge(Component):
    """Socket → reference-bus converter for one master."""

    def __init__(
        self,
        name: str,
        master: ProtocolMaster,
        protocol: str,
        bus: SharedBus,
        latency: int = 2,
    ) -> None:
        super().__init__(name)
        self.master = master
        self.protocol = protocol.upper()
        if self.protocol not in _REQ_CHANNELS:
            raise ValueError(f"no bridge for protocol {self.protocol!r}")
        self.bus = bus
        self.latency = latency
        self.index = bus.attach_master(name)
        self._req_queue = bus.request_queues[self.index]
        self._rsp_queue = bus.reply_queues[self.index]
        self._prefer_first = True  # AXI ar/aw fairness
        # One intent at a time (the serialization penalty).
        self._incoming: Optional[Tuple[int, Transaction]] = None  # (ready, txn)
        self._ops: List[BusOp] = []
        self._parts_done = 0
        self._parts_total = 0
        self._current: Optional[Transaction] = None
        self._status = ResponseStatus.OKAY
        self._data: List[int] = []
        self._outgoing: Deque[Tuple[int, Transaction]] = deque()  # (ready, txn)
        self.intents_converted = 0
        self.splits = 0
        self.lock_emulations = 0
        self.serialization_stall_cycles = 0

    # ------------------------------------------------------------------ #
    # native side
    # ------------------------------------------------------------------ #
    def _pull_native(self) -> Optional[Transaction]:
        channels = _REQ_CHANNELS[self.protocol]
        if self.protocol == "AXI" and not self._prefer_first:
            channels = list(reversed(channels))
        for channel_name in channels:
            channel = self.master.socket.req(channel_name)
            if not channel:
                continue
            record = channel.peek()
            txn = record.txn
            assert txn is not None, "bridge needs the record sideband"
            if self.protocol == "PROPRIETARY" and record.kind is MsgKind.FENCE:
                # Serial bridge: a fence is satisfied whenever nothing is
                # in flight — which is exactly when we are pulling.
                ack = self.master.socket.rsp("ack")
                if ack.can_push():
                    channel.pop()
                    ack.push(MsgResponse(ok=True, txn_id=txn.txn_id))
                continue
            channel.pop()
            if self.protocol == "AXI":
                self._prefer_first = channel_name == "aw"
            return txn
        return None

    def _push_native_response(self, txn: Transaction) -> None:
        """Convert the aggregated bus reply back to the native socket."""
        status, data = self._status, self._data or None
        if txn.opcode is Opcode.STORE_POSTED:
            return  # master completed at acceptance; drop the bus ack
        if self.protocol == "AHB":
            self.master.socket.rsp("rsp").push(
                AhbResponse(
                    txn_id=txn.txn_id,
                    hresp=hresp_from_status(status),
                    hrdata=data,
                )
            )
        elif self.protocol == "AXI":
            if status is ResponseStatus.OKAY and txn.excl:
                status = ResponseStatus.EXOKAY  # lock emulation always wins
            if txn.opcode.is_read:
                self.master.socket.rsp("r").push(
                    AxiR(
                        rid=txn.txn_tag,
                        rdata=data or [],
                        rresp=xresp_from_status(status),
                        txn_id=txn.txn_id,
                    )
                )
            else:
                self.master.socket.rsp("b").push(
                    AxiB(
                        bid=txn.txn_tag,
                        bresp=xresp_from_status(status),
                        txn_id=txn.txn_id,
                    )
                )
        elif self.protocol == "OCP":
            if status.is_error:
                sresp = SResp.ERR
            else:
                sresp = SResp.DVA  # lazy-sync emulated by lock: never FAIL
            self.master.socket.rsp("rsp").push(
                OcpResponse(
                    sresp=sresp,
                    sthreadid=txn.thread,
                    sdata=data,
                    txn_id=txn.txn_id,
                )
            )
        elif self.protocol in ("PVCI", "BVCI", "AVCI"):
            self.master.socket.rsp("rsp").push(
                VciResponse(
                    rerror=rerror_from_status(status),
                    rdata=data,
                    rtrdid=txn.txn_tag,
                    txn_id=txn.txn_id,
                )
            )
        else:  # PROPRIETARY
            self.master.socket.rsp("ack").push(
                MsgResponse(
                    ok=not status.is_error, data=data, txn_id=txn.txn_id
                )
            )

    # ------------------------------------------------------------------ #
    # conversion
    # ------------------------------------------------------------------ #
    def _convert(self, txn: Transaction) -> List[BusOp]:
        opcode = txn.opcode
        locked = False
        if txn.excl:
            # Non-blocking exclusive → blocking bus-lock emulation.
            opcode = Opcode.READEX if txn.opcode.is_read else Opcode.STORE_COND_LOCKED
            locked = True
            self.lock_emulations += 1
        elif opcode is Opcode.STORE_POSTED:
            opcode = Opcode.STORE  # reference socket acknowledges writes
        elif opcode.is_locking:
            locked = True
        addresses = txn.beat_addresses()
        cap = self.bus.max_burst_beats
        chunks: List[Tuple[List[int], Optional[List[int]]]] = []
        for start in range(0, txn.beats, cap):
            end = min(start + cap, txn.beats)
            chunk_data = (
                list(txn.data[start:end]) if txn.data is not None else None
            )
            chunks.append((addresses[start:end], chunk_data))
        if len(chunks) > 1:
            self.splits += 1
        ops = []
        for part, (addr_chunk, data_chunk) in enumerate(chunks):
            ops.append(
                BusOp(
                    master_index=self.index,
                    opcode=opcode,
                    address=addr_chunk[0],
                    beats=len(addr_chunk),
                    beat_bytes=txn.beat_bytes,
                    addresses=addr_chunk,
                    data=data_chunk,
                    locked=locked,
                    priority=txn.priority,
                    txn_id=txn.txn_id,
                    part=part,
                    parts=len(chunks),
                )
            )
        return ops

    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> None:
        # 1. deliver matured native responses (bridge egress latency).
        while self._outgoing and self._outgoing[0][0] <= cycle:
            __, txn = self._outgoing.popleft()
            self._push_native_response(txn)

        # 2. collect bus replies for the in-flight intent.
        while self._rsp_queue:
            reply: BusReply = self._rsp_queue.pop()
            assert self._current is not None
            if reply.status.is_error and not self._status.is_error:
                self._status = reply.status
            if reply.data:
                self._data.extend(reply.data)
            self._parts_done += 1
            if self._parts_done == self._parts_total:
                self._outgoing.append((cycle + self.latency, self._current))
                self._current = None
                self._ops = []

        # 3. push the next op of the current intent onto the bus.
        if self._ops and self._req_queue.can_push():
            self._req_queue.push(self._ops.pop(0))

        # 4. accept / mature a new intent (one at a time).
        if self._current is None and self._incoming is None:
            txn = self._pull_native()
            if txn is not None:
                self._incoming = (cycle + self.latency, txn)
        elif self._incoming is None and self._pull_would_find(cycle):
            self.serialization_stall_cycles += 1
        if self._incoming is not None and self._incoming[0] <= cycle:
            __, txn = self._incoming
            if self._current is None:
                self._incoming = None
                self._current = txn
                self._ops = self._convert(txn)
                self._parts_done = 0
                self._parts_total = len(self._ops)
                self._status = ResponseStatus.OKAY
                self._data = []
                self.intents_converted += 1

    def _pull_would_find(self, cycle: int) -> bool:
        return any(
            bool(self.master.socket.req(ch)) for ch in _REQ_CHANNELS[self.protocol]
        )

    def idle(self) -> bool:
        return (
            self._current is None
            and self._incoming is None
            and not self._outgoing
            and not self._ops
        )
