"""The Fig-2 baseline: a reference-socket shared bus with bridges.

"In practice … the interconnect has its own reference socket standard.
Bridges to the reference standard are used [to] plug the IP blocks"
(paper §2).  This package models that usual system:

- :mod:`repro.bus.shared_bus` — an AHB-flavoured multi-master shared bus
  (single transfer in flight, bus-level locking, bounded bursts);
- :mod:`repro.bus.bridge` — per-protocol bridges that serialize, split
  and downgrade socket transactions into the reference protocol, paying
  area and latency and *losing features* (claim C1);
- :mod:`repro.bus.coverage` — the feature-coverage matrices quantifying
  which VC transactions survive a bridge vs. an NIU (benchmark E8).
"""

from repro.bus.bridge import Bridge
from repro.bus.coverage import FeatureSupport, coverage_matrix, coverage_score
from repro.bus.shared_bus import SharedBus
from repro.bus.system import BusSoc, build_bus_soc

__all__ = [
    "Bridge",
    "BusSoc",
    "FeatureSupport",
    "SharedBus",
    "build_bus_soc",
    "coverage_matrix",
    "coverage_score",
]
