"""AHB-flavoured multi-master shared bus (the Fig-2 reference socket).

One transfer occupies the bus from grant to response — including slave
wait states, the classic shared-bus bottleneck (no SPLIT/RETRY credit is
given to the baseline; DESIGN.md records this as the AHB-without-split
worst case, which matches most shipped AHB fabrics of the era).

Reference-socket feature set (what bridges must down-convert to):
single outstanding transfer per master and on the bus, strict in-order
completion, INCR/WRAP bursts up to ``max_burst_beats``, acknowledged
writes only, bus-level locking for synchronization, no threads / IDs /
QoS signalling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.address_map import AddressMap
from repro.core.transaction import Opcode, ResponseStatus
from repro.ip.slaves import ByteStore
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.sim.queue import SimQueue

#: Largest burst the reference socket can carry (AHB INCR16).
DEFAULT_MAX_BURST_BEATS = 16


@dataclass
class BusOp:
    """One reference-socket transfer queued by a bridge."""

    master_index: int
    opcode: Opcode
    address: int
    beats: int
    beat_bytes: int
    addresses: List[int]
    data: Optional[List[int]] = None
    locked: bool = False
    priority: int = 0
    txn_id: int = -1
    part: int = 0
    parts: int = 1


@dataclass
class BusReply:
    """Completion delivered back to the issuing bridge."""

    txn_id: int
    status: ResponseStatus
    data: Optional[List[int]]
    part: int
    parts: int
    opcode: Opcode


@dataclass
class _BusTarget:
    name: str
    base: int
    size: int
    read_latency: int
    write_latency: int
    store: ByteStore = field(default_factory=ByteStore)


class SharedBus(Component):
    """The arbitrated reference-socket bus."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        address_map: AddressMap,
        arbitration: str = "rr",
        max_burst_beats: int = DEFAULT_MAX_BURST_BEATS,
    ) -> None:
        super().__init__(name)
        if arbitration not in ("rr", "fixed", "priority"):
            raise ValueError(f"unknown bus arbitration {arbitration!r}")
        self.sim = sim
        self.address_map = address_map
        self.arbitration = arbitration
        self.max_burst_beats = max_burst_beats
        self._targets: Dict[int, _BusTarget] = {}
        self.request_queues: List[SimQueue] = []
        self.reply_queues: List[SimQueue] = []
        self._active: Optional[Tuple[int, BusOp, BusReply]] = None  # (done, ...)
        self.lock_holder: Optional[int] = None
        self._rr_last = -1
        self.transfers = 0
        self.busy_cycles = 0
        self.lock_held_cycles = 0
        self.grant_wait_cycles = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_target(
        self,
        name: str,
        base: int,
        size: int,
        read_latency: int = 4,
        write_latency: int = 2,
        slv_addr: Optional[int] = None,
    ) -> _BusTarget:
        slv = slv_addr if slv_addr is not None else len(self._targets)
        target = _BusTarget(name, base, size, read_latency, write_latency)
        self._targets[slv] = target
        return target

    def attach_master(self, name: str) -> int:
        """Register a bridge; returns its master index."""
        index = len(self.request_queues)
        self.request_queues.append(
            self.sim.new_queue(f"{self.name}.req{index}.{name}", capacity=2)
        )
        self.reply_queues.append(
            self.sim.new_queue(f"{self.name}.rsp{index}.{name}", capacity=2)
        )
        return index

    # ------------------------------------------------------------------ #
    def _target_for(self, address: int) -> Optional[Tuple[int, _BusTarget]]:
        try:
            slv, __ = self.address_map.decode(address)
        except LookupError:
            return None
        target = self._targets.get(slv)
        return (slv, target) if target is not None else None

    def _arbitrate(self, candidates: List[int]) -> int:
        if self.arbitration == "fixed":
            return min(candidates)
        if self.arbitration == "priority":
            best = max(self.request_queues[i].peek(0).priority for i in candidates)
            candidates = [
                i
                for i in candidates
                if self.request_queues[i].peek(0).priority == best
            ]
        # round-robin among (remaining) candidates
        after = [i for i in sorted(candidates) if i > self._rr_last]
        winner = after[0] if after else sorted(candidates)[0]
        self._rr_last = winner
        return winner

    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> None:
        if self.lock_holder is not None:
            self.lock_held_cycles += 1
        # Retire the active transfer.
        if self._active is not None:
            done, op, reply = self._active
            self.busy_cycles += 1
            if cycle < done:
                return
            if not self.reply_queues[op.master_index].can_push():
                return  # hold the bus until the bridge drains (rare)
            self.reply_queues[op.master_index].push(reply)
            if op.opcode in (Opcode.STORE_COND_LOCKED, Opcode.UNLOCK):
                if self.lock_holder == op.master_index:
                    self.lock_holder = None
            self._active = None
            return
        # Grant a new transfer.
        candidates = [
            i
            for i, queue in enumerate(self.request_queues)
            if queue
            and (self.lock_holder is None or self.lock_holder == i)
        ]
        blocked = any(
            queue and i not in candidates
            for i, queue in enumerate(self.request_queues)
        )
        if blocked:
            self.grant_wait_cycles += 1
        if not candidates:
            return
        winner = self._arbitrate(candidates)
        op: BusOp = self.request_queues[winner].pop()
        self._begin(op, cycle)

    def _begin(self, op: BusOp, cycle: int) -> None:
        located = self._target_for(op.address)
        if located is None:
            reply = BusReply(
                txn_id=op.txn_id,
                status=ResponseStatus.DECERR,
                data=None,
                part=op.part,
                parts=op.parts,
                opcode=op.opcode,
            )
            self._active = (cycle + 2, op, reply)
            self.transfers += 1
            return
        __, target = located
        if op.beats > self.max_burst_beats:
            raise ValueError(
                f"{self.name}: bridge sent a {op.beats}-beat burst; the "
                f"reference socket caps at {self.max_burst_beats} "
                f"(bridges must split)"
            )
        # Locking (READEX/LOCK take the bus; paired ops release in tick).
        if op.opcode in (Opcode.READEX, Opcode.LOCK):
            self.lock_holder = op.master_index
        # Perform the access now (bus is serial; no overlap possible).
        status = ResponseStatus.OKAY
        data: Optional[List[int]] = None
        span_ok = all(
            target.base <= a and a + op.beat_bytes <= target.base + target.size
            for a in op.addresses
        )
        if not span_ok:
            status = ResponseStatus.SLVERR
            latency = 2
        elif op.opcode.is_read or op.opcode is Opcode.LOCK:
            data = [
                target.store.read_beat(a - target.base, op.beat_bytes)
                for a in op.addresses
            ]
            latency = target.read_latency
        else:
            payload = op.data or []
            for a, value in zip(op.addresses, payload):
                target.store.write_beat(a - target.base, value, op.beat_bytes)
            latency = target.write_latency
        # Bus occupancy: 1 grant/address cycle + one cycle per beat + the
        # slave's wait states (held on the bus — no SPLIT).
        service = 1 + op.beats + latency
        reply = BusReply(
            txn_id=op.txn_id,
            status=status,
            data=data,
            part=op.part,
            parts=op.parts,
            opcode=op.opcode,
        )
        self._active = (cycle + service, op, reply)
        self.transfers += 1

    # ------------------------------------------------------------------ #
    def idle(self) -> bool:
        return self._active is None and all(
            not queue for queue in self.request_queues
        ) and all(not queue for queue in self.reply_queues)

    def utilization(self, cycles: int) -> float:
        return self.busy_cycles / cycles if cycles else 0.0
