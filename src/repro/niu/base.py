"""Initiator and target NIU engines.

The initiator NIU converts a master socket's native requests into NoC
packets and returns response packets to the socket in the order its
protocol demands.  The split between the generic engine here and the
slim per-protocol subclasses (:mod:`repro.niu.ahb_niu` etc.) is the
paper's compatibility argument made concrete: ordering, tagging, state
tracking and service bits are one shared mechanism; a new socket only
contributes record conversion.

The target NIU terminates the socket protocol at the target side: it
owns the per-target *NoC service* state (exclusive-access monitor, lock
manager) and presents the target IP a neutral read/write interface.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.address_map import AddressMap, DecodeError
from repro.core.packet import NocPacket, PacketKind
from repro.core.services import ExclusiveMonitor, ExclusiveResult, LockManager
from repro.core.transaction import (
    BurstType,
    Opcode,
    ResponseStatus,
    Transaction,
)
from repro.niu.state_table import StateEntry, StateTable
from repro.niu.tag_policy import TagPolicy
from repro.protocols.base import SlaveRequest, SlaveResponse, SlaveSocket
from repro.sim.component import Component
from repro.sim.queue import SimQueue
from repro.sim.snapshot import Snapshottable
from repro.transport.network import Fabric


class InitiatorNiu(Component, Snapshottable):
    """Generic initiator-NIU engine.

    Subclass contract (record conversion only):

    - :meth:`peek_native` — return the :class:`Transaction` encoded by
      the native request at the head of the socket (without consuming
      it), or ``None``;
    - :meth:`pop_native` — consume that request;
    - :meth:`push_native_response` — translate a completed
      :class:`StateEntry` into the native response record and push it to
      the socket; return False if the socket cannot accept it this cycle.
    """

    protocol_name = "BASE"

    def __init__(
        self,
        name: str,
        fabric: Fabric,
        endpoint: int,
        address_map: AddressMap,
        policy: TagPolicy,
        deliveries_per_cycle: int = 1,
        issues_per_cycle: int = 1,
    ) -> None:
        super().__init__(name)
        self.fabric = fabric
        self.endpoint = endpoint
        self.address_map = address_map
        self.policy = policy
        self.deliveries_per_cycle = deliveries_per_cycle
        self.issues_per_cycle = issues_per_cycle
        self.table = StateTable(f"{name}.table", policy.max_outstanding)
        self.requests_sent = 0
        self.responses_delivered = 0
        self.posted_sent = 0
        self.decode_errors = 0
        self.stall_cycles = 0
        # Activity wiring: arriving response packets wake the engine;
        # subclasses attach the socket via _attach_socket.
        self._rsp_packets = fabric.responses(endpoint)
        self._rsp_packets.wake_on_push(self)
        self._native_req_queues: Tuple[SimQueue, ...] = ()
        # peek_native decode cache: a blocked head request is re-peeked
        # every cycle, and native records are immutable once pushed, so
        # subclasses memoize the decoded Transaction by record identity
        # (the cache holds a strong reference, so `is` stays sound).
        self._peek_key = None
        self._peek_txn: Optional[Transaction] = None

    # -- state capture ----------------------------------------------------
    # The peek-cache pair rides along so a restored NIU re-decodes (or
    # not) exactly as the original would; the checkpoint deepcopy keeps
    # `_peek_key is <head record>` aliasing intact.
    _snapshot_fields = (
        "requests_sent",
        "responses_delivered",
        "posted_sent",
        "decode_errors",
        "stall_cycles",
        "_peek_key",
        "_peek_txn",
    )

    def _snapshot_state(self) -> dict:
        state = super()._snapshot_state()
        state["table"] = self.table.snapshot()
        return state

    def _restore_state(self, state) -> None:
        super()._restore_state(state)
        self.table.restore(state["table"])

    def _attach_socket(self, socket) -> None:
        """Store the master socket and register activity wakes.

        Subclasses call this instead of assigning ``self.socket`` so new
        native requests (push) and freed response channels (pop) put the
        NIU back on the schedule.
        """
        self.socket = socket
        self._native_req_queues = tuple(socket.request_channels.values())
        for queue in self._native_req_queues:
            queue.wake_on_push(self)
        for queue in socket.response_channels.values():
            queue.wake_on_pop(self)

    def is_idle(self) -> bool:
        """No outstanding table entries, no arrived responses, and no
        native request waiting: the engine has nothing to advance."""
        if not self._native_req_queues:
            return False  # no socket attached: cannot prove quiescence
        if len(self.table) or self._rsp_packets:
            return False
        for queue in self._native_req_queues:
            if queue:
                return False
        return True

    _next_event_known = True

    def next_event_cycle(self, now: int):
        """Dormant while merely *waiting*: outstanding table entries with
        no arrived response, nothing deliverable and no native request
        make every tick a no-op.  All three re-arming events wake us —
        a response packet push, a native request push, and a freed
        native response slot (registered in __init__/_attach_socket) —
        so the kernel may park the engine until one fires."""
        if not self._native_req_queues:
            return now  # no socket attached: cannot prove dormancy
        if self._rsp_packets or self.table.has_responded:
            return now
        for queue in self._native_req_queues:
            if queue._committed:
                return now
        return None

    # ------------------------------------------------------------------ #
    # subclass interface
    # ------------------------------------------------------------------ #
    def peek_native(self, cycle: int) -> Optional[Transaction]:
        raise NotImplementedError

    def pop_native(self) -> None:
        raise NotImplementedError

    def push_native_response(self, entry: StateEntry) -> bool:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # engine
    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> None:
        self._accept_responses(cycle)
        self._deliver_responses(cycle)
        issued_any, saw_native = self._issue_requests(cycle)
        if not issued_any and saw_native:
            # A native request was visible but could not issue (decoded
            # earlier in _issue_requests — no pops happened on the failed
            # path, so that peek is still authoritative).
            self.stall_cycles += 1

    def _accept_responses(self, cycle: int) -> None:
        queue = self.fabric.responses(self.endpoint)
        while queue._committed:
            packet: NocPacket = queue.pop()
            entry = self.table.match_response(
                packet.tag, packet.slv_addr, txn_id_hint=packet.txn_id
            )
            self.table.mark_responded(
                entry.txn_id, packet.status, packet.payload
            )
            self.simulator.trace.log(
                cycle,
                self.name,
                "rsp_accept",
                txn=entry.txn_id,
                status=packet.status.value,
            )

    def _deliver_responses(self, cycle: int) -> None:
        delivered = 0
        while delivered < self.deliveries_per_cycle:
            ready = self.table.deliverable()
            if not ready:
                return
            progressed = False
            for entry in ready:
                if self.push_native_response(entry):
                    self.table.release(entry.txn_id)
                    self.responses_delivered += 1
                    delivered += 1
                    progressed = True
                    break
            if not progressed:
                return

    def _issue_requests(self, cycle: int) -> Tuple[bool, bool]:
        """Returns (issued anything, saw a native request at all)."""
        issued_any = False
        saw_native = False
        for _ in range(self.issues_per_cycle):
            txn = self.peek_native(cycle)
            if txn is None:
                break
            saw_native = True
            try:
                slv_addr, offset = self.address_map.decode_span(
                    txn.address, txn.total_bytes
                )
            except DecodeError:
                if not self._reject_decode(txn, cycle):
                    break
                issued_any = True
                continue
            if txn.opcode is Opcode.STORE_POSTED:
                if not self.fabric.can_inject_request(self.endpoint):
                    break
                self.pop_native()
                self._inject(txn, slv_addr, offset, tag=self.policy.tag_for(txn))
                self.posted_sent += 1
                issued_any = True
                continue
            if not self.policy.admit(txn, slv_addr, self.table):
                break
            if not self.fabric.can_inject_request(self.endpoint):
                break
            self.pop_native()
            tag = self.policy.tag_for(txn)
            self.table.allocate(
                txn, tag, slv_addr, offset, self.policy.stream_of(txn), cycle
            )
            self._inject(txn, slv_addr, offset, tag)
            issued_any = True
        return issued_any, saw_native

    def _reject_decode(self, txn: Transaction, cycle: int) -> bool:
        """Complete an unmapped address with DECERR, never entering the
        fabric (default-slave behaviour).  Posted stores are dropped."""
        if txn.opcode is Opcode.STORE_POSTED:
            self.pop_native()
            self.decode_errors += 1
            return True
        if not self.table.can_allocate():
            return False
        self.pop_native()
        entry = self.table.allocate(
            txn,
            tag=self.policy.tag_for(txn),
            slv_addr=0,
            offset=0,
            stream=self.policy.stream_of(txn),
            cycle=cycle,
        )
        self.table.mark_responded(
            entry.txn_id, ResponseStatus.DECERR, payload=None
        )
        self.decode_errors += 1
        return True

    def _inject(
        self, txn: Transaction, slv_addr: int, offset: int, tag: int
    ) -> None:
        user: Dict[str, int] = {}
        if txn.excl:
            user["excl"] = 1
        packet = NocPacket(
            kind=PacketKind.REQUEST,
            opcode=txn.opcode,
            slv_addr=slv_addr,
            mst_addr=self.endpoint,
            tag=tag,
            offset=offset,
            beats=txn.beats,
            beat_bytes=txn.beat_bytes,
            burst=txn.burst.value,
            payload=list(txn.data) if txn.data is not None else None,
            priority=txn.priority,
            user=user,
            txn_id=txn.txn_id,
        )
        self.fabric.inject_request(self.endpoint, packet)
        self.requests_sent += 1


class TargetNiu(Component, Snapshottable):
    """Generic target NIU: packets in, neutral slave operations out.

    Owns the per-target NoC-service state: the exclusive-access monitor
    (the "state information in the NIU" of §3) and the lock manager for
    the legacy blocking family.
    """

    def __init__(
        self,
        name: str,
        fabric: Fabric,
        endpoint: int,
        slave_socket: SlaveSocket,
        max_outstanding: int = 4,
        exclusive_monitor: Optional[ExclusiveMonitor] = None,
        lock_manager: Optional[LockManager] = None,
    ) -> None:
        super().__init__(name)
        self.fabric = fabric
        self.endpoint = endpoint
        self.slave_socket = slave_socket
        self.max_outstanding = max_outstanding
        self.monitor = exclusive_monitor
        self.locks = lock_manager
        self._pending: Dict[int, NocPacket] = {}  # token -> request packet
        self._release_on_complete: Dict[int, int] = {}  # token -> mst
        # Lock-blocked requests parked out of the delivery queue (arrival
        # order).  A bystander's request can land in the queue before the
        # holder's LOCK engages — easily under adaptive routing, where
        # packets arrive over several paths — and blocking it at the
        # *head* would head-of-line block the holder's own traffic,
        # including the UNLOCK that ends the critical section: deadlock.
        # Parking keeps per-source FIFO (later packets of a parked master
        # are parked too) while the holder keeps flowing.
        self._parked: List[NocPacket] = []
        self._next_token = 0
        # Responses leave in request-acceptance order so the fabric's
        # per-(initiator, tag) FIFO guarantee holds even when the NIU
        # answers some requests directly (locks, failed exclusives).
        self._order: List[int] = []  # accepted tokens, oldest first
        self._ready: Dict[int, Optional[NocPacket]] = {}  # None = no rsp
        self.requests_served = 0
        self.posted_served = 0
        self.excl_failures = 0
        self.lock_blocked_cycles = 0
        # Activity wiring: arriving request packets and finished target-IP
        # accesses wake the NIU; a drained slave request slot lets a
        # capacity-stalled head packet proceed.
        self._req_packets = fabric.requests(endpoint)
        self._req_packets.wake_on_push(self)
        slave_socket.responses.wake_on_push(self)
        slave_socket.requests.wake_on_pop(self)

    # -- state capture ----------------------------------------------------
    _snapshot_fields = (
        "_pending",
        "_release_on_complete",
        "_parked",
        "_next_token",
        "_order",
        "_ready",
        "requests_served",
        "posted_served",
        "excl_failures",
        "lock_blocked_cycles",
    )

    def _snapshot_state(self) -> dict:
        state = super()._snapshot_state()
        if self.monitor is not None:
            state["monitor"] = self.monitor.snapshot()
        if self.locks is not None:
            state["locks"] = self.locks.snapshot()
        return state

    def _restore_state(self, state) -> None:
        super()._restore_state(state)
        if self.monitor is not None:
            self.monitor.restore(state["monitor"])
        if self.locks is not None:
            self.locks.restore(state["locks"])

    # ------------------------------------------------------------------ #
    def is_idle(self) -> bool:
        """No packet waiting, nothing outstanding at the target IP, and
        no response pending injection: the NIU has nothing to advance.
        A non-empty parked list keeps the NIU scheduled (conservative:
        the lock state it waits on changes inside our own ticks)."""
        return not (
            self._req_packets
            or self._order
            or self._pending
            or self._parked
            or self.slave_socket.responses
        )

    _next_event_known = True

    def next_event_cycle(self, now: int):
        """Dormant while every accepted request is at the target IP and
        nothing else needs the engine: no delivered packet, no finished
        access to absorb, no response ready to inject, no lock-parked
        packet (parked heads do per-cycle blocked accounting).  The
        re-arming events — request-packet push and slave-response push —
        are wake-registered in __init__."""
        if (
            self._req_packets
            or self._parked
            or self.slave_socket.responses._committed
        ):
            return now
        order = self._order
        if order and order[0] in self._ready:
            return now  # response ready: retry injection every cycle
        return None

    def tick(self, cycle: int) -> None:
        self._return_responses(cycle)
        self._accept_requests(cycle)

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    def _accept_requests(self, cycle: int) -> None:
        queue = self.fabric.requests(self.endpoint)
        if self.locks is not None:
            # Park lock-blocked heads aside so a bystander that slipped
            # into the queue around the LOCK can never head-of-line
            # block the holder's traffic (see _parked).  Per-source FIFO
            # is preserved: later packets of a parked master park too.
            while queue:
                head: NocPacket = queue.peek()
                mst = head.mst_addr
                if self.locks.may_proceed(mst) and not any(
                    parked.mst_addr == mst for parked in self._parked
                ):
                    break
                self._parked.append(queue.pop())
            if self._parked:
                # Serve the oldest parked packet whose master may now
                # proceed (one packet per cycle, parked first: they are
                # the oldest arrivals).  Blocked-cycle accounting counts
                # only cycles in which some parked packet is actually
                # refused — not the post-UNLOCK drain.
                servable = None
                blocked = False
                for index, packet in enumerate(self._parked):
                    if self.locks.may_proceed(packet.mst_addr):
                        if servable is None:
                            servable = index
                    else:
                        blocked = True
                if blocked:
                    self.locks.note_blocked()
                    self.lock_blocked_cycles += 1
                if servable is not None:
                    packet = self._parked[servable]
                    if self._serve_packet(packet, cycle):
                        del self._parked[servable]
                    return
        if not queue:
            return
        packet = queue.peek()
        if self._serve_packet(packet, cycle):
            queue.pop()

    def _serve_packet(self, packet: NocPacket, cycle: int) -> bool:
        """Serve one delivered request; True when the packet is consumed.

        False means a capacity gate stalled it (socket slot, outstanding
        window, response injection) — the caller keeps it queued/parked
        and retries next cycle.  Capacity gates come before any state
        change so a stalled cycle has no side effects (in particular:
        the exclusive reservation must be consumed exactly once).
        """
        if packet.opcode is Opcode.LOCK:
            return self._serve_lock(packet, cycle)
        if packet.opcode is Opcode.UNLOCK:
            return self._serve_unlock(packet, cycle)
        excl = bool(packet.user.get("excl"))
        if excl and packet.opcode.is_write and self.monitor is None:
            self._respond_direct(packet, ResponseStatus.SLVERR)
            return True
        if not self.slave_socket.requests.can_push():
            return False
        if len(self._pending) >= self.max_outstanding:
            return False
        if excl and packet.opcode.is_write:
            # Decide *before* touching the target: a failed exclusive
            # store must not modify memory.
            result = self.monitor.exclusive_store(
                packet.mst_addr, packet.offset, packet.beats * packet.beat_bytes
            )
            if result is ExclusiveResult.OKAY_FAILED:
                self.excl_failures += 1
                self._respond_direct(packet, ResponseStatus.OKAY)
                return True
            # EXOKAY: fall through and perform the write.
        self._forward(packet, excl, cycle)
        return True

    def _allocate_token(self) -> int:
        token = self._next_token
        self._next_token += 1
        self._order.append(token)
        return token

    def _serve_lock(self, packet: NocPacket, cycle: int) -> bool:
        assert self.locks is not None, "LOCK packet at target without lock support"
        if not self.locks.acquire(packet.mst_addr):
            return False  # holder active; stall (may_proceed covered re-check)
        token = self._allocate_token()
        self._ready[token] = packet.make_response(ResponseStatus.OKAY)
        self.requests_served += 1
        self.simulator.trace.log(
            cycle, self.name, "lock_acquired", master=packet.mst_addr
        )
        return True

    def _serve_unlock(self, packet: NocPacket, cycle: int) -> bool:
        assert self.locks is not None
        self.locks.release(packet.mst_addr)
        token = self._allocate_token()
        self._ready[token] = packet.make_response(ResponseStatus.OKAY)
        self.requests_served += 1
        self.simulator.trace.log(
            cycle, self.name, "lock_released", master=packet.mst_addr
        )
        return True

    def _respond_direct(self, packet: NocPacket, status: ResponseStatus) -> None:
        """Complete at the NIU without involving the target IP."""
        payload = None
        if packet.opcode.is_read and not status.is_error:
            payload = [0] * packet.beats
        token = self._allocate_token()
        self._ready[token] = packet.make_response(status, payload=payload)
        self.requests_served += 1

    def _forward(self, packet: NocPacket, excl: bool, cycle: int) -> None:
        span = packet.beats * packet.beat_bytes
        if self.locks is not None:
            if packet.opcode is Opcode.READEX:
                # Locked read: take the lock for this master.
                self.locks.acquire(packet.mst_addr)
            elif packet.opcode is Opcode.STORE_COND_LOCKED:
                # Locked write: release once the write completes.
                pass  # handled at response time via _release_on_complete
        if self.monitor is not None:
            if excl and packet.opcode.is_read:
                self.monitor.exclusive_load(
                    packet.mst_addr, packet.offset, span, cycle
                )
            elif packet.opcode.is_write:
                self.monitor.observe_store(packet.mst_addr, packet.offset, span)
        token = self._allocate_token()
        self._pending[token] = packet
        if packet.opcode is Opcode.STORE_COND_LOCKED and self.locks is not None:
            self._release_on_complete[token] = packet.mst_addr
        burst = BurstType[packet.burst]
        self.slave_socket.requests.push(
            SlaveRequest(
                read=packet.opcode.is_read,
                offset=packet.offset,
                beats=packet.beats,
                beat_bytes=packet.beat_bytes,
                addresses=burst.addresses(
                    packet.offset, packet.beats, packet.beat_bytes
                ),
                data=list(packet.payload) if packet.payload is not None else None,
                token=token,
            )
        )
        self.requests_served += 1

    # ------------------------------------------------------------------ #
    # response path
    # ------------------------------------------------------------------ #
    def _return_responses(self, cycle: int) -> None:
        # Absorb finished target-IP accesses into the ready map.
        responses = self.slave_socket.responses
        while responses._committed:
            slave_rsp: SlaveResponse = responses.pop()
            packet = self._pending.pop(slave_rsp.token)
            if packet.opcode.expects_response:
                status = slave_rsp.status
                if packet.user.get("excl") and not status.is_error:
                    status = ResponseStatus.EXOKAY
                self._ready[slave_rsp.token] = packet.make_response(
                    status, payload=slave_rsp.data
                )
            else:
                self._ready[slave_rsp.token] = None  # posted: no response
                self.posted_served += 1
            mst = self._release_on_complete.pop(slave_rsp.token, None)
            if mst is not None:
                self.locks.release(mst)
        # Inject strictly in request-acceptance order.
        while self._order and self._order[0] in self._ready:
            token = self._order[0]
            response = self._ready[token]
            if response is not None:
                if not self.fabric.can_inject_response(self.endpoint):
                    return
                self.fabric.inject_response(self.endpoint, response)
            del self._ready[token]
            self._order.pop(0)

    @property
    def outstanding(self) -> int:
        return len(self._pending) + len(self._order) + len(self._parked)
