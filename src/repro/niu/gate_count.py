"""Analytic NIU gate-count model (benchmark E4).

The paper claims the field-assignment policy lets NIUs "scal[e] their
gate count to their expected performance within the system".  This model
makes that scaling measurable.  It charges standard-cell-heuristic gate
counts for each structure a NIU configuration instantiates:

- protocol front-end FSM + channel registers (per-protocol constant);
- the state lookup table: entries × entry-bits, flop-based;
- response-matching CAM over the state table (tag+target compare);
- the reorder buffer when the policy allows multiple outstanding targets
  per stream (data-width dependent);
- packet build/parse datapath (header width dependent);
- optional service state: exclusive monitor reservations, lock manager.

Absolute numbers are heuristic (flop ≈ 6 NAND2-equivalents, CAM bit ≈ 10,
SRAM-as-flops for small tables); the experiment's claim is about the
*shape*: linear growth in outstanding transactions, protocol-dependent
offsets, and a multi-target surcharge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.packet import PacketFormat
from repro.niu.tag_policy import TagPolicy

# Gate-equivalents per primitive (NAND2-equivalent heuristics).
GATES_PER_FLOP = 6.0
GATES_PER_CAM_BIT = 10.0
GATES_PER_MUX_BIT = 3.0
GATES_PER_COMPARATOR_BIT = 4.0

#: Protocol front-end complexity: control FSM states and channel
#: register bits, calibrated so relative ordering matches published
#: bridge/interface IP sizes (AHB < OCP ≈ VCI < AXI).
PROTOCOL_FRONTEND = {
    "AHB": {"fsm_gates": 900.0, "channel_bits": 110},
    "PVCI": {"fsm_gates": 600.0, "channel_bits": 80},
    "BVCI": {"fsm_gates": 1000.0, "channel_bits": 120},
    "AVCI": {"fsm_gates": 1400.0, "channel_bits": 150},
    "OCP": {"fsm_gates": 1200.0, "channel_bits": 140},
    "AXI": {"fsm_gates": 1800.0, "channel_bits": 220},
    "PROPRIETARY": {"fsm_gates": 500.0, "channel_bits": 70},
}


@dataclass
class GateReport:
    """Gate-count breakdown for one NIU configuration."""

    protocol: str
    total: float = 0.0
    breakdown: Dict[str, float] = field(default_factory=dict)

    def add(self, item: str, gates: float) -> None:
        self.breakdown[item] = self.breakdown.get(item, 0.0) + gates
        self.total += gates

    def describe(self) -> str:
        lines = [f"{self.protocol} NIU: {self.total:,.0f} gates"]
        for item, gates in sorted(self.breakdown.items()):
            lines.append(f"  {item:<24} {gates:>10,.0f}")
        return "\n".join(lines)


def state_entry_bits(fmt: PacketFormat, data_beats: int = 0) -> int:
    """Bits stored per state-table entry.

    Tag + target + opcode + stream key + sequence + status, plus payload
    beats when the entry doubles as a reorder-buffer slot.
    """
    control = (
        fmt.tag_bits
        + fmt.slv_addr_bits
        + 3  # opcode
        + 8  # stream key (thread/ID snapshot)
        + 8  # stream sequence
        + 2  # status
        + 2  # bookkeeping flags
    )
    return control + data_beats * 32


def niu_gate_count(
    protocol: str,
    policy: TagPolicy,
    fmt: PacketFormat,
    reorder_data_beats: int = 4,
    exclusive_monitor_entries: int = 0,
    lock_manager: bool = False,
) -> GateReport:
    """Gate count for one initiator-NIU configuration.

    ``reorder_data_beats`` is the response payload depth a reorder slot
    must hold (the NIU cannot hand a reordered read to the socket until
    it has buffered its data).
    """
    protocol = protocol.upper()
    try:
        frontend = PROTOCOL_FRONTEND[protocol]
    except KeyError:
        raise KeyError(
            f"unknown protocol {protocol!r}; known: {sorted(PROTOCOL_FRONTEND)}"
        ) from None

    report = GateReport(protocol=protocol)

    # 1. Protocol front end.
    report.add("frontend_fsm", frontend["fsm_gates"])
    report.add("channel_regs", frontend["channel_bits"] * GATES_PER_FLOP)

    # 2. State lookup table (control bits only).
    control_bits = state_entry_bits(fmt, data_beats=0)
    report.add(
        "state_table",
        policy.max_outstanding * control_bits * GATES_PER_FLOP,
    )

    # 3. Response-match CAM: every entry compares (tag, slv_addr).
    cam_bits = fmt.tag_bits + fmt.slv_addr_bits
    report.add(
        "match_cam",
        policy.max_outstanding * cam_bits * GATES_PER_CAM_BIT,
    )

    # 4. Reorder buffer (multi-target streams only).
    if policy.reorder_entries:
        report.add(
            "reorder_buffer",
            policy.reorder_entries
            * reorder_data_beats
            * 32
            * GATES_PER_FLOP,
        )

    # 5. Packet build/parse datapath.
    header_bits = fmt.header_bits()
    report.add("packet_datapath", header_bits * (GATES_PER_MUX_BIT * 4))

    # 6. Optional NoC-service state.
    if exclusive_monitor_entries:
        entry_bits = fmt.mst_addr_bits + 32 + 6  # initiator + addr + span
        report.add(
            "exclusive_monitor",
            exclusive_monitor_entries
            * entry_bits
            * (GATES_PER_FLOP + GATES_PER_COMPARATOR_BIT),
        )
    if lock_manager:
        report.add(
            "lock_manager",
            (fmt.mst_addr_bits + 4) * GATES_PER_FLOP + 200.0,
        )
    return report


def bridge_gate_count(
    protocol: str,
    reference_protocol: str = "AHB",
    buffer_beats: int = 8,
) -> GateReport:
    """Gate count of a Fig-2 style bridge (socket → bus reference socket).

    A bridge needs *two* protocol front-ends plus conversion buffering —
    which is why per-socket bridges cost more area than per-socket NIUs
    sharing one uniform packet datapath (claim C1).
    """
    protocol = protocol.upper()
    report = GateReport(protocol=f"{protocol}->{reference_protocol} bridge")
    for side, proto in (("socket_side", protocol), ("bus_side", reference_protocol)):
        frontend = PROTOCOL_FRONTEND[proto.upper()]
        report.add(f"{side}_fsm", frontend["fsm_gates"])
        report.add(
            f"{side}_regs", frontend["channel_bits"] * GATES_PER_FLOP
        )
    report.add(
        "conversion_buffer", buffer_beats * 32 * GATES_PER_FLOP
    )
    report.add("burst_resegmenter", 700.0)
    report.add("ordering_serializer", 500.0)
    return report
