"""SlvAddr/MstAddr/Tag assignment policy.

Paper §3: "The ordering model adapts to the fully-ordered AHB, the
multi-threaded OCP and the ID-based AXI ordering models using a careful
assignment policy of these fields from the OCP or AXI ones such as
ThreadID and TID.  Further, this policy is flexible and allows NIUs to
support one or many simultaneously outstanding transactions and/or
targets, scaling their gate count to their expected performance."

:class:`TagPolicy` is that policy.  Its knobs:

- ``max_outstanding`` — total state-table entries (gates!);
- ``per_stream_outstanding`` — pipelining depth within one ordering
  stream (1 = strictly serial, AHB-minimal);
- ``multi_target`` — whether one stream may have transactions in flight
  to *several* targets at once.  If False the NIU stalls on a target
  switch (cheap, no reordering possible); if True the state table doubles
  as a reorder buffer (more gates, more throughput) because responses
  from different targets can return out of order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ordering import OrderingModel
from repro.core.transaction import Transaction
from repro.niu.state_table import StateTable, StreamKey


@dataclass(frozen=True)
class TagPolicy:
    """One NIU's field-assignment policy."""

    ordering: OrderingModel
    tag_bits: int = 4
    max_outstanding: int = 8
    per_stream_outstanding: int = 4
    multi_target: bool = True

    def __post_init__(self) -> None:
        if self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        if self.per_stream_outstanding < 1:
            raise ValueError("per_stream_outstanding must be >= 1")
        if self.tag_bits < 1:
            raise ValueError("tag_bits must be >= 1")

    # ------------------------------------------------------------------ #
    # field assignment
    # ------------------------------------------------------------------ #
    def stream_of(self, txn: Transaction) -> StreamKey:
        """The ordering stream a transaction belongs to."""
        return self.ordering.stream_key(txn.thread, txn.txn_tag)

    def tag_for(self, txn: Transaction) -> int:
        """The NoC ``Tag`` carried in packets for this transaction.

        - fully ordered sockets: constant 0 (one stream, minimal state);
        - threaded sockets: the ThreadID, folded into the tag space;
        - ID-based sockets: the transaction ID, folded likewise.

        Folding (modulo) may merge streams onto one tag; correctness is
        unaffected because response matching uses (tag, target) FIFO
        order and delivery order is enforced per *true* stream by the
        state table.
        """
        space = 1 << self.tag_bits
        if self.ordering is OrderingModel.FULLY_ORDERED:
            return 0
        if self.ordering is OrderingModel.THREADED:
            return txn.thread % space
        return txn.txn_tag % space

    # ------------------------------------------------------------------ #
    # admission control
    # ------------------------------------------------------------------ #
    def admit(
        self, txn: Transaction, slv_addr: int, table: StateTable
    ) -> bool:
        """May this transaction be issued into the fabric now?"""
        if not table.can_allocate():
            return False
        stream = self.stream_of(txn)
        if table.stream_population(stream) >= self.per_stream_outstanding:
            return False
        if not self.multi_target:
            targets = table.outstanding_targets(stream)
            if targets and targets != [slv_addr]:
                return False  # stall until the previous target drains
        return True

    # ------------------------------------------------------------------ #
    # gate-model hooks
    # ------------------------------------------------------------------ #
    @property
    def reorder_entries(self) -> int:
        """Reorder-buffer entries charged by the gate model."""
        return self.max_outstanding if self.multi_target else 0

    def describe(self) -> str:
        return (
            f"TagPolicy({self.ordering.value}, tags=2^{self.tag_bits}, "
            f"outstanding={self.max_outstanding}, "
            f"per_stream={self.per_stream_outstanding}, "
            f"multi_target={self.multi_target})"
        )


def minimal_policy(ordering: OrderingModel) -> TagPolicy:
    """The cheapest legal policy: one outstanding transaction, one target."""
    return TagPolicy(
        ordering=ordering,
        tag_bits=1,
        max_outstanding=1,
        per_stream_outstanding=1,
        multi_target=False,
    )


def performance_policy(
    ordering: OrderingModel, outstanding: int = 16
) -> TagPolicy:
    """A deep, multi-target policy for high-throughput NIUs."""
    return TagPolicy(
        ordering=ordering,
        tag_bits=4,
        max_outstanding=outstanding,
        per_stream_outstanding=outstanding,
        multi_target=True,
    )
