"""Proprietary MsgPort initiator NIU.

Demonstrates the paper's feature-locality claim (§2): the MsgPort's
``FENCE`` primitive is supported entirely inside this NIU — it drains the
state table and acknowledges locally.  No packet field, no transport or
physical change, no other NIU touched (benchmark E6 counts exactly this).
"""

from __future__ import annotations

from typing import Optional

from repro.core.address_map import AddressMap
from repro.core.ordering import OrderingModel
from repro.core.transaction import BurstType, Opcode, Transaction
from repro.niu.base import InitiatorNiu
from repro.niu.state_table import StateEntry
from repro.niu.tag_policy import TagPolicy
from repro.protocols.base import MasterSocket
from repro.protocols.proprietary import MsgKind, MsgRequest, MsgResponse
from repro.transport.network import Fabric

_OPCODES = {
    MsgKind.GET: Opcode.LOAD,
    MsgKind.PUT: Opcode.STORE_POSTED,
    MsgKind.PUT_ACK: Opcode.STORE,
}


class MsgInitiatorNiu(InitiatorNiu):
    """Initiator NIU for the example proprietary message port."""

    protocol_name = "PROPRIETARY"

    def __init__(
        self,
        name: str,
        fabric: Fabric,
        endpoint: int,
        address_map: AddressMap,
        socket: MasterSocket,
        policy: Optional[TagPolicy] = None,
    ) -> None:
        if policy is None:
            policy = TagPolicy(
                ordering=OrderingModel.FULLY_ORDERED,
                tag_bits=1,
                max_outstanding=2,
                per_stream_outstanding=2,
                multi_target=False,
            )
        super().__init__(name, fabric, endpoint, address_map, policy)
        self._attach_socket(socket)
        self.fences_served = 0

    def peek_native(self, cycle: int) -> Optional[Transaction]:
        channel = self.socket.req("msg")
        if not channel._committed:
            return None
        request: MsgRequest = channel.peek()
        if request.kind is MsgKind.FENCE:
            # NIU-local service: complete once every tracked transaction
            # has retired.  Never reaches the fabric.
            ack = self.socket.rsp("ack")
            if len(self.table) == 0 and ack.can_push():
                channel.pop()
                ack.push(
                    MsgResponse(
                        ok=True,
                        txn_id=request.txn.txn_id if request.txn else -1,
                    )
                )
                self.fences_served += 1
            return None
        sideband = request.txn
        if request is self._peek_key:
            return self._peek_txn
        self._peek_key = request
        self._peek_txn = Transaction(
            opcode=_OPCODES[request.kind],
            address=request.addr,
            beats=request.length_words,
            beat_bytes=sideband.beat_bytes if sideband else 4,
            burst=(
                BurstType.INCR if request.length_words > 1 else BurstType.SINGLE
            ),
            data=list(request.data) if request.data is not None else None,
            master=sideband.master if sideband else self.name,
            priority=sideband.priority if sideband else 0,
            txn_id=sideband.txn_id if sideband else -1,
        )
        return self._peek_txn

    def pop_native(self) -> None:
        self.socket.req("msg").pop()

    def push_native_response(self, entry: StateEntry) -> bool:
        channel = self.socket.rsp("ack")
        if not channel.can_push():
            return False
        channel.push(
            MsgResponse(
                ok=not entry.status.is_error,
                data=entry.payload,
                txn_id=entry.txn_id,
            )
        )
        return True
