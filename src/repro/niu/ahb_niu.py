"""AHB 2.0 initiator NIU: AHB transfers ↔ NoC packets."""

from __future__ import annotations

from typing import Optional

from repro.core.address_map import AddressMap
from repro.core.ordering import OrderingModel
from repro.core.transaction import BurstType, Opcode, Transaction
from repro.niu.base import InitiatorNiu
from repro.niu.state_table import StateEntry
from repro.niu.tag_policy import TagPolicy
from repro.protocols.ahb import AhbRequest, AhbResponse, HBurst, hresp_from_status
from repro.protocols.base import MasterSocket
from repro.transport.network import Fabric


def _burst_from_hburst(hburst: HBurst) -> BurstType:
    if hburst is HBurst.SINGLE:
        return BurstType.SINGLE
    if hburst.wrapping:
        return BurstType.WRAP
    return BurstType.INCR


def _opcode_from(request: AhbRequest) -> Opcode:
    if request.hmastlock:
        return Opcode.STORE_COND_LOCKED if request.hwrite else Opcode.READEX
    return Opcode.STORE if request.hwrite else Opcode.LOAD


class AhbInitiatorNiu(InitiatorNiu):
    """Initiator NIU for an AHB master socket.

    AHB is fully ordered and single-outstanding at the socket, so the
    natural policy is the minimal one (tag 0, one entry) — the cheapest
    NIU in the gate-count sweep.  A deeper policy is still legal and lets
    the NIU pipeline bus-side transfers it has already accepted.
    """

    protocol_name = "AHB"

    def __init__(
        self,
        name: str,
        fabric: Fabric,
        endpoint: int,
        address_map: AddressMap,
        socket: MasterSocket,
        policy: Optional[TagPolicy] = None,
    ) -> None:
        if policy is None:
            policy = TagPolicy(
                ordering=OrderingModel.FULLY_ORDERED,
                tag_bits=1,
                max_outstanding=1,
                per_stream_outstanding=1,
                multi_target=False,
            )
        if policy.ordering is not OrderingModel.FULLY_ORDERED:
            raise ValueError("AHB NIU requires a fully-ordered policy")
        super().__init__(name, fabric, endpoint, address_map, policy)
        self._attach_socket(socket)

    def peek_native(self, cycle: int) -> Optional[Transaction]:
        channel = self.socket.req("req")
        if not channel._committed:
            return None
        request: AhbRequest = channel.peek()
        if request is self._peek_key:
            return self._peek_txn
        sideband = request.txn
        self._peek_key = request
        self._peek_txn = Transaction(
            opcode=_opcode_from(request),
            address=request.haddr,
            beats=request.beats,
            beat_bytes=1 << request.hsize,
            burst=_burst_from_hburst(request.hburst),
            data=list(request.hwdata) if request.hwdata is not None else None,
            master=sideband.master if sideband else self.name,
            priority=sideband.priority if sideband else 0,
            txn_id=sideband.txn_id if sideband else -1,
        )
        return self._peek_txn

    def pop_native(self) -> None:
        self.socket.req("req").pop()

    def push_native_response(self, entry: StateEntry) -> bool:
        channel = self.socket.rsp("rsp")
        if not channel.can_push():
            return False
        channel.push(
            AhbResponse(
                txn_id=entry.txn_id,
                hresp=hresp_from_status(entry.status),
                hrdata=entry.payload,
            )
        )
        return True
