"""Network Interface Units.

"A Network Interface Unit (NIU) is responsible for converting the foreign
IP protocol to the NoC transaction layer" (paper §1).  Per protocol
family there is an initiator NIU (master IP → packets) and the generic
target NIU (packets → target IP).  The pieces the paper names explicitly
are first-class here:

- :mod:`repro.niu.state_table` — "the standard NIU state lookup tables
  (which track for example that a Load request is waiting for a
  response)";
- :mod:`repro.niu.tag_policy` — "a careful assignment policy" of the
  SlvAddr/MstAddr/Tag fields that absorbs all three ordering models and
  scales gate count with the outstanding-transaction budget;
- :mod:`repro.niu.gate_count` — the analytic area model behind the
  paper's "low NIU gate count" and scaling claims (benchmark E4).
"""

from repro.niu.base import InitiatorNiu, TargetNiu
from repro.niu.gate_count import GateReport, niu_gate_count
from repro.niu.state_table import StateEntry, StateTable
from repro.niu.tag_policy import TagPolicy

from repro.niu.ahb_niu import AhbInitiatorNiu
from repro.niu.axi_niu import AxiInitiatorNiu
from repro.niu.ocp_niu import OcpInitiatorNiu
from repro.niu.vci_niu import VciInitiatorNiu
from repro.niu.proprietary_niu import MsgInitiatorNiu

__all__ = [
    "AhbInitiatorNiu",
    "AxiInitiatorNiu",
    "GateReport",
    "InitiatorNiu",
    "MsgInitiatorNiu",
    "OcpInitiatorNiu",
    "StateEntry",
    "StateTable",
    "TagPolicy",
    "TargetNiu",
    "VciInitiatorNiu",
    "niu_gate_count",
]
