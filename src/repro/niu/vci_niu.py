"""VCI initiator NIU, serving all three flavors (PVCI/BVCI/AVCI).

The flavor decides the ordering model handed to the tag policy: PVCI and
BVCI are fully ordered (Tag constantly 0); AVCI's ``TRDID`` maps onto the
Tag exactly like an AXI ID.
"""

from __future__ import annotations

from typing import Optional

from repro.core.address_map import AddressMap
from repro.core.ordering import OrderingModel
from repro.core.transaction import BurstType, Opcode, Transaction
from repro.niu.base import InitiatorNiu
from repro.niu.state_table import StateEntry
from repro.niu.tag_policy import TagPolicy
from repro.protocols.base import MasterSocket
from repro.protocols.vci import (
    VciCmd,
    VciRequest,
    VciResponse,
    rerror_from_status,
)
from repro.transport.network import Fabric

_FLAVOR_ORDERING = {
    "PVCI": OrderingModel.FULLY_ORDERED,
    "BVCI": OrderingModel.FULLY_ORDERED,
    "AVCI": OrderingModel.ID_BASED,
}

_OPCODES = {
    VciCmd.READ: Opcode.LOAD,
    VciCmd.WRITE: Opcode.STORE,
    VciCmd.LOCKED_READ: Opcode.READEX,
    VciCmd.STORE_COND: Opcode.STORE_COND_LOCKED,
}


class VciInitiatorNiu(InitiatorNiu):
    """Initiator NIU for a PVCI/BVCI/AVCI master socket."""

    def __init__(
        self,
        name: str,
        fabric: Fabric,
        endpoint: int,
        address_map: AddressMap,
        socket: MasterSocket,
        flavor: str = "BVCI",
        policy: Optional[TagPolicy] = None,
    ) -> None:
        flavor = flavor.upper()
        if flavor not in _FLAVOR_ORDERING:
            raise ValueError(f"unknown VCI flavor {flavor!r}")
        ordering = _FLAVOR_ORDERING[flavor]
        if policy is None:
            if flavor == "PVCI":
                policy = TagPolicy(
                    ordering=ordering,
                    tag_bits=1,
                    max_outstanding=1,
                    per_stream_outstanding=1,
                    multi_target=False,
                )
            elif flavor == "BVCI":
                policy = TagPolicy(
                    ordering=ordering,
                    tag_bits=1,
                    max_outstanding=4,
                    per_stream_outstanding=4,
                    multi_target=False,
                )
            else:  # AVCI
                policy = TagPolicy(
                    ordering=ordering,
                    tag_bits=3,
                    max_outstanding=8,
                    per_stream_outstanding=4,
                    multi_target=True,
                )
        if policy.ordering is not ordering:
            raise ValueError(
                f"{flavor} NIU requires a {ordering.value} policy, got "
                f"{policy.ordering.value}"
            )
        super().__init__(name, fabric, endpoint, address_map, policy)
        self.flavor = flavor
        self.protocol_name = flavor
        self._attach_socket(socket)

    def peek_native(self, cycle: int) -> Optional[Transaction]:
        channel = self.socket.req("cmd")
        if not channel._committed:
            return None
        request: VciRequest = channel.peek()
        if request is self._peek_key:
            return self._peek_txn
        sideband = request.txn
        beat_bytes = (
            request.plen // request.cells if request.cells else 4
        ) or 4
        self._peek_key = request
        self._peek_txn = Transaction(
            opcode=_OPCODES[request.cmd],
            address=request.address,
            beats=request.cells,
            beat_bytes=beat_bytes,
            burst=BurstType.INCR if request.cells > 1 else BurstType.SINGLE,
            data=list(request.wdata) if request.wdata is not None else None,
            master=sideband.master if sideband else self.name,
            txn_tag=request.trdid,
            priority=sideband.priority if sideband else 0,
            txn_id=sideband.txn_id if sideband else -1,
        )
        return self._peek_txn

    def pop_native(self) -> None:
        self.socket.req("cmd").pop()

    def push_native_response(self, entry: StateEntry) -> bool:
        channel = self.socket.rsp("rsp")
        if not channel.can_push():
            return False
        channel.push(
            VciResponse(
                rerror=rerror_from_status(entry.status),
                rdata=entry.payload,
                rtrdid=entry.txn.txn_tag,
                rpktid=entry.txn_id & 0xFF,
                txn_id=entry.txn_id,
            )
        )
        return True
