"""AXI initiator NIU: five-channel AXI ↔ NoC packets.

The ID-based ordering model maps ARID/AWID onto the NoC Tag (paper §3:
"a careful assignment policy of these fields from the OCP or AXI ones
such as ThreadID and TID").  Reads and writes arbitrate round-robin for
the single packet-injection port.
"""

from __future__ import annotations

from typing import Optional

from repro.core.address_map import AddressMap
from repro.core.ordering import OrderingModel
from repro.core.transaction import BurstType, Opcode, Transaction
from repro.niu.base import InitiatorNiu
from repro.niu.state_table import StateEntry
from repro.niu.tag_policy import TagPolicy
from repro.protocols.axi import (
    AxBurst,
    AxLock,
    AxiAR,
    AxiAW,
    AxiB,
    AxiR,
    xresp_from_status,
)
from repro.protocols.base import MasterSocket
from repro.transport.network import Fabric


def _burst_from_axburst(axburst: AxBurst, beats: int) -> BurstType:
    if axburst is AxBurst.WRAP:
        return BurstType.WRAP
    if axburst is AxBurst.FIXED:
        return BurstType.FIXED
    return BurstType.INCR if beats > 1 else BurstType.SINGLE


class AxiInitiatorNiu(InitiatorNiu):
    """Initiator NIU for an AXI master socket."""

    protocol_name = "AXI"

    def __init__(
        self,
        name: str,
        fabric: Fabric,
        endpoint: int,
        address_map: AddressMap,
        socket: MasterSocket,
        policy: Optional[TagPolicy] = None,
    ) -> None:
        if policy is None:
            policy = TagPolicy(
                ordering=OrderingModel.ID_BASED,
                tag_bits=4,
                max_outstanding=8,
                per_stream_outstanding=4,
                multi_target=True,
            )
        if policy.ordering is not OrderingModel.ID_BASED:
            raise ValueError("AXI NIU requires an ID-based policy")
        super().__init__(name, fabric, endpoint, address_map, policy)
        self._attach_socket(socket)
        self._prefer_read = True
        self._peeked_channel: Optional[str] = None

    # ------------------------------------------------------------------ #
    def _convert_ar(self, ar: AxiAR) -> Transaction:
        sideband = ar.txn
        return Transaction(
            opcode=Opcode.LOAD,
            address=ar.araddr,
            beats=ar.arlen + 1,
            beat_bytes=1 << ar.arsize,
            burst=_burst_from_axburst(ar.arburst, ar.arlen + 1),
            master=sideband.master if sideband else self.name,
            thread=0,  # read channel (see OrderingModel.stream_key)
            txn_tag=ar.arid,
            excl=ar.arlock is AxLock.EXCLUSIVE,
            priority=ar.arqos,
            txn_id=sideband.txn_id if sideband else -1,
        )

    def _convert_aw(self, aw: AxiAW) -> Transaction:
        sideband = aw.txn
        return Transaction(
            opcode=Opcode.STORE,
            address=aw.awaddr,
            beats=aw.awlen + 1,
            beat_bytes=1 << aw.awsize,
            burst=_burst_from_axburst(aw.awburst, aw.awlen + 1),
            data=list(aw.wdata) if aw.wdata is not None else None,
            master=sideband.master if sideband else self.name,
            thread=1,  # write channel (see OrderingModel.stream_key)
            txn_tag=aw.awid,
            excl=aw.awlock is AxLock.EXCLUSIVE,
            priority=aw.awqos,
            txn_id=sideband.txn_id if sideband else -1,
        )

    def peek_native(self, cycle: int) -> Optional[Transaction]:
        ar = self.socket.req("ar")
        aw = self.socket.req("aw")
        order = ["ar", "aw"] if self._prefer_read else ["aw", "ar"]
        for channel_name in order:
            channel = ar if channel_name == "ar" else aw
            if channel._committed:
                self._peeked_channel = channel_name
                record = channel.peek()
                if record is self._peek_key:
                    return self._peek_txn
                self._peek_key = record
                if channel_name == "ar":
                    self._peek_txn = self._convert_ar(record)
                else:
                    self._peek_txn = self._convert_aw(record)
                return self._peek_txn
        self._peeked_channel = None
        return None

    def pop_native(self) -> None:
        assert self._peeked_channel is not None
        self.socket.req(self._peeked_channel).pop()
        # Alternate between directions for fairness.
        self._prefer_read = self._peeked_channel == "aw"
        self._peeked_channel = None

    def push_native_response(self, entry: StateEntry) -> bool:
        if entry.txn.opcode.is_read:
            channel = self.socket.rsp("r")
            if not channel.can_push():
                return False
            channel.push(
                AxiR(
                    rid=entry.txn.txn_tag,
                    rdata=entry.payload if entry.payload is not None else [],
                    rresp=xresp_from_status(entry.status),
                    txn_id=entry.txn_id,
                )
            )
            return True
        channel = self.socket.rsp("b")
        if not channel.can_push():
            return False
        channel.push(
            AxiB(
                bid=entry.txn.txn_tag,
                bresp=xresp_from_status(entry.status),
                txn_id=entry.txn_id,
            )
        )
        return True
