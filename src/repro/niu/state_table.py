"""The NIU state lookup table.

Paper §2: "add the state to the standard NIU state lookup tables (which
track for example that a Load request is waiting for a response)".  Each
entry records one outstanding transaction: which socket stream it belongs
to, the NoC tag and target it was sent with, its position in the stream's
issue order, and — once the response packet returns — its completion
status and payload, until the NIU can deliver it to the socket in stream
order.

The table is bounded (``capacity``): a full table back-pressures the
socket, which is exactly how a small NIU trades performance for gates
(benchmark E4 charges gates per entry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.transaction import ResponseStatus, Transaction
from repro.sim.snapshot import Snapshottable

StreamKey = Tuple[int, ...]


@dataclass
class StateEntry:
    txn: Transaction
    tag: int
    slv_addr: int
    offset: int
    stream: StreamKey
    seq: int  # global allocation order (per NIU)
    stream_seq: int  # order within the stream
    issued_cycle: int
    responded: bool = False
    status: ResponseStatus = ResponseStatus.OKAY
    payload: Optional[List[int]] = None

    @property
    def txn_id(self) -> int:
        return self.txn.txn_id


class StateTableFullError(RuntimeError):
    """Allocation attempted on a full table (caller must check first)."""


class StateTable(Snapshottable):
    """Bounded outstanding-transaction table with stream-order queries."""

    # Entries hold live Transaction/StateEntry objects; the checkpoint
    # layer's shared-memo deepcopy preserves aliasing with the NIU's
    # peeked-entry references.
    _snapshot_fields = (
        "_entries",
        "_seq",
        "_stream_seq",
        "total_allocated",
        "high_watermark",
        "_responded_count",
        "_stream_counts",
    )

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"state table {name!r}: capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._entries: Dict[int, StateEntry] = {}  # txn_id -> entry
        self._seq = 0
        self._stream_seq: Dict[StreamKey, int] = {}
        self.total_allocated = 0
        self.high_watermark = 0
        # Entries with responded=True still in the table; lets the hot
        # per-cycle deliverable() query answer "nothing yet" in O(1).
        self._responded_count = 0
        # Live entries per stream (admission checks run per issue
        # attempt, so the population query must not scan the table).
        self._stream_counts: Dict[StreamKey, int] = {}

    # ------------------------------------------------------------------ #
    # allocation / release
    # ------------------------------------------------------------------ #
    def can_allocate(self) -> bool:
        return len(self._entries) < self.capacity

    def allocate(
        self,
        txn: Transaction,
        tag: int,
        slv_addr: int,
        offset: int,
        stream: StreamKey,
        cycle: int,
    ) -> StateEntry:
        if not self.can_allocate():
            raise StateTableFullError(
                f"state table {self.name!r} full ({self.capacity} entries)"
            )
        if txn.txn_id in self._entries:
            raise KeyError(f"{self.name}: txn {txn.txn_id} already tracked")
        stream_seq = self._stream_seq.get(stream, 0)
        self._stream_seq[stream] = stream_seq + 1
        entry = StateEntry(
            txn=txn,
            tag=tag,
            slv_addr=slv_addr,
            offset=offset,
            stream=stream,
            seq=self._seq,
            stream_seq=stream_seq,
            issued_cycle=cycle,
        )
        self._seq += 1
        self._entries[txn.txn_id] = entry
        self._stream_counts[stream] = self._stream_counts.get(stream, 0) + 1
        self.total_allocated += 1
        self.high_watermark = max(self.high_watermark, len(self._entries))
        return entry

    def release(self, txn_id: int) -> StateEntry:
        try:
            entry = self._entries.pop(txn_id)
        except KeyError:
            raise KeyError(f"{self.name}: releasing unknown txn {txn_id}") from None
        if entry.responded:
            self._responded_count -= 1
        remaining = self._stream_counts[entry.stream] - 1
        if remaining:
            self._stream_counts[entry.stream] = remaining
        else:
            del self._stream_counts[entry.stream]
        return entry

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, txn_id: int) -> bool:
        return txn_id in self._entries

    def entry(self, txn_id: int) -> StateEntry:
        return self._entries[txn_id]

    def entries(self) -> List[StateEntry]:
        return sorted(self._entries.values(), key=lambda e: e.seq)

    def match_response(
        self, tag: int, slv_addr: int, txn_id_hint: int = -1
    ) -> StateEntry:
        """Find the entry a returning response packet belongs to.

        Fabric guarantee: packets between one (initiator, target) pair on
        one plane arrive in injection order, so the response with a given
        (tag, target) always belongs to the *oldest* un-responded entry
        with that tag and target.  The transported ``txn_id`` is checked
        as a simulation-level assertion on that guarantee.
        """
        candidates = [
            e
            for e in self._entries.values()
            if e.tag == tag and e.slv_addr == slv_addr and not e.responded
        ]
        if not candidates:
            raise KeyError(
                f"{self.name}: response (tag={tag}, slv={slv_addr}) matches "
                f"no outstanding entry"
            )
        entry = min(candidates, key=lambda e: e.seq)
        if txn_id_hint >= 0 and entry.txn_id != txn_id_hint:
            raise AssertionError(
                f"{self.name}: fabric ordering violated — response for txn "
                f"{txn_id_hint} arrived but oldest outstanding on "
                f"(tag={tag}, slv={slv_addr}) is txn {entry.txn_id}"
            )
        return entry

    def mark_responded(
        self,
        txn_id: int,
        status: ResponseStatus,
        payload: Optional[List[int]],
    ) -> StateEntry:
        entry = self._entries[txn_id]
        if entry.responded:
            raise KeyError(f"{self.name}: txn {txn_id} responded twice")
        entry.responded = True
        entry.status = status
        entry.payload = payload
        self._responded_count += 1
        return entry

    # ------------------------------------------------------------------ #
    # stream-order queries (reorder-buffer behaviour)
    # ------------------------------------------------------------------ #
    def oldest_open(self, stream: StreamKey) -> Optional[StateEntry]:
        """Oldest (lowest stream_seq) entry of a stream, if any."""
        entries = [e for e in self._entries.values() if e.stream == stream]
        if not entries:
            return None
        return min(entries, key=lambda e: e.stream_seq)

    @property
    def has_responded(self) -> bool:
        """Any entry holding a returned response (O(1) precheck for the
        per-cycle delivery scan and the NIU's dormancy predicate)."""
        return self._responded_count > 0

    def deliverable(self) -> List[StateEntry]:
        """Responded entries that are the oldest of their stream.

        These may be handed to the socket without violating the stream's
        in-order rule; everything else waits in the table (the table *is*
        the reorder buffer).
        """
        if not self._responded_count:
            return []
        oldest: Dict[StreamKey, StateEntry] = {}
        for entry in self._entries.values():
            best = oldest.get(entry.stream)
            if best is None or entry.stream_seq < best.stream_seq:
                oldest[entry.stream] = entry
        return sorted(
            (e for e in oldest.values() if e.responded), key=lambda e: e.seq
        )

    def outstanding_targets(self, stream: StreamKey) -> List[int]:
        """Distinct targets with un-responded entries in a stream."""
        return sorted(
            {
                e.slv_addr
                for e in self._entries.values()
                if e.stream == stream and not e.responded
            }
        )

    def stream_population(self, stream: StreamKey) -> int:
        return self._stream_counts.get(stream, 0)
