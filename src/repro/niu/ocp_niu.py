"""OCP initiator NIU: threaded OCP ↔ NoC packets.

MThreadID maps onto the NoC Tag; lazy synchronization (RDL/WRC) maps onto
the single ``excl`` packet bit — the same NoC service that carries AXI
exclusives, which is the paper's §3 punchline.
"""

from __future__ import annotations

from typing import Optional

from repro.core.address_map import AddressMap
from repro.core.ordering import OrderingModel
from repro.core.transaction import BurstType, Opcode, ResponseStatus, Transaction
from repro.niu.base import InitiatorNiu
from repro.niu.state_table import StateEntry
from repro.niu.tag_policy import TagPolicy
from repro.protocols.base import MasterSocket
from repro.protocols.ocp import MCmd, OcpRequest, OcpResponse, SResp
from repro.transport.network import Fabric

_OPCODES = {
    MCmd.RD: (Opcode.LOAD, False),
    MCmd.WR: (Opcode.STORE_POSTED, False),
    MCmd.WRNP: (Opcode.STORE, False),
    MCmd.RDL: (Opcode.LOAD, True),
    MCmd.WRC: (Opcode.STORE, True),
}


class OcpInitiatorNiu(InitiatorNiu):
    """Initiator NIU for an OCP master socket."""

    protocol_name = "OCP"

    def __init__(
        self,
        name: str,
        fabric: Fabric,
        endpoint: int,
        address_map: AddressMap,
        socket: MasterSocket,
        policy: Optional[TagPolicy] = None,
    ) -> None:
        if policy is None:
            policy = TagPolicy(
                ordering=OrderingModel.THREADED,
                tag_bits=2,
                max_outstanding=8,
                per_stream_outstanding=4,
                multi_target=True,
            )
        if policy.ordering is not OrderingModel.THREADED:
            raise ValueError("OCP NIU requires a threaded policy")
        super().__init__(name, fabric, endpoint, address_map, policy)
        self._attach_socket(socket)

    def peek_native(self, cycle: int) -> Optional[Transaction]:
        channel = self.socket.req("req")
        if not channel._committed:
            return None
        request: OcpRequest = channel.peek()
        if request is self._peek_key:
            return self._peek_txn
        try:
            opcode, excl = _OPCODES[request.mcmd]
        except KeyError:
            raise ValueError(f"{self.name}: cannot convert {request.mcmd}") from None
        sideband = request.txn
        self._peek_key = request
        self._peek_txn = Transaction(
            opcode=opcode,
            address=request.maddr,
            beats=request.mburstlength,
            beat_bytes=sideband.beat_bytes if sideband else 4,
            burst=(
                BurstType.INCR if request.mburstlength > 1 else BurstType.SINGLE
            ),
            data=list(request.mdata) if request.mdata is not None else None,
            master=sideband.master if sideband else self.name,
            thread=request.mthreadid,
            excl=excl,
            priority=sideband.priority if sideband else 0,
            txn_id=sideband.txn_id if sideband else -1,
        )
        return self._peek_txn

    def pop_native(self) -> None:
        self.socket.req("req").pop()

    def push_native_response(self, entry: StateEntry) -> bool:
        channel = self.socket.rsp("rsp")
        if not channel.can_push():
            return False
        txn = entry.txn
        excl_failed = (
            txn.excl
            and txn.opcode.is_write
            and entry.status is ResponseStatus.OKAY
        )
        if entry.status.is_error:
            sresp = SResp.ERR
        elif excl_failed:
            sresp = SResp.FAIL
        else:
            sresp = SResp.DVA
        channel.push(
            OcpResponse(
                sresp=sresp,
                sthreadid=txn.thread,
                sdata=entry.payload,
                txn_id=entry.txn_id,
            )
        )
        return True
