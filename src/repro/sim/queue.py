"""Staged bounded FIFO used for all inter-component communication.

A ``SimQueue`` separates the *committed* region (items visible to the
consumer) from the *staged* region (items pushed during the current cycle,
invisible until the kernel calls :meth:`commit`).  This two-phase behaviour
gives every producer→consumer hop a latency of exactly one cycle and makes
results independent of the order components are ticked in.

Capacity accounting covers committed **plus** staged items, which models
credit-based flow control with a credit-return latency of zero: the
producer may only push when the consumer's buffer has a free slot this
cycle.  Explicit multi-cycle credit loops are modelled at the transport
layer on top of this primitive.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterator, List, Optional


class SimQueue:
    """Bounded FIFO with next-cycle push visibility.

    Parameters
    ----------
    name:
        Identifier used in traces and error messages.
    capacity:
        Maximum number of items committed + staged.  ``None`` means
        unbounded (useful for sink-side scoreboards in tests).
    """

    def __init__(self, name: str, capacity: Optional[int] = 4) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"queue {name!r}: capacity must be >= 1 or None")
        self.name = name
        self.capacity = capacity
        self._committed: Deque[Any] = deque()
        self._staged: List[Any] = []
        self.total_pushed = 0
        self.total_popped = 0
        self.high_watermark = 0

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #
    def can_push(self, count: int = 1) -> bool:
        """True if ``count`` more items fit this cycle."""
        if self.capacity is None:
            return True
        return len(self._committed) + len(self._staged) + count <= self.capacity

    def push(self, item: Any) -> None:
        """Stage ``item``; it becomes visible after the next commit."""
        if not self.can_push():
            raise OverflowError(
                f"queue {self.name!r} is full "
                f"({len(self._committed)} committed + {len(self._staged)} staged"
                f" / capacity {self.capacity})"
            )
        self._staged.append(item)
        self.total_pushed += 1

    # ------------------------------------------------------------------ #
    # consumer side
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Number of committed (consumer-visible) items."""
        return len(self._committed)

    def __bool__(self) -> bool:
        return bool(self._committed)

    def __iter__(self) -> Iterator[Any]:
        """Iterate committed items front-to-back without consuming them."""
        return iter(self._committed)

    def peek(self, index: int = 0) -> Any:
        """Return the committed item at ``index`` without removing it."""
        if index >= len(self._committed):
            raise IndexError(
                f"queue {self.name!r}: peek({index}) with only "
                f"{len(self._committed)} committed items"
            )
        return self._committed[index]

    def pop(self) -> Any:
        """Remove and return the oldest committed item (visible immediately)."""
        if not self._committed:
            raise IndexError(f"queue {self.name!r} is empty")
        self.total_popped += 1
        return self._committed.popleft()

    # ------------------------------------------------------------------ #
    # kernel side
    # ------------------------------------------------------------------ #
    def commit(self) -> None:
        """Move staged items into the committed region (kernel only)."""
        if self._staged:
            self._committed.extend(self._staged)
            self._staged.clear()
        if len(self._committed) > self.high_watermark:
            self.high_watermark = len(self._committed)

    @property
    def staged_count(self) -> int:
        return len(self._staged)

    @property
    def occupancy(self) -> int:
        """Committed + staged items (what capacity accounting sees)."""
        return len(self._committed) + len(self._staged)

    def drain(self) -> List[Any]:
        """Pop every committed item (test/scoreboard convenience)."""
        items = list(self._committed)
        self.total_popped += len(items)
        self._committed.clear()
        return items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimQueue {self.name!r} committed={len(self._committed)} "
            f"staged={len(self._staged)} cap={self.capacity}>"
        )
