"""Staged bounded FIFO used for all inter-component communication.

A ``SimQueue`` separates the *committed* region (items visible to the
consumer) from the *staged* region (items pushed during the current cycle,
invisible until the kernel calls :meth:`commit`).  This two-phase behaviour
gives every producer→consumer hop a latency of exactly one cycle and makes
results independent of the order components are ticked in.

Capacity accounting covers committed **plus** staged items, which models
credit-based flow control with a credit-return latency of zero: the
producer may only push when the consumer's buffer has a free slot this
cycle.  Explicit multi-cycle credit loops are modelled at the transport
layer on top of this primitive.

Activity contract
-----------------
Queues are the kernel's wake fabric.  A component registered with
:meth:`wake_on_push` is woken when staged items *commit* (the moment they
become consumer-visible); one registered with :meth:`wake_on_pop` is woken
when an item is popped (the moment producer-side space frees up).  A queue
registered with a :class:`~repro.sim.kernel.Simulator` also marks itself
on the kernel's per-cycle *dirty list* at first push, so the kernel
commits only queues that actually staged something instead of iterating
every queue every cycle.

Core contract
-------------
The router hot core (:mod:`repro.transport.router_core`) inlines
:meth:`SimQueue.pop` and :meth:`SimQueue.push` on its transfer path.
That inlining relies on invariants that are therefore part of this
class's contract: ``_committed`` is a deque that is never rebound
(cached references stay valid), ``_occ`` is committed + staged,
``pop`` = counter/occupancy update + ``popleft`` + pop-waiter wakes,
``push`` = capacity check (exact :class:`OverflowError` message) +
stage + counters + first-push dirty-list registration.  Change any of
these in both places, and keep the fields in ``__slots__``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterator, List, Optional, Tuple

from repro.sim.snapshot import Snapshottable


class WakeHooks:
    """Waiter registration shared by every wake-capable channel.

    :class:`SimQueue` and :class:`~repro.phys.cdc.CdcFifo` both speak the
    same protocol: components register once at wiring time and are woken
    when items become consumer-visible (``wake_on_push``) or when space
    frees (``wake_on_pop``).  Waiters are immutable tuples so the hot
    wake loops iterate without copying.
    """

    # No slots of its own (CdcFifo inherits a __dict__ from Component);
    # the class-level defaults below serve subclasses that never touch
    # the waiter tuples.  SimQueue shadows both with real slots.
    __slots__ = ()

    _push_waiters: Tuple[Any, ...] = ()
    _pop_waiters: Tuple[Any, ...] = ()

    def wake_on_push(self, component) -> None:
        """Wake ``component`` whenever staged items commit (new items
        become consumer-visible)."""
        if component not in self._push_waiters:
            self._push_waiters += (component,)

    def wake_on_pop(self, component) -> None:
        """Wake ``component`` whenever an item is popped (space frees)."""
        if component not in self._pop_waiters:
            self._pop_waiters += (component,)


class SimQueue(WakeHooks, Snapshottable):
    """Bounded FIFO with next-cycle push visibility.

    Parameters
    ----------
    name:
        Identifier used in traces and error messages.
    capacity:
        Maximum number of items committed + staged.  ``None`` means
        unbounded (useful for sink-side scoreboards in tests).
    """

    # Slotted: queue attribute access (_occ, _committed, capacity) is
    # the single hottest operation in the simulator.
    __slots__ = (
        "name",
        "capacity",
        "_committed",
        "_staged",
        "_occ",
        "total_pushed",
        "total_popped",
        "high_watermark",
        "_kernel",
        "_dirty",
        "_push_waiters",
        "_pop_waiters",
    )

    def __init__(self, name: str, capacity: Optional[int] = 4) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"queue {name!r}: capacity must be >= 1 or None")
        self.name = name
        self.capacity = capacity
        self._committed: Deque[Any] = deque()
        self._staged: List[Any] = []
        # Committed + staged count, maintained incrementally: capacity
        # checks are the single hottest queue operation (every router
        # output, link gate and injection decision), so they must not
        # re-measure both regions each time.
        self._occ = 0
        self.total_pushed = 0
        self.total_popped = 0
        self.high_watermark = 0
        # Activity-kernel hooks: set by Simulator.add_queue / wake_on_*.
        self._kernel = None
        self._dirty = False
        self._push_waiters: Tuple[Any, ...] = ()
        self._pop_waiters: Tuple[Any, ...] = ()

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #
    def can_push(self, count: int = 1) -> bool:
        """True if ``count`` more items fit this cycle."""
        capacity = self.capacity
        return capacity is None or self._occ + count <= capacity

    def push(self, item: Any) -> None:
        """Stage ``item``; it becomes visible after the next commit."""
        capacity = self.capacity
        if capacity is not None and self._occ >= capacity:
            raise OverflowError(
                f"queue {self.name!r} is full "
                f"({len(self._committed)} committed + {len(self._staged)} staged"
                f" / capacity {self.capacity})"
            )
        self._staged.append(item)
        self._occ += 1
        self.total_pushed += 1
        if not self._dirty:
            self._dirty = True
            kernel = self._kernel
            if kernel is not None:
                kernel._dirty_queues.append(self)

    # ------------------------------------------------------------------ #
    # consumer side
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Number of committed (consumer-visible) items."""
        return len(self._committed)

    def __bool__(self) -> bool:
        return bool(self._committed)

    def __iter__(self) -> Iterator[Any]:
        """Iterate committed items front-to-back without consuming them."""
        return iter(self._committed)

    def peek(self, index: int = 0) -> Any:
        """Return the committed item at ``index`` without removing it."""
        if index >= len(self._committed):
            raise IndexError(
                f"queue {self.name!r}: peek({index}) with only "
                f"{len(self._committed)} committed items"
            )
        return self._committed[index]

    def pop(self) -> Any:
        """Remove and return the oldest committed item (visible immediately)."""
        if not self._committed:
            raise IndexError(f"queue {self.name!r} is empty")
        self.total_popped += 1
        self._occ -= 1
        item = self._committed.popleft()
        for waiter in self._pop_waiters:
            waiter.wake()
        return item

    # ------------------------------------------------------------------ #
    # kernel side
    # ------------------------------------------------------------------ #
    def commit(self) -> None:
        """Move staged items into the committed region (kernel only)."""
        self._dirty = False
        if self._staged:
            self._committed.extend(self._staged)
            self._staged.clear()
            if len(self._committed) > self.high_watermark:
                self.high_watermark = len(self._committed)
            for waiter in self._push_waiters:
                waiter.wake()

    # ------------------------------------------------------------------ #
    # state capture
    # ------------------------------------------------------------------ #
    _snapshot_fields = (
        "_committed",
        "_staged",
        "total_pushed",
        "total_popped",
        "high_watermark",
        "_dirty",
    )

    def _restore_state(self, state) -> None:
        # _committed is restored in place by the base hook (never rebound
        # — the dense router core caches the deque).  Derived occupancy
        # is recomputed; dirty-list membership is the kernel's to rebuild
        # (Simulator._restore_state), since an unregistered queue has no
        # dirty list to join.
        super()._restore_state(state)
        self._occ = len(self._committed) + len(self._staged)

    @property
    def staged_count(self) -> int:
        return len(self._staged)

    @property
    def occupancy(self) -> int:
        """Committed + staged items (what capacity accounting sees)."""
        return self._occ

    def drain(self, include_staged: bool = False) -> List[Any]:
        """Pop every committed item (test/scoreboard convenience).

        Staged items are **not** drained by default: they are not yet
        consumer-visible, so a drain models a consumer emptying its
        buffer mid-cycle.  Pass ``include_staged=True`` to also discard
        the staged region (e.g. when resetting a queue between test
        phases); discarded staged items count as popped so the
        ``total_pushed - total_popped == occupancy`` invariant holds.
        """
        items = list(self._committed)
        self.total_popped += len(items)
        self._committed.clear()
        self._occ -= len(items)
        if include_staged and self._staged:
            items.extend(self._staged)
            self.total_popped += len(self._staged)
            self._occ -= len(self._staged)
            self._staged.clear()
        if items:
            for waiter in self._pop_waiters:
                waiter.wake()
        return items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimQueue {self.name!r} committed={len(self._committed)} "
            f"staged={len(self._staged)} cap={self.capacity}>"
        )
