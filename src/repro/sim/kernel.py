"""The cycle-based simulation kernel."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.component import Component
from repro.sim.queue import SimQueue
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer


class SimulationError(RuntimeError):
    """Raised for kernel-level failures (deadlock, double registration...)."""


class Simulator:
    """Owns components and queues and advances them cycle by cycle.

    The kernel is two-phase: every registered component's :meth:`tick` runs
    first, then every registered queue commits its staged items.  A queue
    push staged in cycle *n* is therefore consumer-visible in cycle
    *n + 1*.

    Parameters
    ----------
    trace:
        Optional :class:`Tracer`; if omitted a disabled tracer is created
        so components can log unconditionally.
    """

    def __init__(self, trace: Optional[Tracer] = None) -> None:
        self.cycle = 0
        self.stats = StatsRegistry()
        self.trace = trace if trace is not None else Tracer(enabled=False)
        self._components: List[Component] = []
        self._component_names: Dict[str, Component] = {}
        self._queues: List[SimQueue] = []
        self._queue_names: Dict[str, SimQueue] = {}
        self._finished = False

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def add(self, component: Component) -> Component:
        """Register a component; returns it for chaining."""
        if component.name in self._component_names:
            raise SimulationError(f"duplicate component name {component.name!r}")
        component.bind(self)
        self._components.append(component)
        self._component_names[component.name] = component
        return component

    def add_queue(self, queue: SimQueue) -> SimQueue:
        """Register a queue so the kernel commits it each cycle."""
        if queue.name in self._queue_names:
            raise SimulationError(f"duplicate queue name {queue.name!r}")
        self._queues.append(queue)
        self._queue_names[queue.name] = queue
        return queue

    def new_queue(self, name: str, capacity: Optional[int] = 4) -> SimQueue:
        """Create **and** register a queue in one call."""
        return self.add_queue(SimQueue(name, capacity))

    def component(self, name: str) -> Component:
        return self._component_names[name]

    def queue(self, name: str) -> SimQueue:
        return self._queue_names[name]

    @property
    def components(self) -> List[Component]:
        return list(self._components)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def step(self) -> None:
        """Advance the simulation by exactly one cycle."""
        for component in self._components:
            component.tick(self.cycle)
        for queue in self._queues:
            queue.commit()
        self.cycle += 1

    def run(self, cycles: int) -> int:
        """Run for ``cycles`` cycles; returns the new current cycle."""
        for _ in range(cycles):
            self.step()
        return self.cycle

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int = 1_000_000,
        check_every: int = 1,
    ) -> int:
        """Run until ``predicate()`` is true.

        Raises :class:`SimulationError` if ``max_cycles`` elapse first —
        the standard way benches and tests detect deadlock/livelock.
        """
        start = self.cycle
        while not predicate():
            if self.cycle - start >= max_cycles:
                raise SimulationError(
                    f"run_until exceeded {max_cycles} cycles "
                    f"(started at {start}, now {self.cycle})"
                )
            for _ in range(check_every):
                self.step()
        return self.cycle

    def finish(self) -> None:
        """Invoke every component's :meth:`Component.finish` hook once."""
        if self._finished:
            return
        self._finished = True
        for component in self._components:
            component.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator cycle={self.cycle} components={len(self._components)} "
            f"queues={len(self._queues)}>"
        )
