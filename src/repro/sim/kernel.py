"""The cycle-based simulation kernel (activity-driven)."""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.sim.component import Component
from repro.sim.queue import SimQueue
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer


class SimulationError(RuntimeError):
    """Raised for kernel-level failures (deadlock, double registration...)."""


def _sched_key(component: Component) -> int:
    return component._sched_index


class Simulator:
    """Owns components and queues and advances them cycle by cycle.

    The kernel is two-phase: every *active* component's :meth:`tick` runs
    first, then every *dirty* queue commits its staged items.  A queue
    push staged in cycle *n* is therefore consumer-visible in cycle
    *n + 1*.

    Activity-driven scheduling
    --------------------------
    Instead of ticking every registered component each cycle, the kernel
    keeps an **active set**.  Components are active from registration and
    stay active while :meth:`Component.is_idle` returns False (the
    default, so plain components behave exactly as before).  A component
    that reports idle is removed from the schedule and re-enters it only
    when :meth:`Component.wake` is called — normally by a
    :class:`SimQueue` it registered with (``wake_on_push`` fires at
    commit time, when items become visible; ``wake_on_pop`` fires when
    space frees).  Active components always tick in registration order,
    so the schedule is deterministic.

    Queue commits follow the same discipline: a push puts the queue on a
    per-cycle *dirty list* and only dirty queues are committed, so a
    quiescent fabric costs neither component ticks nor queue sweeps.

    Clock domains
    -------------
    Components placed in a GALS clock domain via
    :meth:`Component.set_clock_domain` are ticked only on that domain's
    edges (``cycle % divisor == phase``).  The gate is applied identically
    on the activity-driven path and the strict reference path, so domain
    membership composes with the active-set schedule without perturbing
    determinism: an idle slow-domain component is retired and woken like
    any other, and merely skips the off-edge cycles while scheduled.

    ``strict=True`` (or the ``REPRO_SIM_STRICT=1`` environment variable)
    selects the brute-force reference path — tick every component, commit
    every queue — which must produce byte-identical stats and traces;
    tests assert exactly that.

    Parameters
    ----------
    trace:
        Optional :class:`Tracer`; if omitted a disabled tracer is created
        so components can log unconditionally.
    strict:
        ``True`` forces the tick-everything reference kernel; ``None``
        (default) consults ``REPRO_SIM_STRICT``.
    """

    def __init__(
        self, trace: Optional[Tracer] = None, strict: Optional[bool] = None
    ) -> None:
        if strict is None:
            flag = os.environ.get("REPRO_SIM_STRICT", "")
            strict = flag.strip().lower() not in ("", "0", "false", "no", "off")
        self.strict = bool(strict)
        self.cycle = 0
        self.stats = StatsRegistry()
        self.trace = trace if trace is not None else Tracer(enabled=False)
        self._components: List[Component] = []
        self._component_names: Dict[str, Component] = {}
        self._queues: List[SimQueue] = []
        self._queue_names: Dict[str, SimQueue] = {}
        self._finished = False
        # Activity scheduler state: the run list holds this cycle's active
        # components in registration order; wakes accumulate between steps
        # and merge in at the top of the next one.
        self._run_list: List[Component] = []
        self._wakes: List[Component] = []
        self._dirty_queues: List[SimQueue] = []
        # Idle components are retired from the run list every
        # (RETIRE_EVERY = mask + 1) cycles; must be a power of two - 1.
        self._retire_mask = 7

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def add(self, component: Component) -> Component:
        """Register a component; returns it for chaining."""
        if component.name in self._component_names:
            raise SimulationError(f"duplicate component name {component.name!r}")
        component.bind(self)
        component._sched_index = len(self._components)
        self._components.append(component)
        self._component_names[component.name] = component
        component._scheduled = True
        self._wakes.append(component)
        return component

    def add_queue(self, queue: SimQueue) -> SimQueue:
        """Register a queue so the kernel commits it when dirty."""
        if queue.name in self._queue_names:
            raise SimulationError(f"duplicate queue name {queue.name!r}")
        self._queues.append(queue)
        self._queue_names[queue.name] = queue
        queue._kernel = self
        if queue._dirty:  # registered with items already staged
            self._dirty_queues.append(queue)
        return queue

    def new_queue(self, name: str, capacity: Optional[int] = 4) -> SimQueue:
        """Create **and** register a queue in one call."""
        return self.add_queue(SimQueue(name, capacity))

    def component(self, name: str) -> Component:
        return self._component_names[name]

    def queue(self, name: str) -> SimQueue:
        return self._queue_names[name]

    @property
    def components(self) -> List[Component]:
        return list(self._components)

    @property
    def active_count(self) -> int:
        """Components scheduled to tick next cycle (bench introspection)."""
        if self.strict:
            return len(self._components)
        return len(self._run_list) + len(self._wakes)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def step(self) -> None:
        """Advance the simulation by exactly one cycle."""
        if self.strict:
            self._step_strict()
            return
        # Merge components woken since the last step (or freshly added).
        wakes = self._wakes
        run_list = self._run_list
        if wakes:
            run_list.extend(wakes)
            wakes.clear()
            run_list.sort(key=_sched_key)
        cycle = self.cycle
        for component in run_list:
            # Clock-domain gate: divisor 1 (the kernel reference clock)
            # short-circuits, so single-domain builds pay one compare.
            divisor = component._clk_divisor
            if divisor == 1 or cycle % divisor == component._clk_phase:
                component.tick(cycle)
        # Commit only queues that staged something this cycle; commits
        # wake push-waiters, which lands them in _wakes for next cycle.
        dirty = self._dirty_queues
        if dirty:
            for queue in dirty:
                if queue._dirty:
                    queue.commit()
            dirty.clear()
        # Retire components that report idle (post-commit, so anything
        # that just became visible keeps its consumer scheduled).  The
        # sweep runs every RETIRE_EVERY cycles: retirement is purely an
        # optimisation (extra ticks of an idle component are no-ops), and
        # sweeping on a cadence keeps busy phases from paying an is_idle
        # scan per component per cycle while bursty traffic oscillates.
        if cycle & self._retire_mask == self._retire_mask:
            retained = []
            retain = retained.append
            for component in run_list:
                if component.is_idle():
                    component._scheduled = False
                else:
                    retain(component)
            if len(retained) != len(run_list):
                self._run_list = retained
        self.cycle += 1

    def _step_strict(self) -> None:
        """Reference path: tick everything, commit everything."""
        cycle = self.cycle
        for component in self._components:
            divisor = component._clk_divisor
            if divisor == 1 or cycle % divisor == component._clk_phase:
                component.tick(cycle)
        for queue in self._queues:
            queue.commit()
        # Keep scheduler bookkeeping bounded; strict mode never prunes.
        self._wakes.clear()
        self._dirty_queues.clear()
        self.cycle += 1

    def run(self, cycles: int) -> int:
        """Run for ``cycles`` cycles; returns the new current cycle."""
        for _ in range(cycles):
            self.step()
        return self.cycle

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int = 1_000_000,
        check_every: int = 1,
    ) -> int:
        """Run until ``predicate()`` is true.

        The predicate is evaluated every ``check_every`` cycles, but the
        simulation never advances more than ``max_cycles`` cycles past the
        starting point — the final stretch is clamped so a coarse
        ``check_every`` cannot overshoot the budget.  Raises
        :class:`SimulationError` if ``max_cycles`` elapse first — the
        standard way benches and tests detect deadlock/livelock.
        """
        start = self.cycle
        while not predicate():
            elapsed = self.cycle - start
            if elapsed >= max_cycles:
                raise SimulationError(
                    f"run_until exceeded {max_cycles} cycles "
                    f"(started at {start}, now {self.cycle})"
                )
            for _ in range(min(check_every, max_cycles - elapsed)):
                self.step()
        return self.cycle

    def finish(self) -> None:
        """Invoke every component's :meth:`Component.finish` hook once."""
        if self._finished:
            return
        self._finished = True
        for component in self._components:
            component.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator cycle={self.cycle} components={len(self._components)} "
            f"queues={len(self._queues)}>"
        )
