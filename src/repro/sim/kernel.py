"""The cycle-based simulation kernel (activity-driven, event-skipping)."""

from __future__ import annotations

import os
from heapq import heappop, heappush
from operator import attrgetter
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.component import Component
from repro.sim.queue import SimQueue
from repro.sim.snapshot import SnapshotMismatchError, Snapshottable
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer


class SimulationError(RuntimeError):
    """Raised for kernel-level failures (deadlock, double registration...).

    Subsystems raise *named* subclasses for conditions that deserve a
    distinct ``except`` target — e.g.
    :class:`repro.transport.faults.FabricPartitionError` when a fault
    schedule severs all routes to a destination mid-run.  Catching
    ``SimulationError`` still catches them all.
    """


class RunBudgetExceededError(SimulationError):
    """:meth:`Simulator.run_until` spent its ``max_cycles`` budget before
    its predicate held.

    A *named* subclass so callers that can diagnose the stall (e.g.
    :meth:`repro.soc.builder.NocSoc.run_to_completion` asking each
    workload what it is blocked on) can tell a plain budget timeout from
    the other :class:`SimulationError` conditions — a partition watchdog
    firing, say — which they must not mask.
    """


#: Registration-order sort key for the wake merge (C-level accessor: the
#: merge sorts on every cycle that woke anything).
_sched_key = attrgetter("_sched_index")


#: Park a component on the wheel only when its next event is at least this
#: many cycles out; nearer events stay in the run list (the per-cycle
#: no-op ticks are cheaper than wheel churn) and are handled by the
#: whole-kernel skip in :meth:`Simulator.run` when the fabric is quiet.
PARK_HORIZON = 8


class TimingWheel:
    """Hierarchical re-activation schedule for parked components.

    Two levels: a min-heap of distinct event cycles (the coarse level —
    one entry per cycle that has sleepers) over per-cycle buckets of
    components (the fine level).  ``schedule`` is O(log n) in the number
    of *distinct* pending cycles, the due-check the kernel runs every
    cycle is a single compare against the heap top, and ``next_cycle``
    (what the skip logic needs) is O(1).

    Entries can go stale: a parked component woken early by a queue event
    re-enters the schedule through the normal wake path and clears its
    ``_parked_until`` stamp, so the wheel validates each entry against
    that stamp when its slot comes due and silently drops mismatches —
    this is what makes wakes during a skipped window rewind-safe.
    """

    __slots__ = ("_buckets", "_heap", "events_scheduled", "events_fired")

    def __init__(self) -> None:
        self._buckets: Dict[int, List[Component]] = {}
        self._heap: List[int] = []
        self.events_scheduled = 0
        self.events_fired = 0

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def schedule(self, cycle: int, component: Component) -> None:
        """Park ``component`` until ``cycle`` (caller stamps it)."""
        bucket = self._buckets.get(cycle)
        if bucket is None:
            self._buckets[cycle] = [component]
            heappush(self._heap, cycle)
        else:
            bucket.append(component)
        self.events_scheduled += 1

    def next_cycle(self) -> Optional[int]:
        """Earliest cycle holding parked components (None when empty)."""
        return self._heap[0] if self._heap else None

    def pop_due(self, cycle: int) -> List[Tuple[int, Component]]:
        """Drain every slot at or before ``cycle`` (stale entries too —
        the caller validates against ``_parked_until``)."""
        due: List[Tuple[int, Component]] = []
        heap = self._heap
        while heap and heap[0] <= cycle:
            slot = heappop(heap)
            for component in self._buckets.pop(slot):
                due.append((slot, component))
        return due


class Simulator(Snapshottable):
    """Owns components and queues and advances them cycle by cycle.

    The kernel is two-phase: every *active* component's :meth:`tick` runs
    first, then every *dirty* queue commits its staged items.  A queue
    push staged in cycle *n* is therefore consumer-visible in cycle
    *n + 1*.

    Activity-driven scheduling
    --------------------------
    Instead of ticking every registered component each cycle, the kernel
    keeps an **active set**.  Components are active from registration and
    stay active while :meth:`Component.is_idle` returns False (the
    default, so plain components behave exactly as before).  A component
    that reports idle is removed from the schedule and re-enters it only
    when :meth:`Component.wake` is called — normally by a
    :class:`SimQueue` it registered with (``wake_on_push`` fires at
    commit time, when items become visible; ``wake_on_pop`` fires when
    space frees).  Active components always tick in registration order,
    so the schedule is deterministic.

    Queue commits follow the same discipline: a push puts the queue on a
    per-cycle *dirty list* and only dirty queues are committed, so a
    quiescent fabric costs neither component ticks nor queue sweeps.

    Clock domains
    -------------
    Components placed in a GALS clock domain via
    :meth:`Component.set_clock_domain` are ticked only on that domain's
    edges (``cycle % divisor == phase``).  The gate is applied identically
    on the activity-driven path and the strict reference path, so domain
    membership composes with the active-set schedule without perturbing
    determinism: an idle slow-domain component is retired and woken like
    any other, and merely skips the off-edge cycles while scheduled.

    ``strict=True`` (or the ``REPRO_SIM_STRICT=1`` environment variable)
    selects the brute-force reference path — tick every component, commit
    every queue — which must produce byte-identical stats and traces;
    tests assert exactly that.

    Parameters
    ----------
    trace:
        Optional :class:`Tracer`; if omitted a disabled tracer is created
        so components can log unconditionally.
    strict:
        ``True`` forces the tick-everything reference kernel; ``None``
        (default) consults ``REPRO_SIM_STRICT``.
    """

    def __init__(
        self, trace: Optional[Tracer] = None, strict: Optional[bool] = None
    ) -> None:
        if strict is None:
            flag = os.environ.get("REPRO_SIM_STRICT", "")
            strict = flag.strip().lower() not in ("", "0", "false", "no", "off")
        self.strict = bool(strict)
        self.cycle = 0
        self.stats = StatsRegistry()
        self.trace = trace if trace is not None else Tracer(enabled=False)
        self._components: List[Component] = []
        self._component_names: Dict[str, Component] = {}
        self._queues: List[SimQueue] = []
        self._queue_names: Dict[str, SimQueue] = {}
        self._finished = False
        # Activity scheduler state: the run list holds this cycle's active
        # components in registration order; wakes accumulate between steps
        # and merge in at the top of the next one.
        self._run_list: List[Component] = []
        self._wakes: List[Component] = []
        self._dirty_queues: List[SimQueue] = []
        # Idle components are retired from the run list every
        # (RETIRE_EVERY = mask + 1) cycles; must be a power of two - 1.
        self._retire_mask = 7
        # Event-wheel state: components whose next event is far away are
        # parked here by the retire sweep and re-activated when their
        # slot comes due (or earlier, by a wake).  run() additionally
        # skips `now` straight past provably dead stretches.
        self._wheel = TimingWheel()
        self._quiet_step = True
        #: Cycles advanced without executing a kernel step (bench metric).
        self.cycles_skipped = 0

    @property
    def wheel_events(self) -> int:
        """Timing-wheel re-activations scheduled so far (bench metric)."""
        return self._wheel.events_scheduled

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def add(self, component: Component) -> Component:
        """Register a component; returns it for chaining."""
        if component.name in self._component_names:
            raise SimulationError(f"duplicate component name {component.name!r}")
        component.bind(self)
        component._sched_index = len(self._components)
        self._components.append(component)
        self._component_names[component.name] = component
        component._scheduled = True
        self._wakes.append(component)
        return component

    def add_queue(self, queue: SimQueue) -> SimQueue:
        """Register a queue so the kernel commits it when dirty."""
        if queue.name in self._queue_names:
            raise SimulationError(f"duplicate queue name {queue.name!r}")
        self._queues.append(queue)
        self._queue_names[queue.name] = queue
        queue._kernel = self
        if queue._dirty:  # registered with items already staged
            self._dirty_queues.append(queue)
        return queue

    def new_queue(self, name: str, capacity: Optional[int] = 4) -> SimQueue:
        """Create **and** register a queue in one call."""
        return self.add_queue(SimQueue(name, capacity))

    def component(self, name: str) -> Component:
        return self._component_names[name]

    def queue(self, name: str) -> SimQueue:
        return self._queue_names[name]

    @property
    def components(self) -> List[Component]:
        return list(self._components)

    @property
    def active_count(self) -> int:
        """Components scheduled to tick next cycle (bench introspection)."""
        if self.strict:
            return len(self._components)
        return len(self._run_list) + len(self._wakes)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def step(self) -> None:
        """Advance the simulation by exactly one cycle."""
        if self.strict:
            self._step_strict()
            return
        cycle = self.cycle
        # Re-activate parked components whose wheel slot is due.  Entries
        # are validated against the park stamp: a component woken early
        # (or re-parked elsewhere) left a stale entry behind, which is
        # simply dropped.
        wheel = self._wheel
        if wheel._heap and wheel._heap[0] <= cycle:
            wakes = self._wakes
            for slot, component in wheel.pop_due(cycle):
                if component._parked_until == slot and not component._scheduled:
                    component._parked_until = -1
                    component._scheduled = True
                    wheel.events_fired += 1
                    wakes.append(component)
        # Merge components woken since the last step (or freshly added).
        wakes = self._wakes
        run_list = self._run_list
        if wakes:
            run_list.extend(wakes)
            wakes.clear()
            run_list.sort(key=_sched_key)
        for component in run_list:
            # Clock-domain gate: divisor 1 (the kernel reference clock)
            # short-circuits, so single-domain builds pay one compare.
            divisor = component._clk_divisor
            if divisor == 1 or cycle % divisor == component._clk_phase:
                component.tick(cycle)
        # Commit only queues that staged something this cycle; commits
        # wake push-waiters, which lands them in _wakes for next cycle.
        # A cycle with no commits is *quiet*: nothing moved anywhere, so
        # it is a candidate for the time-skip scan in run() — gating the
        # scan on quietness keeps its cost off the busy-fabric path.
        dirty = self._dirty_queues
        if dirty:
            self._quiet_step = False
            for queue in dirty:
                if queue._dirty:
                    queue.commit()
            dirty.clear()
        else:
            self._quiet_step = True
        # Retire components that report idle (post-commit, so anything
        # that just became visible keeps its consumer scheduled).  The
        # sweep runs every RETIRE_EVERY cycles: retirement is purely an
        # optimisation (extra ticks of an idle component are no-ops), and
        # sweeping on a cadence keeps busy phases from paying an is_idle
        # scan per component per cycle while bursty traffic oscillates.
        # The same sweep parks non-idle components whose declared next
        # event is at least PARK_HORIZON out on the timing wheel (a
        # dormant component — next event None — is simply descheduled;
        # its wake registrations bring it back, exactly like retirement).
        if cycle & self._retire_mask == self._retire_mask:
            now = cycle + 1
            wheel = self._wheel
            retained = []
            retain = retained.append
            for component in run_list:
                if component.is_idle():
                    component._scheduled = False
                    continue
                if component._next_event_known:
                    event = component.next_event_cycle(now)
                    if event is None:
                        component._scheduled = False
                        continue
                    divisor = component._clk_divisor
                    if divisor != 1:
                        event += (component._clk_phase - event) % divisor
                    if event >= now + PARK_HORIZON:
                        component._scheduled = False
                        component._parked_until = event
                        wheel.schedule(event, component)
                        continue
                elif component._clk_divisor >= PARK_HORIZON:
                    # Slow-domain component with no event protocol: its
                    # next possible action is its next clock edge.
                    divisor = component._clk_divisor
                    event = now + (component._clk_phase - now) % divisor
                    if event >= now + PARK_HORIZON:
                        component._scheduled = False
                        component._parked_until = event
                        wheel.schedule(event, component)
                        continue
                retain(component)
            if len(retained) != len(run_list):
                self._run_list = retained
        self.cycle += 1

    def _step_strict(self) -> None:
        """Reference path: tick everything, commit everything."""
        cycle = self.cycle
        for component in self._components:
            divisor = component._clk_divisor
            if divisor == 1 or cycle % divisor == component._clk_phase:
                component.tick(cycle)
        for queue in self._queues:
            queue.commit()
        # Keep scheduler bookkeeping bounded; strict mode never prunes.
        self._wakes.clear()
        self._dirty_queues.clear()
        self.cycle += 1

    def _next_event_horizon(self, limit: int) -> int:
        """Earliest future cycle at which anything can happen, capped at
        ``limit``.

        Called between steps with no wakes and no dirty queues pending:
        every scheduled component is consulted for its next possible
        activity cycle (its next clock edge when it does not speak the
        next-event protocol), the timing wheel contributes its earliest
        slot, and the minimum is where ``run`` may jump ``now`` to.  Any
        component that may act next cycle makes the answer ``self.cycle``
        (no skip) — the scan bails out on the first such component, so a
        busy fabric pays one attribute check per scheduled component.
        """
        now = self.cycle
        horizon = limit
        heap = self._wheel._heap
        if heap:
            slot = heap[0]
            if slot <= now:
                return now
            if slot < horizon:
                horizon = slot
        run_list = self._run_list
        dormant = 0
        for component in run_list:
            divisor = component._clk_divisor
            if component._next_event_known:
                event = component.next_event_cycle(now)
                if event is None:
                    # Dormant until a wake: deschedule right here (the
                    # skip would jump past the retire sweeps that would
                    # otherwise prune it).  Only a completed scan commits
                    # this — an early bail-out leaves the list untouched.
                    component._scheduled = False
                    dormant += 1
                    continue
                if divisor != 1:
                    event += (component._clk_phase - event) % divisor
            elif component.is_idle():
                # No event protocol, but idle: retire it now instead of
                # waiting for the sweep — identical semantics (an idle
                # component is dormant by the is_idle contract), and it
                # unblocks skipping across the gaps between packets.
                component._scheduled = False
                dormant += 1
                continue
            elif divisor == 1:
                self._rearm_dormant(run_list, dormant)
                return now
            else:
                event = now + (component._clk_phase - now) % divisor
            if event <= now:
                self._rearm_dormant(run_list, dormant)
                return now
            if event < horizon:
                horizon = event
        if dormant:
            self._run_list = [c for c in run_list if c._scheduled]
        return horizon

    @staticmethod
    def _rearm_dormant(run_list: List[Component], dormant: int) -> None:
        """Undo in-scan descheduling when the scan bails out early."""
        if dormant:
            for component in run_list:
                if not component._scheduled:
                    component._scheduled = True

    def run(self, cycles: int) -> int:
        """Run for ``cycles`` cycles; returns the new current cycle.

        On the activity kernel, stretches of provably dead time are
        skipped: whenever every scheduled component's next possible
        activity cycle lies in the future (and nothing was woken or
        staged), ``now`` advances straight to the earliest such event —
        see :meth:`Component.next_event_cycle` for why this is exact.
        The strict kernel executes every cycle, as always.
        """
        end = self.cycle + cycles
        if self.strict:
            while self.cycle < end:
                self._step_strict()
            return self.cycle
        while self.cycle < end:
            self.step()
            if self._wakes or not self._quiet_step or self.cycle >= end:
                continue
            target = self._next_event_horizon(end)
            if target > self.cycle:
                self.cycles_skipped += target - self.cycle
                self.cycle = target
        return self.cycle

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int = 1_000_000,
        check_every: int = 1,
    ) -> int:
        """Run until ``predicate()`` is true.

        The predicate is evaluated every ``check_every`` cycles, but the
        simulation never advances more than ``max_cycles`` cycles past the
        starting point — the final stretch is clamped so a coarse
        ``check_every`` cannot overshoot the budget.  Raises
        :class:`RunBudgetExceededError` if ``max_cycles`` elapse first —
        the standard way benches and tests detect deadlock/livelock.
        """
        start = self.cycle
        while not predicate():
            elapsed = self.cycle - start
            if elapsed >= max_cycles:
                raise RunBudgetExceededError(
                    f"run_until exceeded {max_cycles} cycles "
                    f"(started at {start}, now {self.cycle})"
                )
            for _ in range(min(check_every, max_cycles - elapsed)):
                self.step()
        return self.cycle

    def finish(self) -> None:
        """Invoke every component's :meth:`Component.finish` hook once."""
        if self._finished:
            return
        self._finished = True
        for component in self._components:
            component.finish()

    # ------------------------------------------------------------------ #
    # state capture
    # ------------------------------------------------------------------ #
    def _snapshot_state(self) -> dict:
        """Everything that mutates as the simulation runs, keyed by name.

        Scheduler state is captured per component (scheduled flag, park
        stamp, and — when the component is itself :class:`Snapshottable`
        — its state envelope).  The run-list/wakes partition is *not*
        captured: :meth:`step` merges and sorts both by ``_sched_index``
        before ticking, so restore reconstructs the same effective
        schedule from the flags alone.  Wheel buckets are captured by
        component name, stale entries included, so the post-restore skip
        horizon is exactly the original's.
        """
        components = {}
        for component in self._components:
            entry: dict = {
                "scheduled": component._scheduled,
                "parked_until": component._parked_until,
            }
            if isinstance(component, Snapshottable):
                entry["state"] = component.snapshot()
            components[component.name] = entry
        queues = {}
        for queue in self._queues:
            if self._component_names.get(queue.name) is queue:
                # Dual-registered channel (e.g. CdcFifo is both component
                # and queue): captured once, through the component entry.
                continue
            queues[queue.name] = queue.snapshot()
        wheel = self._wheel
        return {
            "cycle": self.cycle,
            "cycles_skipped": self.cycles_skipped,
            "finished": self._finished,
            "quiet_step": self._quiet_step,
            "components": components,
            "queues": queues,
            "dirty_queues": [q.name for q in self._dirty_queues],
            "wheel": {
                "buckets": {
                    slot: [c.name for c in bucket]
                    for slot, bucket in wheel._buckets.items()
                },
                "events_scheduled": wheel.events_scheduled,
                "events_fired": wheel.events_fired,
            },
            "stats": self.stats.snapshot(),
            "trace": self.trace.snapshot(),
        }

    def _restore_state(self, state: dict) -> None:
        by_name = self._component_names
        saved_components = state["components"]
        unknown = set(saved_components) - set(by_name)
        missing = set(by_name) - set(saved_components)
        if unknown or missing:
            raise SnapshotMismatchError(
                "snapshot does not fit this build: "
                f"unknown components {sorted(unknown)!r}, "
                f"missing components {sorted(missing)!r}"
            )
        saved_queues = state["queues"]
        expected_queues = {
            q.name for q in self._queues if by_name.get(q.name) is not q
        }
        if set(saved_queues) != expected_queues:
            raise SnapshotMismatchError(
                "snapshot does not fit this build: "
                f"unknown queues {sorted(set(saved_queues) - expected_queues)!r}, "
                f"missing queues {sorted(expected_queues - set(saved_queues))!r}"
            )
        self.cycle = state["cycle"]
        self.cycles_skipped = state["cycles_skipped"]
        self._finished = state["finished"]
        self._quiet_step = state["quiet_step"]
        scheduled: List[Component] = []
        for name, entry in saved_components.items():
            component = by_name[name]
            component._scheduled = entry["scheduled"]
            component._parked_until = entry["parked_until"]
            sub = entry.get("state")
            if sub is not None:
                if not isinstance(component, Snapshottable):
                    raise SnapshotMismatchError(
                        f"component {name!r} has captured state but this "
                        f"build's {type(component).__name__} is not "
                        f"Snapshottable"
                    )
                component.restore(sub)
            if component._scheduled:
                scheduled.append(component)
        scheduled.sort(key=_sched_key)
        self._run_list = scheduled
        self._wakes = []
        for name, envelope in saved_queues.items():
            self._queue_names[name].restore(envelope)
        self._dirty_queues = [self._queue_names[n] for n in state["dirty_queues"]]
        wheel = self._wheel
        wheel._buckets.clear()
        wheel._heap.clear()
        for slot, names in state["wheel"]["buckets"].items():
            wheel._buckets[slot] = [by_name[n] for n in names]
            heappush(wheel._heap, slot)
        wheel.events_scheduled = state["wheel"]["events_scheduled"]
        wheel.events_fired = state["wheel"]["events_fired"]
        self.stats.restore(state["stats"])
        self.trace.restore(state["trace"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator cycle={self.cycle} components={len(self._components)} "
            f"queues={len(self._queues)}>"
        )
