"""Cycle-based simulation kernel.

The kernel is deliberately simple and deterministic: a :class:`Simulator`
owns a set of :class:`~repro.sim.component.Component` objects and a set of
:class:`~repro.sim.queue.SimQueue` channels.  Each cycle has two phases:

1. *tick* — every component observes the committed state of its input
   queues and stages pushes onto its output queues;
2. *commit* — all staged pushes become visible.

Because pushes staged in cycle *n* are only observable in cycle *n + 1*,
every queue hop costs exactly one cycle, which is how link and router
pipeline latency is modelled throughout the transport layer.
"""

from repro.sim.component import Component
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.queue import SimQueue
from repro.sim.stats import Counter, Histogram, LatencyStat, StatsRegistry
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Component",
    "Counter",
    "Histogram",
    "LatencyStat",
    "SimQueue",
    "SimulationError",
    "Simulator",
    "StatsRegistry",
    "TraceEvent",
    "Tracer",
]
