"""Statistics primitives shared by all layers.

Everything that the benchmarks report — latencies, throughput, link
utilization, feature-coverage ratios — flows through these classes so that
every experiment prints comparable, reproducible numbers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.sim.snapshot import Snapshottable


class Counter(Snapshottable):
    """A monotonically increasing event counter."""

    _snapshot_fields = ("value",)

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment")
        self.value += amount

    def rate(self, cycles: int) -> float:
        """Events per cycle over ``cycles`` cycles."""
        return self.value / cycles if cycles else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name!r}={self.value}>"


class Histogram(Snapshottable):
    """Simple value histogram with summary statistics."""

    _snapshot_fields = ("_samples",)

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[float] = []

    def add(self, value: float) -> None:
        self._samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def mean(self) -> float:
        return sum(self._samples) / len(self._samples) if self._samples else 0.0

    def minimum(self) -> float:
        return min(self._samples) if self._samples else 0.0

    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def stddev(self) -> float:
        n = len(self._samples)
        if n < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((s - mu) ** 2 for s in self._samples) / (n - 1))

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self._samples:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} out of range [0, 100]")
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "min": self.minimum(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
            "max": self.maximum(),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Histogram {self.name!r} n={self.count} mean={self.mean():.2f}>"


class LatencyStat(Snapshottable):
    """Tracks request→response latencies keyed by an arbitrary token."""

    _snapshot_fields = ("_open",)

    def __init__(self, name: str) -> None:
        self.name = name
        self._open: Dict[object, int] = {}
        self.histogram = Histogram(name)

    def _snapshot_state(self) -> Dict[str, object]:
        state = super()._snapshot_state()
        state["histogram"] = self.histogram.snapshot()
        return state

    def _restore_state(self, state) -> None:
        super()._restore_state(state)
        self.histogram.restore(state["histogram"])

    def start(self, token: object, cycle: int) -> None:
        if token in self._open:
            raise KeyError(f"latency {self.name!r}: token {token!r} already open")
        self._open[token] = cycle

    def stop(self, token: object, cycle: int) -> float:
        try:
            started = self._open.pop(token)
        except KeyError:
            raise KeyError(
                f"latency {self.name!r}: token {token!r} was never started"
            ) from None
        delta = cycle - started
        if delta < 0:
            raise ValueError(f"latency {self.name!r}: negative latency {delta}")
        self.histogram.add(delta)
        return float(delta)

    @property
    def open_count(self) -> int:
        return len(self._open)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<LatencyStat {self.name!r} open={self.open_count}>"


class StatsRegistry:
    """Namespace of counters/histograms/latency stats for one simulation."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._latencies: Dict[str, LatencyStat] = {}

    # ------------------------------------------------------------------ #
    # state capture
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """Capture every registered stat, keyed by kind and name."""
        return {
            "counters": {n: c.snapshot() for n, c in self._counters.items()},
            "histograms": {n: h.snapshot() for n, h in self._histograms.items()},
            "latencies": {n: s.snapshot() for n, s in self._latencies.items()},
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Restore via get-or-create, never discarding live objects.

        Components cache references to their stats (e.g. a protocol
        master resolves its latency stat once in ``bind``), so restore
        must mutate the registered objects in place.  A snapshot may
        name stats this build has not touched yet — get-or-create
        registers them, exactly as first use would have.
        """
        for name, envelope in state["counters"].items():
            self.counter(name).restore(envelope)
        for name, envelope in state["histograms"].items():
            self.histogram(name).restore(envelope)
        for name, envelope in state["latencies"].items():
            self.latency(name).restore(envelope)

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def latency(self, name: str) -> LatencyStat:
        if name not in self._latencies:
            self._latencies[name] = LatencyStat(name)
        return self._latencies[name]

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> Dict[str, Dict[str, float]]:
        return {name: h.summary() for name, h in sorted(self._histograms.items())}

    def report(self) -> str:
        """Human-readable dump used by examples and bench harnesses."""
        lines: List[str] = []
        if self._counters:
            lines.append("counters:")
            for name, counter in sorted(self._counters.items()):
                lines.append(f"  {name}: {counter.value}")
        for name, hist in sorted(self._histograms.items()):
            s = hist.summary()
            lines.append(
                f"hist {name}: n={int(s['count'])} mean={s['mean']:.2f} "
                f"p50={s['p50']:.0f} p95={s['p95']:.0f} max={s['max']:.0f}"
            )
        for name, lat in sorted(self._latencies.items()):
            s = lat.histogram.summary()
            lines.append(
                f"latency {name}: n={int(s['count'])} mean={s['mean']:.2f} "
                f"p50={s['p50']:.0f} p95={s['p95']:.0f} max={s['max']:.0f} "
                f"open={lat.open_count}"
            )
        return "\n".join(lines)


def merge_summaries(
    summaries: List[Dict[str, float]], weights: Optional[List[float]] = None
) -> Dict[str, float]:
    """Combine per-run histogram summaries (weighted by sample count)."""
    if not summaries:
        return {}
    if weights is None:
        weights = [s.get("count", 1.0) for s in summaries]
    total = sum(weights) or 1.0
    merged: Dict[str, float] = {
        "count": sum(s.get("count", 0.0) for s in summaries),
        "mean": sum(s.get("mean", 0.0) * w for s, w in zip(summaries, weights))
        / total,
        "min": min(s.get("min", 0.0) for s in summaries),
        "max": max(s.get("max", 0.0) for s in summaries),
    }
    return merged
