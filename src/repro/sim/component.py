"""Base class for everything that lives inside a :class:`Simulator`."""

from __future__ import annotations


class Component:
    """A named object ticked once per simulated cycle.

    Subclasses override :meth:`tick`.  During ``tick`` a component may pop
    from its input queues (immediately visible) and push to its output
    queues (visible to consumers only from the next cycle, once the kernel
    commits).  Components must not communicate through shared mutable
    state outside of queues; that is what keeps the simulation
    deterministic regardless of registration order for well-formed models.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._simulator = None

    @property
    def simulator(self):
        """The :class:`Simulator` this component is registered with."""
        if self._simulator is None:
            raise RuntimeError(f"component {self.name!r} is not registered")
        return self._simulator

    @property
    def now(self) -> int:
        """Current simulation cycle (convenience passthrough)."""
        return self.simulator.cycle

    def bind(self, simulator) -> None:
        """Called by :meth:`Simulator.add`.  Subclasses rarely override."""
        if self._simulator is not None and self._simulator is not simulator:
            raise RuntimeError(
                f"component {self.name!r} is already bound to another simulator"
            )
        self._simulator = simulator

    def tick(self, cycle: int) -> None:
        """Advance the component by one cycle.  Default: do nothing."""

    def finish(self) -> None:
        """Hook invoked once when the simulation ends (for flushing stats)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
