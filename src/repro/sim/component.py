"""Base class for everything that lives inside a :class:`Simulator`."""

from __future__ import annotations


class Component:
    """A named object ticked by the simulator.

    Subclasses override :meth:`tick`.  During ``tick`` a component may pop
    from its input queues (immediately visible) and push to its output
    queues (visible to consumers only from the next cycle, once the kernel
    commits).  Components must not communicate through shared mutable
    state outside of queues; that is what keeps the simulation
    deterministic regardless of registration order for well-formed models.

    Activity contract
    -----------------
    The kernel is *activity-driven*: it only ticks components in its
    active set.  A component stays in the active set as long as
    :meth:`is_idle` returns False, which is the default — components
    that do not opt in behave exactly as under a tick-everything kernel.

    Opting in means honouring two rules:

    - :meth:`is_idle` must be a pure predicate of *currently visible*
      state ("this tick, and every future tick until external input
      arrives, is a no-op"), evaluated after queue commits; and
    - every external event that can make an idle component non-idle must
      :meth:`wake` it.  Registering via :meth:`SimQueue.wake_on_push` /
      :meth:`SimQueue.wake_on_pop <repro.sim.queue.SimQueue.wake_on_pop>`
      covers the queue-borne events, which are the only legal ones.

    Under those rules the activity-driven schedule is cycle-for-cycle
    identical to ticking everything (``Simulator(strict=True)``).

    Clock domains
    -------------
    Every component belongs to a clock domain.  The default is the kernel
    reference clock (``clock_domain is None``): the component is ticked on
    every kernel cycle, exactly as before.  :meth:`set_clock_domain`
    assigns a slower GALS-style domain; both kernels (activity-driven and
    strict) then invoke :meth:`tick` only on that domain's clock edges, so
    domain gating never perturbs strict-vs-activity determinism.  Ticks
    always receive the *kernel* cycle number — timestamps, latencies and
    traces stay in one global time base regardless of domain membership.
    """

    #: Class-level opt-in flag for the next-event protocol: True means the
    #: kernel may call :meth:`next_event_cycle` to skip dead cycles (and
    #: park the component on its timing wheel).  Subclasses that override
    #: :meth:`next_event_cycle` must set it; the default (False) keeps the
    #: component ticking every cycle of its clock domain, exactly as
    #: before.
    _next_event_known = False

    def __init__(self, name: str) -> None:
        self.name = name
        self._simulator = None
        # Scheduler bookkeeping (owned by Simulator; see kernel.py).
        self._scheduled = False
        self._sched_index = -1
        # >= 0 while parked on the kernel's timing wheel (the value is the
        # wheel slot's cycle; -1 otherwise).  Owned by Simulator/wake.
        self._parked_until = -1
        # Clock-domain gating (see set_clock_domain); divisor 1 == the
        # kernel reference clock, checked on the kernel hot path as two
        # plain ints so ungated components pay one compare per tick.
        self.clock_domain = None
        self._clk_divisor = 1
        self._clk_phase = 0

    @property
    def simulator(self):
        """The :class:`Simulator` this component is registered with."""
        if self._simulator is None:
            raise RuntimeError(f"component {self.name!r} is not registered")
        return self._simulator

    @property
    def now(self) -> int:
        """Current simulation cycle (convenience passthrough)."""
        return self.simulator.cycle

    def bind(self, simulator) -> None:
        """Called by :meth:`Simulator.add`.  Subclasses rarely override."""
        if self._simulator is not None and self._simulator is not simulator:
            raise RuntimeError(
                f"component {self.name!r} is already bound to another simulator"
            )
        self._simulator = simulator

    def set_clock_domain(self, domain) -> None:
        """Place this component in ``domain`` (a
        :class:`~repro.phys.clocking.ClockDomain` or anything with integer
        ``divisor``/``phase`` attributes).  The kernel then ticks it only
        on cycles where ``cycle % divisor == phase``.  ``None`` restores
        the kernel reference clock.  Divisor-1 domains are exactly the
        reference clock, so assigning one is cycle-identical to the
        default.
        """
        self.clock_domain = domain
        if domain is None:
            self._clk_divisor = 1
            self._clk_phase = 0
        else:
            self._clk_divisor = domain.divisor
            self._clk_phase = domain.phase

    def wake(self) -> None:
        """(Re-)schedule this component so it ticks next cycle.

        Idempotent and cheap when already scheduled; a no-op before the
        component is registered (registration schedules it anyway).
        """
        if not self._scheduled:
            sim = self._simulator
            if sim is not None:
                self._scheduled = True
                self._parked_until = -1  # invalidate any timing-wheel slot
                sim._wakes.append(self)

    def is_idle(self) -> bool:
        """True when ticking this component is a no-op until a wake.

        Default False: the component is ticked every cycle.  Override
        only together with wake registration — see the class docstring.
        """
        return False

    def next_event_cycle(self, now: int):
        """Earliest cycle >= ``now`` at which :meth:`tick` might not be a
        no-op, or ``None`` for "never, until something wakes me".

        This is the time-skipping half of the activity contract (the
        space half is :meth:`is_idle`).  A component that opts in (class
        attribute ``_next_event_known = True``) promises:

        - every tick at a cycle *before* the returned value changes no
          consumer-visible state, no stats and no traces — the kernel may
          therefore skip those cycles entirely or park the component on
          its timing wheel until the returned cycle; and
        - returning ``None`` additionally promises that every external
          event that could create an earlier event :meth:`wake`\\ s the
          component (the same queue-wake registration rule as
          :meth:`is_idle` — a wake during a skipped window re-schedules
          the component and invalidates its wheel slot).

        Returning ``now`` means "I may act this coming cycle" and
        disables skipping; that is the default, so components that do not
        opt in behave exactly as before.  The kernel aligns returned
        cycles to the component's clock-domain edges itself; multi-domain
        components (physical links) must return edge-accurate cycles for
        any internal per-edge state of their own.

        Components with externally-timetabled events (e.g. the fault
        injector's cycle-stamped link-down/up edges) rely on this
        contract to guarantee the event-wheel kernel never skips *over*
        an edge: return the next scheduled cycle and the kernel will
        land on it exactly, even if the whole fabric is otherwise quiet.

        Stay-hot rule: a component holding work that only *downstream
        queue space* would release must return ``now``, never ``None``.
        :meth:`~repro.sim.queue.SimQueue.pop` frees capacity in the same
        cycle it happens, and the strict kernel lets a later-registered
        component use that slot immediately — whereas a pop-registered
        :meth:`wake` only re-arms the component on the *next* cycle,
        shifting its action one cycle late relative to strict.  ``None``
        is only safe when the component is truly empty of work, because
        push visibility is commit-delayed and push-wakes therefore land
        exactly when the new work becomes observable.
        """
        return now

    def tick(self, cycle: int) -> None:
        """Advance the component by one cycle.  Default: do nothing."""

    def finish(self) -> None:
        """Hook invoked once when the simulation ends (for flushing stats)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
