"""Uniform state capture: the :class:`Snapshottable` protocol.

Every stateful class in the simulator implements one small contract:

- ``snapshot() -> dict`` — a versioned envelope around the object's
  runtime-mutable state.  The returned tree may (and does) reference
  *live* objects — flits, transactions, packets — without copying them:
  callers that want an independent checkpoint take **one**
  ``copy.deepcopy`` of the whole tree (see
  :class:`repro.sweep.Checkpoint`), so cross-object aliasing (the same
  flit visible from a queue and from a router's allocation-failure
  cache, say) is preserved through a single shared memo.  Snapshotting
  per-object with per-object copies would silently break those
  identities.
- ``restore(envelope)`` — install a state tree previously produced by
  :meth:`snapshot` on a *congruently built* object (same builder, same
  config).  Restore assumes exclusive ownership of the tree it is
  handed; callers that want to reuse a checkpoint deepcopy it per
  restore.

Wiring — queue waiter registrations, routing tables, port maps, clock
domains — is deliberately **not** part of a snapshot: it is a pure
function of the build, and restore always targets a fresh congruent
build.  Only what mutates as the simulation runs is captured.

Versioning: each class carries a ``snapshot_version`` class attribute,
stamped into the envelope under ``"__v__"`` and checked on restore
(:class:`SnapshotVersionError`), so a checkpoint written by an older
layout of a class fails loudly instead of restoring garbage.

The default :meth:`Snapshottable._snapshot_state` /
:meth:`Snapshottable._restore_state` pair is declarative: a class lists
its runtime-mutable attributes in ``_snapshot_fields`` and the base
implementation shallow-copies containers on capture and restores them
**in place** (never rebinding a list/dict/set/deque the live object
holds — other objects may legitimately cache references to those
containers, e.g. the dense router core caches each input queue's
committed deque).  ``random.Random`` attributes are captured as
``getstate()`` tuples and restored with ``setstate`` so replayed draws
are exact.  Classes with derived state or child objects override the
hooks and call ``super()``.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Dict, Tuple


class SnapshotError(RuntimeError):
    """A snapshot could not be produced or restored."""


class SnapshotVersionError(SnapshotError):
    """Envelope version does not match the class's ``snapshot_version``."""


class SnapshotMismatchError(SnapshotError):
    """A state tree does not fit the object it is being restored onto.

    Raised when restore targets a build that is not congruent with the
    one the snapshot was taken from (unknown component/queue names,
    missing entries) — continuing would silently desynchronize.
    """


#: Marker wrapping a ``random.Random.getstate()`` tuple inside a state
#: tree, so restore knows to ``setstate`` instead of rebinding.
_RNG_TAG = "__rng_state__"


def _capture(value: Any) -> Any:
    """Capture one attribute value into a state tree.

    Containers are shallow-copied so the tree's *shape* is stable even
    if the live object keeps mutating; the items themselves stay live
    references (see module docstring).  RNGs become state tuples.
    """
    if isinstance(value, list):
        return list(value)
    if isinstance(value, dict):
        return dict(value)
    if isinstance(value, deque):
        return list(value)
    if isinstance(value, set):
        return set(value)
    if isinstance(value, random.Random):
        return (_RNG_TAG, value.getstate())
    return value


def _restore_field(obj: Any, name: str, saved: Any) -> None:
    """Install one captured value, in place where the live attribute is
    a container (never rebind — see module docstring)."""
    current = getattr(obj, name)
    if isinstance(current, random.Random):
        if not (isinstance(saved, tuple) and saved and saved[0] == _RNG_TAG):
            raise SnapshotMismatchError(
                f"{type(obj).__name__}.{name}: expected a captured RNG "
                f"state, got {type(saved).__name__}"
            )
        current.setstate(saved[1])
    elif isinstance(current, list):
        current[:] = saved
    elif isinstance(current, deque):
        current.clear()
        current.extend(saved)
    elif isinstance(current, dict):
        current.clear()
        current.update(saved)
    elif isinstance(current, set):
        current.clear()
        current.update(saved)
    else:
        setattr(obj, name, saved)


class Snapshottable:
    """Mixin implementing the uniform state-capture protocol.

    Slot-less (``__slots__ = ()``) so slotted classes can inherit it
    without growing a ``__dict__``.
    """

    __slots__ = ()

    #: Bump when a class's captured layout changes incompatibly.
    snapshot_version = 1

    #: Runtime-mutable attribute names the default hooks capture/restore.
    _snapshot_fields: Tuple[str, ...] = ()

    def snapshot(self) -> Dict[str, Any]:
        """Versioned envelope around this object's mutable state."""
        return {
            "__v__": type(self).snapshot_version,
            "__cls__": type(self).__name__,
            "state": self._snapshot_state(),
        }

    def restore(self, envelope: Dict[str, Any]) -> None:
        """Install a state tree captured from a congruent object."""
        try:
            version = envelope["__v__"]
            state = envelope["state"]
        except (KeyError, TypeError):
            raise SnapshotMismatchError(
                f"{type(self).__name__}: not a snapshot envelope: "
                f"{type(envelope).__name__}"
            ) from None
        expected = type(self).snapshot_version
        if version != expected:
            raise SnapshotVersionError(
                f"{type(self).__name__}: snapshot version {version} does "
                f"not match this build's snapshot_version {expected} "
                f"(envelope from class {envelope.get('__cls__')!r})"
            )
        self._restore_state(state)

    # ------------------------------------------------------------------ #
    # default declarative hooks
    # ------------------------------------------------------------------ #
    def _snapshot_state(self) -> Dict[str, Any]:
        return {
            name: _capture(getattr(self, name))
            for name in self._snapshot_fields
        }

    def _restore_state(self, state: Dict[str, Any]) -> None:
        for name in self._snapshot_fields:
            try:
                saved = state[name]
            except KeyError:
                raise SnapshotMismatchError(
                    f"{type(self).__name__}: snapshot is missing field "
                    f"{name!r} — taken from an incompatible build?"
                ) from None
            _restore_field(self, name, saved)


class SerialCounter(Snapshottable):
    """A snapshotable drop-in for ``itertools.count()``.

    The global transaction/packet id streams must be part of a
    checkpoint (a restored run must hand out exactly the ids the
    uninterrupted run would), and ``itertools.count`` cannot be queried
    — this can.
    """

    __slots__ = ("_next_value",)

    _snapshot_fields = ("_next_value",)

    def __init__(self, start: int = 0) -> None:
        self._next_value = start

    def __iter__(self) -> "SerialCounter":
        return self

    def __next__(self) -> int:
        value = self._next_value
        self._next_value = value + 1
        return value

    def peek(self) -> int:
        """The id the next ``next()`` call will return."""
        return self._next_value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SerialCounter({self._next_value})"
