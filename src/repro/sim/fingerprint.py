"""Shared run-fingerprint helpers for determinism and snapshot tests.

A *fingerprint* is the full observable surface of a run — per-queue
counters, per-component stats, latency histograms, the trace stream, the
memory images — collected into one comparable dict.  The kernel
determinism matrix pins the activity kernel against the strict reference
with it; the snapshot round-trip tests pin a restored run against an
uninterrupted one with the very same structure, so "byte-identical
restore" means exactly what "byte-identical kernels" means.

``reset_ids()`` re-arms the process-global transaction/packet id
counters so two builds of the same SoC are byte-comparable; fork workers
call it before rebuilding (restore then overwrites the counters with the
checkpointed values).
"""

from __future__ import annotations

from typing import Dict

import repro.core.transaction as _txn_mod
import repro.transport.flit as _flit_mod
from repro.sim.snapshot import SerialCounter


def reset_ids() -> None:
    """Re-arm the process-global txn/packet id counters from zero."""
    _txn_mod._txn_ids = SerialCounter()
    _flit_mod._flit_packet_ids = SerialCounter()


def fingerprint_soc(soc) -> Dict:
    """Collect the observable-state fingerprint of ``soc`` right now."""
    sim = soc.sim
    queues = {
        name: (q.total_pushed, q.total_popped, q.high_watermark)
        for name, q in sim._queue_names.items()
    }
    masters = {
        name: (m.issued, m.completed, m.errors, m.excl_failures)
        for name, m in soc.masters.items()
    }
    routers = {}
    eports = {}
    for plane in (soc.fabric.request_plane, soc.fabric.response_plane):
        for router in plane.routers.values():
            routers[router.name] = (
                router.flits_forwarded,
                router.packets_forwarded,
                router.lock_stall_cycles,
                router.packets_adaptive,
                router.packets_escape,
                router.faults_hit,
                router.packets_rerouted,
                router.fault_stall_cycles,
                dict(router.output_busy_cycles),
            )
        for eport in plane.ejection_ports.values():
            eports[eport.name] = (
                eport.packets_ejected,
                eport.packets_resequenced,
                eport.reorder_high_watermark,
            )
    nius = {
        name: (niu.requests_sent, niu.responses_delivered, niu.stall_cycles)
        for name, niu in soc.initiator_nius.items()
    }
    tnius = {
        name: (t.requests_served, t.excl_failures, t.lock_blocked_cycles)
        for name, t in soc.target_nius.items()
    }
    latencies = {name: soc.master_latency(name) for name in soc.masters}
    return {
        "queues": queues,
        "masters": masters,
        "routers": routers,
        "ejection_ports": eports,
        "initiator_nius": nius,
        "target_nius": tnius,
        "latencies": latencies,
        "stats": sim.stats.histograms(),
        "trace": sim.trace.dump(),
        "memory": soc.memory_image(),
        "completed": soc.total_completed(),
        "cycle": sim.cycle,
    }


def fingerprint(soc, cycles: int) -> Dict:
    """Run ``soc`` for ``cycles`` and return its fingerprint."""
    soc.run(cycles)
    return fingerprint_soc(soc)
