"""Sharded fabric: conservative parallel simulation across processes.

This module holds the build-time half of the sharded fabric: the shard
plan (which router lives in which shard), the boundary link components
that stand in for a :class:`~repro.phys.link.PhysicalLink` whose two
ends live in different shards, and the ownership bookkeeping the
parallel driver (:mod:`repro.sweep.parallel`) uses to mute foreign
state and merge per-shard fingerprints.

The shard / lookahead contract
------------------------------

A *shard* is a subset of a plane's routers plus everything reachable
from them without crossing an inter-router link: the routers' queues,
the endpoint links, injection/ejection ports, NIUs, protocol masters
and memories attached to those routers.  Two shards interact **only**
through the directed inter-router links the plan cuts, and every cut
link must be non-transparent (``LinkSpec.transparent()`` false): the
link's pipeline is precisely the lookahead that makes conservative
parallel simulation possible.

Each cut directed link becomes a :class:`ShardLinkTx` (source shard —
owns the feed queues, replicates the serializing/pipelined timing of
:class:`~repro.phys.link.VcPhysicalLink`, holds the per-VC credit
counters) and a :class:`ShardLinkRx` (destination shard — owns the
delivery queues, pushes arriving flits at their arrival cycle, and
observes the destination router's pops to return credits).  The two
halves exchange *envelopes*:

- a flit envelope ``(arrival_cycle, vc, seq, flit)`` is emitted when
  the last phit of a flit leaves the wires at producer edge ``t``; its
  arrival cycle is ``t + 1 + pipeline_latency``, exactly the cycle a
  ``PhysicalLink`` would deliver;
- a credit envelope ``(pop_cycle, vc, count)`` is emitted when the
  receiver observes the destination router draining its delivery
  queue; the sender may reuse the credit from cycle
  ``pop_cycle + credit_return_latency`` on.

The **lookahead window** of a cut link is therefore::

    W_link = min(1 + pipeline_latency, credit_return_latency)

and the fabric-wide safe window ``W = min over cut links of W_link``.
The coordinator advances the run in rounds: with every shard at
barrier ``T`` and reporting its next local event cycle ``E_k``, the
next bound is ``B = max(T, min_k E_k) + W``.  Any envelope a shard can
emit during ``[T, B)`` originates at an event cycle ``>= min_k E_k``,
so its effect matures at or after ``B`` — delivering envelopes only at
barriers is exact, not approximate.  Batches are merged at shard
ingress in a fixed canonical order (sorted by target link name, then
``(arrival_cycle, seq)``), so the result is byte-identical regardless
of worker scheduling: running the same sharded build in one process
(boundary halves hand envelopes to each other directly) or across N
worker processes produces the same fingerprint.

What sharding changes, honestly: a cut link has its *own* timing
model.  The stock in-process link observes downstream pops in the same
cycle they happen (a zero-lookahead feedback loop no windowed scheme
can reproduce), while the boundary pair runs an explicit credit loop
with ``credit_return_latency >= 1``.  A sharded build is therefore a
(deterministic, self-consistent) fabric of its own — compare sharded
runs against the *same sharded build* run single-process, which is
what the determinism tests pin.

Out of scope for v1, rejected with :class:`ShardConfigError` at build
time: fault schedules, the strict reference kernel, enabled tracers,
transparent cut links, and snapshot/checkpoint capture of sharded
builds.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, List, Mapping, Optional, Tuple

import repro.core.transaction as _txn_mod
import repro.transport.flit as _flit_mod
from repro.sim.component import Component
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.queue import SimQueue
from repro.sim.snapshot import SerialCounter, Snapshottable
from repro.transport.topology import Topology, router_sort_key


class ShardConfigError(SimulationError):
    """A build configuration cannot be sharded (named build-time error)."""


# --------------------------------------------------------------------- #
# shard plans
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardPlan:
    """Partition of a topology's routers into ``n_shards`` shards.

    ``assignment`` maps every router id to its shard index in
    ``range(n_shards)``.  ``credit_return_latency`` overrides the credit
    loop of every boundary link (default ``1 + pipeline_latency``, which
    makes the window symmetric in both directions).
    """

    assignment: Mapping[Hashable, int]
    n_shards: int
    credit_return_latency: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignment", dict(self.assignment))
        if self.n_shards < 2:
            raise ShardConfigError(
                f"a shard plan needs at least 2 shards, got {self.n_shards}"
            )
        if self.credit_return_latency is not None and self.credit_return_latency < 1:
            raise ShardConfigError(
                "credit_return_latency must be >= 1 (a same-cycle credit "
                "loop has zero lookahead and cannot be windowed)"
            )

    def shard_of(self, router_id: Hashable) -> int:
        try:
            return self.assignment[router_id]
        except KeyError:
            raise ShardConfigError(
                f"shard plan does not assign router {router_id!r}"
            ) from None

    def validate(self, topology: Topology) -> None:
        routers = set(topology.routers)
        assigned = set(self.assignment)
        missing = routers - assigned
        stray = assigned - routers
        if missing or stray:
            raise ShardConfigError(
                f"shard plan does not partition the topology: missing "
                f"routers {sorted(missing, key=router_sort_key)!r}, "
                f"unknown routers {sorted(stray, key=router_sort_key)!r}"
            )
        populated = set(self.assignment.values())
        if not populated <= set(range(self.n_shards)):
            raise ShardConfigError(
                f"shard indices must be in range({self.n_shards}), got "
                f"{sorted(populated)!r}"
            )
        empty = set(range(self.n_shards)) - populated
        if empty:
            raise ShardConfigError(
                f"shard plan leaves shards {sorted(empty)!r} empty"
            )

    def cut_edges(self, topology: Topology) -> List[Tuple[Hashable, Hashable]]:
        """Directed inter-router edges whose ends live in different shards."""
        cuts: List[Tuple[Hashable, Hashable]] = []
        for a, b in topology.graph.edges:
            if self.shard_of(a) != self.shard_of(b):
                cuts.append((a, b))
                cuts.append((b, a))
        return cuts


def plan_shards(topology: Topology, n_shards: int) -> ShardPlan:
    """Partition ``topology`` into ``n_shards`` balanced contiguous stripes.

    Routers are split in their canonical sort order into stripes of
    near-equal size.  On meshes and tori (ids ``(x, y)``) the canonical
    order walks column-major, so stripes are column bands — each cut is
    one mesh column of links, which is the min-cut-ish partition for
    the stripe count.  On arbitrary graphs the stripes are merely
    balanced; pass an explicit :class:`ShardPlan` for a better cut.
    """
    routers = topology.routers  # already canonically sorted
    if n_shards < 2:
        raise ShardConfigError(
            f"sharding needs at least 2 shards, got {n_shards}"
        )
    if n_shards > len(routers):
        raise ShardConfigError(
            f"cannot split {len(routers)} routers into {n_shards} shards"
        )
    assignment: Dict[Hashable, int] = {}
    base, extra = divmod(len(routers), n_shards)
    cursor = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        for router_id in routers[cursor : cursor + size]:
            assignment[router_id] = shard
        cursor += size
    return ShardPlan(assignment=assignment, n_shards=n_shards)


# --------------------------------------------------------------------- #
# boundary link halves
# --------------------------------------------------------------------- #
class ShardLinkTx(Component, Snapshottable):
    """Transmit half of a cut inter-router link (source shard).

    Mirrors :class:`~repro.phys.link.VcPhysicalLink`'s producer side —
    one physical channel serializing ``serialization`` phits per flit,
    round-robin over VCs with a flit staged and a credit in hand — but
    instead of pushing into a same-process delivery queue it emits flit
    envelopes ``(arrival_cycle, vc, seq, flit)``.  In-process (the
    single-process run of a sharded build) the envelopes go straight to
    the peer :class:`ShardLinkRx`; in a worker they accumulate in
    ``outbox`` for the coordinator to route at the next barrier.

    Credits are plain per-VC integers topped up by credit envelopes
    ``(pop_cycle, vc, count)`` that mature at
    ``pop_cycle + credit_return_latency``.
    """

    _snapshot_fields = (
        "_shifting",
        "_next_vc",
        "_credits",
        "_pending_credits",
        "_seq",
        "outbox",
        "flits_carried",
        "phits_carried",
        "flits_per_vc",
        "envelopes_sent",
    )

    def __init__(
        self,
        name: str,
        feeds: List[SimQueue],
        delivery_capacities: List[int],
        flit_bits: int,
        phit_bits: int,
        pipeline_latency: int,
        credit_return_latency: int,
    ) -> None:
        super().__init__(name)
        from repro.phys.link import phits_per_flit

        if credit_return_latency < 1:
            raise ShardConfigError(
                f"{name}: credit_return_latency must be >= 1"
            )
        self.feeds = list(feeds)
        self.vcs = len(self.feeds)
        self.flit_bits = flit_bits
        self.phit_bits = phit_bits
        self.pipeline_latency = pipeline_latency
        self.credit_return_latency = credit_return_latency
        self.serialization = phits_per_flit(flit_bits, phit_bits)
        self._credits = list(delivery_capacities)
        self.capacities = list(delivery_capacities)
        self._pending_credits: Deque[Tuple[int, int, int]] = deque()  # (due, vc, n)
        self._shifting: Optional[Tuple[int, object, int]] = None  # (vc, flit, left)
        self._next_vc = 0
        self._seq = 0
        self.outbox: List[Tuple[int, int, int, object]] = []
        self._peer_rx: Optional["ShardLinkRx"] = None
        self.flits_carried = 0
        self.phits_carried = 0
        self.flits_per_vc = [0] * self.vcs
        self.envelopes_sent = 0
        for queue in self.feeds:
            queue.wake_on_push(self)

    # forward lookahead of this link (see module docstring)
    @property
    def window(self) -> int:
        return min(1 + self.pipeline_latency, self.credit_return_latency)

    def set_remote(self) -> None:
        """Worker mode: envelopes stay in ``outbox`` for the coordinator."""
        self._peer_rx = None

    def bind_peer(self, rx: "ShardLinkRx") -> None:
        """In-process mode: hand envelopes straight to the receive half."""
        self._peer_rx = rx

    def receive_credits(self, envelopes: List[Tuple[int, int, int]]) -> None:
        """Accept credit envelopes ``(pop_cycle, vc, count)`` (any time)."""
        latency = self.credit_return_latency
        for pop_cycle, vc, count in envelopes:
            self._pending_credits.append((pop_cycle + latency, vc, count))
        if envelopes:
            self.wake()

    @property
    def in_flight(self) -> int:
        return 1 if self._shifting is not None else 0

    def idle(self) -> bool:
        """Nothing on the wires and nothing staged (drain check)."""
        return self._shifting is None and not any(self.feeds) and not self.outbox

    def is_idle(self) -> bool:
        return (
            self._shifting is None
            and not self._pending_credits
            and not any(self.feeds)
        )

    _next_event_known = True

    def next_event_cycle(self, now: int):
        if self._shifting is not None:
            return now
        credits = self._credits
        for vc, queue in enumerate(self.feeds):
            if queue._committed and credits[vc] > 0:
                return now
        if self._pending_credits:
            due = self._pending_credits[0][0]
            return due if due > now else now
        if any(queue._committed for queue in self.feeds):
            return None  # credit-starved: receive_credits() wakes us
        return None

    def tick(self, cycle: int) -> None:
        # Mature credit returns that came due.
        pending = self._pending_credits
        credits = self._credits
        while pending and pending[0][0] <= cycle:
            __, vc, count = pending.popleft()
            credits[vc] += count
            if credits[vc] > self.capacities[vc]:
                raise RuntimeError(
                    f"{self.name}: credit overflow on VC {vc} "
                    f"({credits[vc]} > {self.capacities[vc]})"
                )
        # Shift phits of the flit on the wires; on the completion edge
        # the flit enters the wire pipeline and becomes an envelope.
        if self._shifting is not None:
            vc, flit, remaining = self._shifting
            remaining -= 1
            self.phits_carried += 1
            if remaining == 0:
                self._emit(cycle + 1 + self.pipeline_latency, vc, flit)
                self.flits_carried += 1
                self.flits_per_vc[vc] += 1
                self._shifting = None
            else:
                self._shifting = (vc, flit, remaining)
            return
        # Start serializing the next flit, round-robin over VCs with a
        # flit staged and a credit in hand.
        feeds = self.feeds
        for offset in range(self.vcs):
            vc = (self._next_vc + offset) % self.vcs
            if feeds[vc]._committed and credits[vc] > 0:
                flit = feeds[vc].pop()
                credits[vc] -= 1
                self._shifting = (vc, flit, self.serialization)
                self._next_vc = (vc + 1) % self.vcs
                return

    def _emit(self, arrival: int, vc: int, flit) -> None:
        envelope = (arrival, vc, self._seq, flit)
        self._seq += 1
        self.envelopes_sent += 1
        peer = self._peer_rx
        if peer is not None:
            peer.receive_flits([envelope])
        else:
            self.outbox.append(envelope)


class ShardLinkRx(Component, Snapshottable):
    """Receive half of a cut inter-router link (destination shard).

    Pushes each flit envelope into its VC's delivery queue at the
    envelope's arrival cycle (the held credit guarantees room), and
    observes the destination router draining the delivery queues to
    emit credit envelopes stamped with the pop cycle.  Registered after
    the plane's routers, so a pop at cycle ``u`` is observed at cycle
    ``u`` — the component stays hot while any delivery queue holds
    flits, which is exactly when pops can happen.
    """

    _snapshot_fields = (
        "_inbox",
        "_seen_pops",
        "credit_outbox",
        "flits_delivered",
    )

    def __init__(self, name: str, deliveries: List[SimQueue]) -> None:
        super().__init__(name)
        self.deliveries = list(deliveries)
        self.vcs = len(self.deliveries)
        self._inbox: Deque[Tuple[int, int, int, object]] = deque()
        self._seen_pops = [0] * self.vcs
        self.credit_outbox: List[Tuple[int, int, int]] = []
        self._peer_tx: Optional[ShardLinkTx] = None
        self.flits_delivered = 0
        for queue in self.deliveries:
            queue.wake_on_pop(self)

    def set_remote(self) -> None:
        """Worker mode: credits stay in ``credit_outbox`` for the barrier."""
        self._peer_tx = None

    def bind_peer(self, tx: ShardLinkTx) -> None:
        self._peer_tx = tx

    def receive_flits(
        self, envelopes: List[Tuple[int, int, int, object]]
    ) -> None:
        """Accept flit envelopes in canonical ``(arrival, seq)`` order."""
        inbox = self._inbox
        for envelope in envelopes:
            if inbox and envelope[0] < inbox[-1][0]:
                raise RuntimeError(
                    f"{self.name}: flit envelope arrives out of order "
                    f"({envelope[0]} after {inbox[-1][0]})"
                )
            inbox.append(envelope)
        if envelopes:
            self.wake()

    @property
    def in_flight(self) -> int:
        return len(self._inbox)

    def idle(self) -> bool:
        return not self._inbox and not self.credit_outbox

    def is_idle(self) -> bool:
        return not self._inbox and not any(
            queue._occ for queue in self.deliveries
        )

    _next_event_known = True

    def next_event_cycle(self, now: int):
        # Stay hot while a delivery queue holds flits: the destination
        # router may pop any cycle and the credit must be stamped with
        # the true pop cycle.
        for queue in self.deliveries:
            if queue._occ:
                return now
        if self._inbox:
            arrival = self._inbox[0][0]
            return arrival if arrival > now else now
        return None

    def tick(self, cycle: int) -> None:
        inbox = self._inbox
        deliveries = self.deliveries
        while inbox and inbox[0][0] <= cycle:
            __, vc, __seq, flit = inbox.popleft()
            deliveries[vc].push(flit)  # a held credit guarantees room
            self.flits_delivered += 1
        # Observe pops since the last tick; pops happen in the router
        # block (registered before this component), so a pop at this
        # cycle is visible here this cycle.
        credits: List[Tuple[int, int, int]] = []
        seen = self._seen_pops
        for vc, queue in enumerate(deliveries):
            delta = queue.total_popped - seen[vc]
            if delta:
                seen[vc] = queue.total_popped
                credits.append((cycle, vc, delta))
        if credits:
            peer = self._peer_tx
            if peer is not None:
                peer.receive_credits(credits)
            else:
                self.credit_outbox.extend(credits)


# --------------------------------------------------------------------- #
# ownership bookkeeping
# --------------------------------------------------------------------- #
class ShardOwnership:
    """Maps every component and queue of a sharded build to its shard.

    Ownership is recorded by *registration interval*: the build wraps
    each creation block in :meth:`owned_by` (or :meth:`shared` for
    plane-wide executors like the batched router stepper) and every
    component/queue registered inside the block belongs to that block's
    shard.  :meth:`finalize` verifies the cover is total, so a new
    subsystem that forgets to declare ownership fails loudly at build
    time instead of silently desyncing shards.
    """

    def __init__(self, sim: Simulator, n_shards: int) -> None:
        self.sim = sim
        self.n_shards = n_shards
        self.component_owner: Dict[str, int] = {}
        self.queue_owner: Dict[str, int] = {}
        self.shared_components: set = set()

    @contextmanager
    def owned_by(self, shard: int):
        sim = self.sim
        c0 = len(sim._components)
        q0 = len(sim._queues)
        yield
        for component in sim._components[c0:]:
            self.component_owner[component.name] = shard
        for queue in sim._queues[q0:]:
            self.queue_owner[queue.name] = shard

    @contextmanager
    def shared(self):
        sim = self.sim
        c0 = len(sim._components)
        q0 = len(sim._queues)
        yield
        for component in sim._components[c0:]:
            self.shared_components.add(component.name)
        for queue in sim._queues[q0:]:
            raise ShardConfigError(
                f"queue {queue.name!r} registered in a shared scope; "
                f"queues must belong to exactly one shard"
            )

    def components_of(self, shard: int) -> set:
        return {n for n, s in self.component_owner.items() if s == shard}

    def queues_of(self, shard: int) -> set:
        return {n for n, s in self.queue_owner.items() if s == shard}

    def finalize(self) -> None:
        unowned = [
            c.name
            for c in self.sim._components
            if c.name not in self.component_owner
            and c.name not in self.shared_components
        ]
        unowned_queues = [
            q.name for q in self.sim._queues if q.name not in self.queue_owner
        ]
        if unowned or unowned_queues:
            raise ShardConfigError(
                f"sharded build left state without a shard owner: "
                f"components {sorted(unowned)!r}, queues "
                f"{sorted(unowned_queues)!r} — wrap their creation in "
                f"ShardOwnership.owned_by()"
            )


# --------------------------------------------------------------------- #
# per-source id scoping
# --------------------------------------------------------------------- #
#: Spacing between per-source id streams: stream k allocates from
#: (k + 1) << ID_SCOPE_SHIFT, so scoped ids never collide with each
#: other or with the process-global counters (which start at 0).
ID_SCOPE_SHIFT = 32


def txn_id_stream(scope_index: int) -> SerialCounter:
    return SerialCounter(start=(scope_index + 1) << ID_SCOPE_SHIFT)


def scope_txn_ids(component: Component, stream: SerialCounter) -> None:
    """Make ``component.tick`` allocate transaction ids from ``stream``.

    The single-process run of a sharded build interleaves every source
    on the process-global counter; worker processes only run their own
    sources, so the interleaving — and with it the id *values* — would
    differ.  Values leak into behavior (protocol id truncation, e.g.
    VCI's 8-bit pktid), so sharded builds give every allocating
    component its own id stream: identical values whether the sources
    run together or apart.  Unsharded builds are untouched.
    """
    inner = component.tick

    def tick(cycle: int, _inner=inner, _stream=stream) -> None:
        previous = _txn_mod._txn_ids
        _txn_mod._txn_ids = _stream
        try:
            _inner(cycle)
        finally:
            _txn_mod._txn_ids = previous

    component.tick = tick


def scope_packet_ids(component: Component, stream: SerialCounter) -> None:
    """Like :func:`scope_txn_ids`, for flit packet ids (injection ports)."""
    inner = component.tick

    def tick(cycle: int, _inner=inner, _stream=stream) -> None:
        previous = _flit_mod._flit_packet_ids
        _flit_mod._flit_packet_ids = _stream
        try:
            _inner(cycle)
        finally:
            _flit_mod._flit_packet_ids = previous

    component.tick = tick


# --------------------------------------------------------------------- #
# worker-side restriction
# --------------------------------------------------------------------- #
def _noop_tick(cycle: int) -> None:
    """Muted foreign component: the owning shard simulates it."""


def _always_idle() -> bool:
    return True


def _never_events(now: int):
    return None


def mute_component(component: Component) -> None:
    """Neutralize a foreign component in a worker process.

    The component stays registered (names, scheduling indices and
    snapshot shape are unchanged) but never acts: its tick is a no-op
    and the kernel retires it as permanently idle.  Queue wakes may
    still re-schedule it; the re-scheduled tick is a no-op and the next
    sweep retires it again.
    """
    component.tick = _noop_tick
    component.is_idle = _always_idle
    component.next_event_cycle = _never_events


def restrict_to_shard(soc, shard: int) -> None:
    """Turn a full sharded build into shard ``shard``'s worker instance.

    Every component owned by another shard is muted (foreign masters
    are the load-bearing case: they are the traffic roots — everything
    else is demand-driven and simply stays idle), and this shard's
    boundary halves switch to outbox mode so envelopes flow through the
    coordinator instead of directly to (muted) peers.
    """
    ownership = soc.shard_ownership
    if ownership is None:
        raise ShardConfigError(
            "restrict_to_shard() needs a sharded build "
            "(SocBuilder(shards=...))"
        )
    owner = ownership.component_owner
    for component in soc.sim._components:
        owner_shard = owner.get(component.name)
        if owner_shard is not None and owner_shard != shard:
            mute_component(component)
    for plane in soc.fabric._planes:
        for tx in plane.boundary_tx.values():
            tx.set_remote()
        for rx in plane.boundary_rx.values():
            rx.set_remote()


def shard_next_event(sim: Simulator) -> Optional[int]:
    """Earliest cycle >= ``sim.cycle`` at which this shard can act, or
    ``None`` when it is dormant until an envelope arrives."""
    if sim._wakes or sim._dirty_queues:
        return sim.cycle
    horizon = sim.cycle + (1 << 40)
    found = sim._next_event_horizon(horizon)
    return None if found >= horizon else found


# --------------------------------------------------------------------- #
# per-shard fingerprints
# --------------------------------------------------------------------- #
def fingerprint_shard(soc, shard: int) -> Dict:
    """The slice of :func:`repro.sim.fingerprint.fingerprint_soc` owned
    by ``shard``, with registry histograms as raw samples (shared
    plane-level histograms — per-priority flow latencies — are recorded
    by several shards and merge exactly by concatenation)."""
    ownership = soc.shard_ownership
    owned_queues = ownership.queues_of(shard)
    owner = ownership.component_owner
    sim = soc.sim

    def mine(obj) -> bool:
        return owner.get(obj.name) == shard

    queues = {
        name: (q.total_pushed, q.total_popped, q.high_watermark)
        for name, q in sim._queue_names.items()
        if name in owned_queues
    }
    masters = {
        name: (m.issued, m.completed, m.errors, m.excl_failures)
        for name, m in soc.masters.items()
        if mine(m)
    }
    routers = {}
    eports = {}
    for plane in (soc.fabric.request_plane, soc.fabric.response_plane):
        for router in plane.routers.values():
            if not mine(router):
                continue
            routers[router.name] = (
                router.flits_forwarded,
                router.packets_forwarded,
                router.lock_stall_cycles,
                router.packets_adaptive,
                router.packets_escape,
                router.faults_hit,
                router.packets_rerouted,
                router.fault_stall_cycles,
                dict(router.output_busy_cycles),
            )
        for eport in plane.ejection_ports.values():
            if not mine(eport):
                continue
            eports[eport.name] = (
                eport.packets_ejected,
                eport.packets_resequenced,
                eport.reorder_high_watermark,
            )
    nius = {
        name: (niu.requests_sent, niu.responses_delivered, niu.stall_cycles)
        for name, niu in soc.initiator_nius.items()
        if mine(niu)
    }
    tnius = {
        name: (t.requests_served, t.excl_failures, t.lock_blocked_cycles)
        for name, t in soc.target_nius.items()
        if mine(t)
    }
    latencies = {
        name: soc.master_latency(name)
        for name, m in soc.masters.items()
        if mine(m)
    }
    histogram_samples = {
        name: list(h._samples) for name, h in sim.stats._histograms.items()
    }
    memory = {
        name: mem.store.image()
        for name, mem in sorted(soc.memories.items())
        if mine(mem)
    }
    return {
        "queues": queues,
        "masters": masters,
        "routers": routers,
        "ejection_ports": eports,
        "initiator_nius": nius,
        "target_nius": tnius,
        "latencies": latencies,
        "histogram_samples": histogram_samples,
        "trace": sim.trace.dump(),
        "memory": memory,
        "completed": sum(m.completed for m in soc.masters.values() if mine(m)),
        "cycle": sim.cycle,
    }


def merge_shard_fingerprints(fragments: List[Dict]) -> Dict:
    """Union per-shard fragments into one :func:`fingerprint_soc`-shaped
    dict (byte-comparable with the single-process run)."""
    from repro.sim.stats import Histogram

    if not fragments:
        raise ValueError("merge_shard_fingerprints() needs >= 1 fragment")
    cycles = {fragment["cycle"] for fragment in fragments}
    if len(cycles) != 1:
        raise RuntimeError(f"shards ended at different cycles: {cycles!r}")
    merged: Dict = {
        "queues": {},
        "masters": {},
        "routers": {},
        "ejection_ports": {},
        "initiator_nius": {},
        "target_nius": {},
        "latencies": {},
        "memory": {},
    }
    for section in merged:
        for fragment in fragments:
            for name, value in fragment[section].items():
                if name in merged[section]:
                    raise RuntimeError(
                        f"shard fingerprint collision in {section!r}: "
                        f"{name!r} owned by two shards"
                    )
                merged[section][name] = value
    samples: Dict[str, List[float]] = {}
    for fragment in fragments:
        for name, values in fragment["histogram_samples"].items():
            samples.setdefault(name, []).extend(values)
    stats = {}
    for name in sorted(samples):
        histogram = Histogram(name)
        histogram._samples.extend(samples[name])
        stats[name] = histogram.summary()
    merged["stats"] = stats
    # Sharded builds reject enabled tracers, so every fragment's trace
    # dump is the empty string; join keeps the fingerprint_soc shape.
    merged["trace"] = "\n".join(t for t in (f["trace"] for f in fragments) if t)
    merged["memory"] = dict(sorted(merged["memory"].items()))
    merged["completed"] = sum(f["completed"] for f in fragments)
    merged["cycle"] = cycles.pop()
    return merged
