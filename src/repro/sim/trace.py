"""Lightweight event tracing.

Tracing answers "what did the fabric actually do": which flits crossed
which router at which cycle, when a NIU allocated a tag, when a LOCK was
taken.  It is disabled by default (zero overhead beyond one branch) and
switched on by tests that assert on event sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event emitted by a component."""

    cycle: int
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.cycle:>8}] {self.source:<24} {self.kind:<20} {extras}"


class Tracer:
    """Collects :class:`TraceEvent` objects, optionally filtered by kind."""

    def __init__(
        self,
        enabled: bool = True,
        kinds: Optional[List[str]] = None,
        sink: Optional[Callable[[TraceEvent], None]] = None,
    ) -> None:
        self.enabled = enabled
        self._kinds = set(kinds) if kinds is not None else None
        self._sink = sink
        self.events: List[TraceEvent] = []

    def log(self, cycle: int, source: str, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        event = TraceEvent(cycle=cycle, source=source, kind=kind, detail=detail)
        self.events.append(event)
        if self._sink is not None:
            self._sink(event)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def from_source(self, source: str) -> List[TraceEvent]:
        return [e for e in self.events if e.source == source]

    def clear(self) -> None:
        self.events.clear()

    def dump(self) -> str:
        return "\n".join(str(e) for e in self.events)

    def __len__(self) -> int:
        return len(self.events)
