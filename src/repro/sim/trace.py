"""Lightweight event tracing.

Tracing answers "what did the fabric actually do": which flits crossed
which router at which cycle, when a NIU allocated a tag, when a LOCK was
taken.  It is disabled by default and genuinely zero-cost in that state:
``log`` is rebound to a no-op method, so hot paths pay one attribute
lookup and an empty call instead of a branch per event.  Long saturated
runs can bound memory with ``max_events``, which keeps only the newest
events in a ring buffer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.sim.snapshot import Snapshottable


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event emitted by a component."""

    cycle: int
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.cycle:>8}] {self.source:<24} {self.kind:<20} {extras}"


class Tracer(Snapshottable):
    """Collects :class:`TraceEvent` objects, optionally filtered by kind.

    Parameters
    ----------
    enabled:
        Start collecting immediately.  While disabled, :meth:`log` is a
        bound no-op method.
    kinds:
        Optional whitelist of event kinds to record.
    sink:
        Optional callback invoked with every recorded event.
    max_events:
        If set, keep only the newest ``max_events`` events (ring
        buffer); :attr:`total_logged` still counts every recorded event
        so droppage is observable as ``total_logged - len(tracer)``.
    """

    def __init__(
        self,
        enabled: bool = True,
        kinds: Optional[List[str]] = None,
        sink: Optional[Callable[[TraceEvent], None]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be >= 1 or None")
        self._kinds = set(kinds) if kinds is not None else None
        self._sink = sink
        self.max_events = max_events
        self.events = (
            deque(maxlen=max_events) if max_events is not None else []
        )
        self.total_logged = 0
        self._enabled = enabled
        self._rebind()

    # ------------------------------------------------------------------ #
    # enable/disable (rebinds ``log`` so the disabled path costs nothing)
    # ------------------------------------------------------------------ #
    def _rebind(self) -> None:
        # Instance attribute shadows the class method: callers always go
        # through ``tracer.log(...)`` and get the cheap path when off.
        self.log = self._log if self._enabled else self._log_noop

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        self._rebind()

    # ------------------------------------------------------------------ #
    # logging
    # ------------------------------------------------------------------ #
    def _log_noop(self, cycle: int, source: str, kind: str, **detail: Any) -> None:
        return None

    def _log(self, cycle: int, source: str, kind: str, **detail: Any) -> None:
        if self._kinds is not None and kind not in self._kinds:
            return
        event = TraceEvent(cycle=cycle, source=source, kind=kind, detail=detail)
        self.events.append(event)
        self.total_logged += 1
        if self._sink is not None:
            self._sink(event)

    # ``log`` is rebound per instance in __init__; this class-level alias
    # keeps the method discoverable and the API documented.
    log = _log

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def from_source(self, source: str) -> List[TraceEvent]:
        return [e for e in self.events if e.source == source]

    @property
    def dropped_events(self) -> int:
        """Events discarded by the ``max_events`` ring buffer."""
        return self.total_logged - len(self.events)

    def clear(self) -> None:
        self.events.clear()
        self.total_logged = 0

    # ------------------------------------------------------------------ #
    # state capture
    # ------------------------------------------------------------------ #
    _snapshot_fields = ("events", "total_logged", "_enabled")

    def _restore_state(self, state) -> None:
        # ``events`` is restored in place (list or ring-buffer deque,
        # whichever this build configured); ``log`` is an instance
        # attribute derived from ``_enabled``, so re-derive it.
        super()._restore_state(state)
        self._rebind()

    def dump(self) -> str:
        return "\n".join(str(e) for e in self.events)

    def __len__(self) -> int:
        return len(self.events)
