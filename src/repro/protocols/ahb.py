"""AMBA AHB 2.0 socket model.

AHB is the paper's example of a *fully ordered* protocol: one transfer
stream, responses strictly in request order, and blocking synchronization
via ``HMASTLOCK`` locked sequences.  The master model issues one
transaction at a time (address/data pipelining collapses to a single
outstanding transfer at the transaction level) and maps locked sequences
onto the transaction layer's READEX/LOCK family.

Native signal vocabulary is preserved in the request/response records so
the NIU genuinely converts *from* AHB fields, not from some pre-digested
form.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.ordering import OrderingModel
from repro.core.transaction import BurstType, Opcode, ResponseStatus, Transaction
from repro.protocols.base import MasterSocket, ProtocolError, ProtocolMaster
from repro.sim.kernel import Simulator


class HBurst(enum.Enum):
    """AHB HBURST encodings."""

    SINGLE = "SINGLE"
    INCR = "INCR"
    INCR4 = "INCR4"
    INCR8 = "INCR8"
    INCR16 = "INCR16"
    WRAP4 = "WRAP4"
    WRAP8 = "WRAP8"
    WRAP16 = "WRAP16"

    @property
    def beats(self) -> Optional[int]:
        """Fixed beat count, or None for undefined-length INCR."""
        return {
            HBurst.SINGLE: 1,
            HBurst.INCR4: 4,
            HBurst.INCR8: 8,
            HBurst.INCR16: 16,
            HBurst.WRAP4: 4,
            HBurst.WRAP8: 8,
            HBurst.WRAP16: 16,
        }.get(self)

    @property
    def wrapping(self) -> bool:
        return self in (HBurst.WRAP4, HBurst.WRAP8, HBurst.WRAP16)


def hburst_for(burst: BurstType, beats: int) -> HBurst:
    """Encode a transaction burst as the nearest AHB HBURST."""
    if beats == 1:
        return HBurst.SINGLE
    if burst is BurstType.WRAP:
        try:
            return {4: HBurst.WRAP4, 8: HBurst.WRAP8, 16: HBurst.WRAP16}[beats]
        except KeyError:
            raise ProtocolError(
                f"AHB cannot express a {beats}-beat wrapping burst"
            ) from None
    if burst in (BurstType.INCR, BurstType.SINGLE):
        return {4: HBurst.INCR4, 8: HBurst.INCR8, 16: HBurst.INCR16}.get(
            beats, HBurst.INCR
        )
    raise ProtocolError(f"AHB cannot express burst type {burst.value}")


class HResp(enum.Enum):
    """AHB HRESP encodings (RETRY/SPLIT are used by the bus baseline)."""

    OKAY = "OKAY"
    ERROR = "ERROR"
    RETRY = "RETRY"
    SPLIT = "SPLIT"


@dataclass
class AhbRequest:
    """One AHB transfer as the slave/NIU side sees it."""

    haddr: int
    hwrite: bool
    hsize: int  # log2(bytes per beat)
    hburst: HBurst
    beats: int  # actual beat count (INCR carries it out of band)
    hmastlock: bool = False
    hprot: int = 0
    hwdata: Optional[List[int]] = None
    txn: Optional[Transaction] = None  # correlation sideband (not signals)

    def __post_init__(self) -> None:
        fixed = self.hburst.beats
        if fixed is not None and fixed != self.beats:
            raise ProtocolError(
                f"HBURST {self.hburst.value} implies {fixed} beats, got {self.beats}"
            )
        if self.hwrite and (
            self.hwdata is None or len(self.hwdata) != self.beats
        ):
            raise ProtocolError("AHB write needs HWDATA for every beat")


@dataclass
class AhbResponse:
    txn_id: int
    hresp: HResp = HResp.OKAY
    hrdata: Optional[List[int]] = None


def hresp_from_status(status: ResponseStatus) -> HResp:
    """AHB has one error code; DECERR/SLVERR both collapse to ERROR —
    an example of socket-level feature narrowing."""
    return HResp.OKAY if not status.is_error else HResp.ERROR


class AhbMaster(ProtocolMaster):
    """AHB 2.0 master IP model: single outstanding, fully ordered.

    Locked synchronization: intents carrying ``Opcode.READEX`` /
    ``Opcode.STORE_COND_LOCKED`` / ``LOCK`` / ``UNLOCK`` are issued with
    ``HMASTLOCK`` asserted, which the NIU (or the bus) must translate into
    its locking mechanism.
    """

    protocol_name = "AHB"
    ordering_model = OrderingModel.FULLY_ORDERED

    def __init__(self, name: str, sim: Simulator, traffic, depth: int = 2) -> None:
        super().__init__(name, traffic)
        self.socket = MasterSocket(
            sim, f"{name}.sock", request_channels=["req"], response_channels=["rsp"]
        )

    def try_issue(self, txn: Transaction, cycle: int) -> bool:
        if self.outstanding > 0:
            return False  # AHB: one transfer stream
        if txn.excl:
            raise ProtocolError(
                f"{self.name}: AHB has no exclusive access; use locked "
                f"sequences (READEX/STORE_COND_LOCKED)"
            )
        if txn.opcode in (Opcode.LOCK, Opcode.UNLOCK):
            raise ProtocolError(
                f"{self.name}: AHB expresses locking through HMASTLOCK on "
                f"real transfers (READEX/STORE_COND_LOCKED), not bare "
                f"LOCK/UNLOCK"
            )
        channel = self.socket.req("req")
        if not channel.can_push():
            return False
        request = AhbRequest(
            haddr=txn.address,
            hwrite=txn.opcode.is_write,
            hsize=txn.beat_bytes.bit_length() - 1,
            hburst=hburst_for(txn.burst, txn.beats),
            beats=txn.beats,
            hmastlock=txn.opcode.is_locking,
            hwdata=list(txn.data) if txn.data is not None else None,
            txn=txn,
        )
        channel.push(request)
        return True

    def collect_responses(self, cycle: int) -> List[int]:
        completed: List[int] = []
        channel = self.socket.rsp("rsp")
        while channel._committed:
            response: AhbResponse = channel.pop()
            if response.hresp is HResp.ERROR:
                self.errors += 1
                self.completion_status[response.txn_id] = ResponseStatus.SLVERR
            else:
                self.completion_status[response.txn_id] = ResponseStatus.OKAY
            completed.append(response.txn_id)
        return completed
