"""AMBA AXI socket model.

AXI is the paper's example of an *ID-based* protocol: independent read
and write channels, transaction IDs (ARID/AWID) permitting out-of-order
responses across IDs (in-order within an ID), and non-blocking
synchronization via **exclusive accesses** (``AxLOCK = EXCL``) — the
feature §3 shows costs the NoC exactly one packet user bit plus NIU state.

Channel structure follows the standard five channels; the W channel is
folded into the AW record (write data always follows its address in this
model, which loses no transaction-level generality).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.ordering import OrderingModel
from repro.core.transaction import BurstType, Opcode, ResponseStatus, Transaction
from repro.protocols.base import MasterSocket, ProtocolError, ProtocolMaster
from repro.sim.kernel import Simulator


class AxBurst(enum.Enum):
    FIXED = "FIXED"
    INCR = "INCR"
    WRAP = "WRAP"


class AxLock(enum.Enum):
    NORMAL = "NORMAL"
    EXCLUSIVE = "EXCLUSIVE"


class XResp(enum.Enum):
    OKAY = "OKAY"
    EXOKAY = "EXOKAY"
    SLVERR = "SLVERR"
    DECERR = "DECERR"


def axburst_for(burst: BurstType) -> AxBurst:
    if burst in (BurstType.SINGLE, BurstType.INCR):
        return AxBurst.INCR
    if burst is BurstType.WRAP:
        return AxBurst.WRAP
    if burst in (BurstType.FIXED, BurstType.STREAM):
        return AxBurst.FIXED
    raise ProtocolError(f"AXI cannot express burst {burst.value}")


def xresp_from_status(status: ResponseStatus) -> XResp:
    return XResp[status.value]


@dataclass
class AxiAR:
    """Read address channel beat."""

    arid: int
    araddr: int
    arlen: int  # beats - 1, per the AXI encoding
    arsize: int  # log2(bytes)
    arburst: AxBurst
    arlock: AxLock = AxLock.NORMAL
    arqos: int = 0
    txn: Optional[Transaction] = None


@dataclass
class AxiAW:
    """Write address channel beat, with the W burst folded in."""

    awid: int
    awaddr: int
    awlen: int
    awsize: int
    awburst: AxBurst
    awlock: AxLock = AxLock.NORMAL
    awqos: int = 0
    wdata: Optional[List[int]] = None
    txn: Optional[Transaction] = None


@dataclass
class AxiR:
    """Read data channel (whole burst, RLAST implied)."""

    rid: int
    rdata: List[int]
    rresp: XResp
    txn_id: int = -1


@dataclass
class AxiB:
    """Write response channel."""

    bid: int
    bresp: XResp
    txn_id: int = -1


class AxiMaster(ProtocolMaster):
    """AXI master IP model with per-direction outstanding budgets.

    IDs come from the intent's ``txn_tag`` (traffic generators spread
    tags over ``id_count`` IDs); the base ordering checker then verifies
    the ID-based model: responses in order *within* an ID, free across.
    """

    protocol_name = "AXI"
    ordering_model = OrderingModel.ID_BASED

    _snapshot_fields = ProtocolMaster._snapshot_fields + (
        "_reads_inflight",
        "_writes_inflight",
    )

    def __init__(
        self,
        name: str,
        sim: Simulator,
        traffic,
        max_outstanding_reads: int = 4,
        max_outstanding_writes: int = 4,
        id_count: int = 4,
        depth: int = 2,
    ) -> None:
        super().__init__(name, traffic)
        self.max_outstanding_reads = max_outstanding_reads
        self.max_outstanding_writes = max_outstanding_writes
        self.id_count = id_count
        self.socket = MasterSocket(
            sim,
            f"{name}.sock",
            request_channels=["ar", "aw"],
            response_channels=["r", "b"],
            depth=depth,
        )
        self._reads_inflight = 0
        self._writes_inflight = 0

    def try_issue(self, txn: Transaction, cycle: int) -> bool:
        if txn.opcode.is_locking:
            raise ProtocolError(
                f"{self.name}: AXI has no LOCK/READEX; use exclusive "
                f"accesses (txn.excl)"
            )
        axid = txn.txn_tag % self.id_count
        txn.txn_tag = axid
        # Encode the channel in `thread` for the (channel, ID) ordering
        # stream — see OrderingModel.stream_key.
        txn.thread = 0 if txn.opcode.is_read else 1
        lock = AxLock.EXCLUSIVE if txn.excl else AxLock.NORMAL
        if txn.opcode.is_read:
            if self._reads_inflight >= self.max_outstanding_reads:
                return False
            channel = self.socket.req("ar")
            if not channel.can_push():
                return False
            channel.push(
                AxiAR(
                    arid=axid,
                    araddr=txn.address,
                    arlen=txn.beats - 1,
                    arsize=txn.beat_bytes.bit_length() - 1,
                    arburst=axburst_for(txn.burst),
                    arlock=lock,
                    arqos=txn.priority,
                    txn=txn,
                )
            )
            self._reads_inflight += 1
            return True
        if txn.opcode is Opcode.STORE_POSTED:
            raise ProtocolError(
                f"{self.name}: AXI writes always get a B response; "
                f"posted stores are an OCP/proprietary feature"
            )
        if self._writes_inflight >= self.max_outstanding_writes:
            return False
        channel = self.socket.req("aw")
        if not channel.can_push():
            return False
        channel.push(
            AxiAW(
                awid=axid,
                awaddr=txn.address,
                awlen=txn.beats - 1,
                awsize=txn.beat_bytes.bit_length() - 1,
                awburst=axburst_for(txn.burst),
                awlock=lock,
                awqos=txn.priority,
                wdata=list(txn.data) if txn.data is not None else None,
                txn=txn,
            )
        )
        self._writes_inflight += 1
        return True

    def collect_responses(self, cycle: int) -> List[int]:
        completed: List[int] = []
        r_channel = self.socket.rsp("r")
        while r_channel._committed:
            r: AxiR = r_channel.pop()
            self._reads_inflight -= 1
            txn = self.inflight_txn(r.txn_id)
            status = ResponseStatus[r.rresp.value]
            self.note_status(r.txn_id, status, excl=txn.excl)
            self.completion_status[r.txn_id] = status
            completed.append(r.txn_id)
        b_channel = self.socket.rsp("b")
        while b_channel._committed:
            b: AxiB = b_channel.pop()
            self._writes_inflight -= 1
            txn = self.inflight_txn(b.txn_id)
            status = ResponseStatus[b.bresp.value]
            self.note_status(b.txn_id, status, excl=txn.excl)
            self.completion_status[b.txn_id] = status
            completed.append(b.txn_id)
        return completed
