"""VSIA VCI socket models — the PVCI, BVCI and AVCI flavors.

The paper groups the VCI flavors with the ordering models they follow:
PVCI and BVCI are *fully ordered* (responses in request order), AVCI adds
packet/thread identifiers and allows out-of-order responses, like AXI.

- **PVCI** (Peripheral VCI): the minimal handshake — one outstanding
  request, single-word or short bursts via repeated cells.
- **BVCI** (Basic VCI): pipelined packets of cells with ``PLEN``/``EOP``;
  multiple outstanding requests, strictly ordered responses.
- **AVCI** (Advanced VCI): BVCI plus ``TRDID``/``PKTID`` tags; responses
  may interleave across tags.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.ordering import OrderingModel
from repro.core.transaction import Opcode, ResponseStatus, Transaction
from repro.protocols.base import MasterSocket, ProtocolError, ProtocolMaster
from repro.sim.kernel import Simulator


class VciCmd(enum.Enum):
    NOP = "NOP"
    READ = "READ"
    WRITE = "WRITE"
    LOCKED_READ = "LOCKED_READ"  # BVCI/AVCI locked read (READEX-style)
    STORE_COND = "STORE_COND"  # paired conditional/unlocking write


class VciRerror(enum.Enum):
    NORMAL = "NORMAL"
    GENERAL_ERROR = "GENERAL_ERROR"


@dataclass
class VciRequest:
    """One VCI command packet (cells folded into a beat list)."""

    cmd: VciCmd
    address: int
    plen: int  # bytes in the packet
    be: int  # byte enables of the first/last cell (simplified: all-ones)
    cells: int  # number of cells (beats)
    wdata: Optional[List[int]] = None
    trdid: int = 0  # AVCI only; 0 otherwise
    pktid: int = 0
    eop: bool = True
    txn: Optional[Transaction] = None


@dataclass
class VciResponse:
    rerror: VciRerror
    rdata: Optional[List[int]] = None
    rtrdid: int = 0
    rpktid: int = 0
    reop: bool = True
    txn_id: int = -1


def rerror_from_status(status: ResponseStatus) -> VciRerror:
    return VciRerror.NORMAL if not status.is_error else VciRerror.GENERAL_ERROR


class _VciMasterBase(ProtocolMaster):
    """Shared issue/collect logic for the three flavors."""

    flavor = "VCI"
    max_outstanding = 1
    supports_locked = False
    tagged = False

    def __init__(self, name: str, sim: Simulator, traffic, depth: int = 2) -> None:
        super().__init__(name, traffic)
        self.socket = MasterSocket(
            sim,
            f"{name}.sock",
            request_channels=["cmd"],
            response_channels=["rsp"],
            depth=depth,
        )

    def _cmd_for(self, txn: Transaction) -> VciCmd:
        if txn.excl:
            raise ProtocolError(
                f"{self.name}: VCI has no exclusive access; "
                f"{self.flavor} locked reads are the blocking alternative"
            )
        if txn.opcode is Opcode.LOAD:
            return VciCmd.READ
        if txn.opcode in (Opcode.STORE, Opcode.STORE_POSTED):
            return VciCmd.WRITE
        if txn.opcode is Opcode.READEX:
            if not self.supports_locked:
                raise ProtocolError(f"{self.name}: PVCI has no locked read")
            return VciCmd.LOCKED_READ
        if txn.opcode is Opcode.STORE_COND_LOCKED:
            if not self.supports_locked:
                raise ProtocolError(f"{self.name}: PVCI has no locked write")
            return VciCmd.STORE_COND
        raise ProtocolError(
            f"{self.name}: cannot map {txn.opcode.value} to {self.flavor}"
        )

    def try_issue(self, txn: Transaction, cycle: int) -> bool:
        if self.outstanding >= self.max_outstanding:
            return False
        channel = self.socket.req("cmd")
        if not channel.can_push():
            return False
        if txn.opcode is Opcode.STORE_POSTED:
            # VCI writes always complete with a response cell.
            txn.opcode = Opcode.STORE
        channel.push(
            VciRequest(
                cmd=self._cmd_for(txn),
                address=txn.address,
                plen=txn.total_bytes,
                be=(1 << txn.beat_bytes) - 1,
                cells=txn.beats,
                wdata=list(txn.data) if txn.data is not None else None,
                trdid=txn.txn_tag if self.tagged else 0,
                pktid=txn.txn_id & 0xFF,
                txn=txn,
            )
        )
        return True

    def collect_responses(self, cycle: int) -> List[int]:
        completed: List[int] = []
        channel = self.socket.rsp("rsp")
        while channel._committed:
            response: VciResponse = channel.pop()
            if response.rerror is VciRerror.GENERAL_ERROR:
                self.errors += 1
                self.completion_status[response.txn_id] = ResponseStatus.SLVERR
            else:
                self.completion_status[response.txn_id] = ResponseStatus.OKAY
            completed.append(response.txn_id)
        return completed


class PvciMaster(_VciMasterBase):
    """Peripheral VCI: one outstanding, no locking, fully ordered."""

    protocol_name = "PVCI"
    ordering_model = OrderingModel.FULLY_ORDERED
    flavor = "PVCI"
    max_outstanding = 1
    supports_locked = False
    tagged = False


class BvciMaster(_VciMasterBase):
    """Basic VCI: pipelined, fully ordered, locked reads supported."""

    protocol_name = "BVCI"
    ordering_model = OrderingModel.FULLY_ORDERED
    flavor = "BVCI"
    supports_locked = True
    tagged = False

    def __init__(
        self,
        name: str,
        sim: Simulator,
        traffic,
        max_outstanding: int = 4,
        depth: int = 2,
    ) -> None:
        super().__init__(name, sim, traffic, depth=depth)
        self.max_outstanding = max_outstanding


class AvciMaster(_VciMasterBase):
    """Advanced VCI: TRDID-tagged, out-of-order across tags."""

    protocol_name = "AVCI"
    ordering_model = OrderingModel.ID_BASED
    flavor = "AVCI"
    supports_locked = True
    tagged = True

    def __init__(
        self,
        name: str,
        sim: Simulator,
        traffic,
        max_outstanding: int = 8,
        tag_count: int = 4,
        depth: int = 2,
    ) -> None:
        super().__init__(name, sim, traffic, depth=depth)
        self.max_outstanding = max_outstanding
        self.tag_count = tag_count

    def try_issue(self, txn: Transaction, cycle: int) -> bool:
        txn.txn_tag = txn.txn_tag % self.tag_count
        return super().try_issue(txn, cycle)
