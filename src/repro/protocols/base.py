"""Shared socket machinery for all protocol models.

A *socket* is the bundle of channels between an IP block and whatever
interconnect attachment point it plugs into (NIU or bus bridge).  Each
channel is a staged :class:`~repro.sim.queue.SimQueue`, so channel
handshakes cost one cycle like everything else in the simulation.

:class:`ProtocolMaster` is the common base of every master IP model: it
pulls abstract intents (:class:`~repro.core.transaction.Transaction`
objects) from a traffic source, asks its protocol subclass whether/how
they can be issued now, and scores completions (latency histogram plus an
:class:`~repro.core.ordering.OrderingChecker` in the protocol's native
ordering model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

from repro.core.ordering import OrderingChecker, OrderingModel
from repro.core.transaction import ResponseStatus, Transaction
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.sim.queue import SimQueue
from repro.sim.snapshot import Snapshottable


class ProtocolError(RuntimeError):
    """A socket rule was violated (model bug or illegal stimulus)."""


class MasterSocket:
    """Named channels between a master IP and its attachment point.

    The IP side pushes onto *request-direction* channels and pops from
    *response-direction* channels; the NIU/bridge side does the reverse.
    Channel names are protocol specific ("req"/"rsp" for AHB-style,
    "ar"/"aw"/"w"/"r"/"b" for AXI...).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        request_channels: List[str],
        response_channels: List[str],
        depth: int = 2,
    ) -> None:
        self.name = name
        self.request_channels: Dict[str, SimQueue] = {
            ch: sim.new_queue(f"{name}.{ch}", capacity=depth)
            for ch in request_channels
        }
        self.response_channels: Dict[str, SimQueue] = {
            ch: sim.new_queue(f"{name}.{ch}", capacity=depth)
            for ch in response_channels
        }

    def req(self, channel: str) -> SimQueue:
        return self.request_channels[channel]

    def rsp(self, channel: str) -> SimQueue:
        return self.response_channels[channel]


@dataclass
class SlaveRequest:
    """Generic operation presented to a target IP by its target NIU.

    Target NIUs terminate the socket protocol themselves (state tables,
    exclusive monitors, lock managers) and present targets this neutral
    read/write interface, mirroring how memory controllers expose simple
    SRAM-like backends behind protocol front-ends.
    """

    read: bool
    offset: int
    beats: int
    beat_bytes: int
    addresses: List[int]
    data: Optional[List[int]] = None
    token: int = -1  # NIU-side correlation token
    meta: Dict[str, object] = field(default_factory=dict)


@dataclass
class SlaveResponse:
    token: int
    status: ResponseStatus = ResponseStatus.OKAY
    data: Optional[List[int]] = None


class SlaveSocket:
    """Request/response queue pair between a target NIU and a target IP."""

    def __init__(self, sim: Simulator, name: str, depth: int = 2) -> None:
        self.name = name
        self.requests = sim.new_queue(f"{name}.req", capacity=depth)
        self.responses = sim.new_queue(f"{name}.rsp", capacity=depth)


class TrafficSource(Protocol):
    """What a master IP model pulls intents from (see :mod:`repro.ip.traffic`)."""

    def poll(self, cycle: int) -> Optional[Transaction]:
        """Next intent if one is ready to issue at ``cycle``, else None."""
        ...

    def done(self) -> bool:
        """True when the source will never produce another intent."""
        ...

    def notify_complete(
        self, txn_id: int, cycle: int, status: ResponseStatus
    ) -> None:
        """Completion callback (lets sources model dependent requests and
        react to exclusive-access failures)."""
        ...


class ProtocolMaster(Component, Snapshottable):
    """Base master IP model.

    Subclass contract:

    - :meth:`try_issue` — if the pending intent can legally enter the
      socket this cycle, push the protocol records and return True;
    - :meth:`collect_responses` — pop whatever response channels have and
      return the ``txn_id`` of every intent that completed this cycle.
    """

    protocol_name = "BASE"
    ordering_model = OrderingModel.FULLY_ORDERED

    def __init__(
        self,
        name: str,
        traffic: TrafficSource,
        strict_ordering_check: bool = True,
    ) -> None:
        super().__init__(name)
        self.traffic = traffic
        self.checker = OrderingChecker(
            model=self.ordering_model, master=name, strict=strict_ordering_check
        )
        self._pending: Optional[Transaction] = None
        self._inflight: Dict[int, Transaction] = {}
        # Time-skipping lookahead (activity kernel only): when the
        # traffic source has pre-drawn its next intent ("polls"
        # lookahead), _armed_at is the absolute cycle the intent becomes
        # pollable — ticks before it must not poll (the source's rng
        # draws for those cycles were already consumed).  -1 = no
        # lookahead pending; the strict kernel never sets it.
        self._armed_at = -1
        self._latency_stat = None  # resolved at bind()
        #: Native status translated to the transaction-layer vocabulary,
        #: recorded by subclasses before returning from collect_responses.
        self.completion_status: Dict[int, ResponseStatus] = {}
        self.issued = 0
        self.completed = 0
        self.errors = 0
        self.exokay = 0
        self.excl_failures = 0

    # -- state capture ----------------------------------------------------
    # Subclasses extend _snapshot_fields with their own inflight maps.
    # `_latency_stat` is a bind()-time cache into the stats registry (the
    # registry restores in place, so the reference stays valid); wiring
    # (socket, channels) is the fresh build's.
    _snapshot_fields = (
        "_pending",
        "_inflight",
        "_armed_at",
        "completion_status",
        "issued",
        "completed",
        "errors",
        "exokay",
        "excl_failures",
    )

    def _snapshot_state(self) -> dict:
        state = super()._snapshot_state()
        state["checker"] = self.checker.snapshot()
        state["traffic"] = self.traffic.snapshot()
        return state

    def _restore_state(self, state) -> None:
        super()._restore_state(state)
        self.checker.restore(state["checker"])
        self.traffic.restore(state["traffic"])

    # ------------------------------------------------------------------ #
    # subclass interface
    # ------------------------------------------------------------------ #
    def try_issue(self, txn: Transaction, cycle: int) -> bool:
        raise NotImplementedError

    def collect_responses(self, cycle: int) -> List[int]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # common engine
    # ------------------------------------------------------------------ #
    def is_idle(self) -> bool:
        """Masters sleep only once their traffic is fully retired.

        While the source still has (or may generate) intents the master
        must poll every cycle — sources are cycle-driven (think time,
        Bernoulli rates), so there is no queue event to wake on.  Once
        :meth:`finished` is true it is true forever: no wake needed.
        """
        return self.finished()

    def bind(self, simulator) -> None:
        """Register response-channel wakes so a dormant master (parked by
        the time-skipping kernel while waiting on completions) is put
        back on the schedule the moment a response becomes visible."""
        super().bind(simulator)
        socket = getattr(self, "socket", None)
        if socket is not None:
            for queue in socket.response_channels.values():
                queue.wake_on_push(self)
        # Sources that couple masters to each other (DMA engines waiting
        # on stream-channel tokens, see repro.workloads) need a handle to
        # wake this master when an external signal re-arms them — a
        # dormant master parked by the time-skipping kernel has no other
        # way back onto the schedule.
        bind_traffic = getattr(self.traffic, "bind_master", None)
        if bind_traffic is not None:
            bind_traffic(self)
        # Issue/complete run once per transaction: resolve the latency
        # tracker once instead of a registry lookup per event.
        self._latency_stat = simulator.stats.latency(f"{self.name}.txn")

    # ------------------------------------------------------------------ #
    # time-skipping protocol
    # ------------------------------------------------------------------ #
    _next_event_known = True

    def _has_local_completions(self) -> bool:
        """Completions to deliver that are not on a response channel
        (protocols with locally-completed posted writes override)."""
        return False

    def next_event_cycle(self, now: int):
        if self._pending is not None:
            return now  # retrying try_issue against socket backpressure
        socket = getattr(self, "socket", None)
        if socket is None:
            return now  # unknown subclass wiring: never skip
        for queue in socket.response_channels.values():
            if queue._committed:
                return now  # responses waiting to be collected
        if self._has_local_completions():
            return now
        armed_at = self._armed_at
        if armed_at >= 0:
            return armed_at if armed_at > now else now
        lookahead = getattr(self.traffic, "lookahead", None)
        if lookahead is None:
            return now  # source has no lookahead: poll every cycle
        hint = lookahead(now)
        if hint is None:
            # Dormant until notify_complete — which only happens from our
            # own collect_responses path, reached via the response-channel
            # wake registered in bind().
            return None
        kind, value = hint
        if kind == "at":
            return value if value > now else now
        # "polls": the value-th future poll returns the armed intent.
        # Polls happen at our clock edges (every tick while _pending is
        # None, which lookahead guarantees stays true until then).
        divisor = self._clk_divisor
        if divisor == 1:
            ready = now + value - 1
        else:
            first = now + (self._clk_phase - now) % divisor
            ready = first + (value - 1) * divisor
        self._armed_at = ready
        return ready if ready > now else now

    def tick(self, cycle: int) -> None:
        for txn_id in self.collect_responses(cycle):
            self._complete(txn_id, cycle)
        if self._pending is None:
            armed_at = self._armed_at
            if armed_at >= 0:
                # Lookahead pending: the source's draws for the cycles up
                # to armed_at were consumed eagerly — do not poll again
                # until the armed intent is due.
                if cycle >= armed_at:
                    self._armed_at = -1
                    self._pending = self.traffic.poll(cycle)
            else:
                self._pending = self.traffic.poll(cycle)
        if self._pending is not None and self.try_issue(self._pending, cycle):
            txn = self._pending
            self._pending = None
            txn.issued_cycle = cycle
            self._inflight[txn.txn_id] = txn
            if txn.opcode.expects_response:
                # Posted writes have no response, so they take no part in
                # the response-ordering discipline (paper §3 singles them
                # out as one of the ordering obscurities).
                self.checker.issue(
                    txn.txn_id, thread=txn.thread, txn_tag=txn.txn_tag
                )
            self._latency_stat.start(txn.txn_id, cycle)
            self.issued += 1

    def _complete(self, txn_id: int, cycle: int) -> None:
        txn = self._inflight.pop(txn_id, None)
        if txn is None:
            raise ProtocolError(
                f"{self.name}: completion for unknown txn {txn_id}"
            )
        if txn.opcode.expects_response:
            self.checker.complete(txn_id)
        self._latency_stat.stop(txn_id, cycle)
        status = self.completion_status.pop(txn_id, ResponseStatus.OKAY)
        self.traffic.notify_complete(txn_id, cycle, status)
        self.completed += 1

    def note_status(self, txn_id: int, status: ResponseStatus, excl: bool) -> None:
        """Record per-response status before calling :meth:`_complete`."""
        if status.is_error:
            self.errors += 1
        elif excl and status is ResponseStatus.EXOKAY:
            self.exokay += 1
        elif excl and status is ResponseStatus.OKAY:
            self.excl_failures += 1

    @property
    def outstanding(self) -> int:
        return len(self._inflight)

    def finished(self) -> bool:
        """All traffic generated, issued and completed."""
        return (
            self.traffic.done()
            and self._pending is None
            and not self._inflight
        )

    def inflight_txn(self, txn_id: int) -> Transaction:
        return self._inflight[txn_id]
