"""An example proprietary socket ("various other proprietary protocols").

The paper's Fig 1/2 include a "VC Proprietary" block: real SoCs always
contain at least one home-grown interface.  ``MsgPort`` is a plausible
one — a strictly-ordered message mover with GET/PUT semantics, posted
PUTs, and a ``FENCE`` primitive (complete when everything before it has
completed).

FENCE is deliberately *not* expressible in any standard socket: it is the
running example for benchmark E6 (feature locality) — supporting it on
the NoC requires only NIU behaviour (drain the state table), no packet
change at all, since it never crosses the fabric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.ordering import OrderingModel
from repro.core.transaction import Opcode, ResponseStatus, Transaction
from repro.protocols.base import MasterSocket, ProtocolError, ProtocolMaster
from repro.sim.kernel import Simulator


class MsgKind(enum.Enum):
    GET = "GET"  # read
    PUT = "PUT"  # posted write
    PUT_ACK = "PUT_ACK"  # acknowledged write
    FENCE = "FENCE"  # local ordering barrier (never leaves the NIU)


@dataclass
class MsgRequest:
    kind: MsgKind
    addr: int
    length_words: int
    data: Optional[List[int]] = None
    txn: Optional[Transaction] = None


@dataclass
class MsgResponse:
    ok: bool
    data: Optional[List[int]] = None
    txn_id: int = -1


def make_fence(master: str = "") -> Transaction:
    """Build a FENCE intent (address 0, zero data movement)."""
    txn = Transaction(opcode=Opcode.LOAD, address=0, beats=1, master=master)
    txn.meta["fence"] = True
    return txn


def is_fence(txn: Transaction) -> bool:
    return bool(txn.meta.get("fence"))


class MsgMaster(ProtocolMaster):
    """Proprietary message-port master: strictly ordered, posted PUTs."""

    protocol_name = "PROPRIETARY"
    ordering_model = OrderingModel.FULLY_ORDERED

    _snapshot_fields = ProtocolMaster._snapshot_fields + (
        "_posted_complete",
        "fences_issued",
    )

    def __init__(
        self,
        name: str,
        sim: Simulator,
        traffic,
        max_outstanding: int = 2,
        depth: int = 2,
    ) -> None:
        super().__init__(name, traffic)
        self.max_outstanding = max_outstanding
        self.socket = MasterSocket(
            sim,
            f"{name}.sock",
            request_channels=["msg"],
            response_channels=["ack"],
            depth=depth,
        )
        self._posted_complete: List[int] = []
        self.fences_issued = 0

    def _kind_for(self, txn: Transaction) -> MsgKind:
        if is_fence(txn):
            return MsgKind.FENCE
        if txn.excl or txn.opcode.is_locking:
            raise ProtocolError(
                f"{self.name}: MsgPort has no synchronization primitives "
                f"beyond FENCE"
            )
        if txn.opcode.is_read:
            return MsgKind.GET
        if txn.opcode is Opcode.STORE_POSTED:
            return MsgKind.PUT
        return MsgKind.PUT_ACK

    def try_issue(self, txn: Transaction, cycle: int) -> bool:
        if self.outstanding >= self.max_outstanding:
            return False
        channel = self.socket.req("msg")
        if not channel.can_push():
            return False
        kind = self._kind_for(txn)
        channel.push(
            MsgRequest(
                kind=kind,
                addr=txn.address,
                length_words=txn.beats,
                data=list(txn.data) if txn.data is not None else None,
                txn=txn,
            )
        )
        if kind is MsgKind.FENCE:
            self.fences_issued += 1
        if kind is MsgKind.PUT:
            txn.opcode = Opcode.STORE_POSTED
            self._posted_complete.append(txn.txn_id)
        return True

    def _has_local_completions(self) -> bool:
        return bool(self._posted_complete)

    def collect_responses(self, cycle: int) -> List[int]:
        completed: List[int] = list(self._posted_complete)
        self._posted_complete.clear()
        channel = self.socket.rsp("ack")
        while channel._committed:
            response: MsgResponse = channel.pop()
            if not response.ok:
                self.errors += 1
                self.completion_status[response.txn_id] = ResponseStatus.SLVERR
            else:
                self.completion_status[response.txn_id] = ResponseStatus.OKAY
            completed.append(response.txn_id)
        return completed
