"""OCP socket model.

OCP is the paper's example of a *threaded* protocol: a single request
channel tagged with ``MThreadID``, responses in order within a thread and
unordered across threads.  Two OCP-specific features matter to the paper:

- **posted writes** (``WR``): writes without responses, completing at
  socket acceptance — one of the "WRITEs without responses" §3 mentions;
- **lazy synchronization** (``RDL``/``WRC`` — ReadLinked /
  WriteConditional): OCP's non-blocking synchronization, mapped by the
  NIU onto the same single exclusive-access packet bit as AXI exclusives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.ordering import OrderingModel
from repro.core.transaction import Opcode, ResponseStatus, Transaction
from repro.protocols.base import MasterSocket, ProtocolError, ProtocolMaster
from repro.sim.kernel import Simulator


class MCmd(enum.Enum):
    """OCP request commands (the subset the paper's discussion needs)."""

    IDLE = "IDLE"
    WR = "WR"  # posted write (no response)
    RD = "RD"
    WRNP = "WRNP"  # non-posted write
    RDL = "RDL"  # ReadLinked (lazy-sync load)
    WRC = "WRC"  # WriteConditional (lazy-sync store)


class SResp(enum.Enum):
    NULL = "NULL"
    DVA = "DVA"  # data valid / accept
    FAIL = "FAIL"  # WriteConditional lost its link
    ERR = "ERR"


def sresp_from_status(status: ResponseStatus, excl_failed: bool) -> SResp:
    if status.is_error:
        return SResp.ERR
    if excl_failed:
        return SResp.FAIL
    return SResp.DVA


@dataclass
class OcpRequest:
    mcmd: MCmd
    maddr: int
    mburstlength: int
    mthreadid: int
    mdata: Optional[List[int]] = None
    mreqinfo: int = 0
    txn: Optional[Transaction] = None

    def __post_init__(self) -> None:
        writes = (MCmd.WR, MCmd.WRNP, MCmd.WRC)
        if self.mcmd in writes and (
            self.mdata is None or len(self.mdata) != self.mburstlength
        ):
            raise ProtocolError(f"OCP {self.mcmd.value} needs MData per beat")


@dataclass
class OcpResponse:
    sresp: SResp
    sthreadid: int
    sdata: Optional[List[int]] = None
    txn_id: int = -1


class OcpMaster(ProtocolMaster):
    """OCP master IP model: multi-threaded, per-thread in-order.

    ``posted_writes=True`` (the OCP default here) makes plain ``STORE``
    intents go out as posted ``WR`` commands that complete at acceptance.
    """

    protocol_name = "OCP"
    ordering_model = OrderingModel.THREADED

    _snapshot_fields = ProtocolMaster._snapshot_fields + (
        "_thread_inflight",
        "_posted_complete",
        "posted_count",
    )

    def __init__(
        self,
        name: str,
        sim: Simulator,
        traffic,
        threads: int = 2,
        per_thread_outstanding: int = 2,
        posted_writes: bool = True,
        depth: int = 2,
    ) -> None:
        super().__init__(name, traffic)
        if threads < 1:
            raise ValueError("OCP master needs >= 1 thread")
        self.threads = threads
        self.per_thread_outstanding = per_thread_outstanding
        self.posted_writes = posted_writes
        self.socket = MasterSocket(
            sim,
            f"{name}.sock",
            request_channels=["req"],
            response_channels=["rsp"],
            depth=depth,
        )
        self._thread_inflight: Dict[int, int] = {t: 0 for t in range(threads)}
        self._posted_complete: List[int] = []
        self.posted_count = 0

    def _mcmd_for(self, txn: Transaction) -> MCmd:
        if txn.opcode.is_locking:
            raise ProtocolError(
                f"{self.name}: OCP uses lazy synchronization (RDL/WRC), "
                f"not LOCK/READEX"
            )
        if txn.excl:
            return MCmd.RDL if txn.opcode.is_read else MCmd.WRC
        if txn.opcode is Opcode.LOAD:
            return MCmd.RD
        if txn.opcode is Opcode.STORE_POSTED:
            return MCmd.WR
        if txn.opcode is Opcode.STORE:
            return MCmd.WR if self.posted_writes else MCmd.WRNP
        raise ProtocolError(f"{self.name}: cannot map {txn.opcode.value} to OCP")

    def try_issue(self, txn: Transaction, cycle: int) -> bool:
        thread = txn.thread % self.threads
        if self._thread_inflight[thread] >= self.per_thread_outstanding:
            return False
        channel = self.socket.req("req")
        if not channel.can_push():
            return False
        mcmd = self._mcmd_for(txn)
        txn.thread = thread  # normalize for the ordering checker
        if mcmd is MCmd.WR:
            txn.opcode = Opcode.STORE_POSTED  # response-less from here on
        channel.push(
            OcpRequest(
                mcmd=mcmd,
                maddr=txn.address,
                mburstlength=txn.beats,
                mthreadid=thread,
                mdata=list(txn.data) if txn.data is not None else None,
                txn=txn,
            )
        )
        if mcmd is MCmd.WR:
            # Posted: completes at socket acceptance, no response will come.
            self._posted_complete.append(txn.txn_id)
            self.posted_count += 1
        else:
            self._thread_inflight[thread] += 1
        return True

    def _has_local_completions(self) -> bool:
        return bool(self._posted_complete)

    def collect_responses(self, cycle: int) -> List[int]:
        completed: List[int] = list(self._posted_complete)
        self._posted_complete.clear()
        channel = self.socket.rsp("rsp")
        while channel._committed:
            response: OcpResponse = channel.pop()
            self._thread_inflight[response.sthreadid] -= 1
            txn = self.inflight_txn(response.txn_id)
            if response.sresp is SResp.ERR:
                self.errors += 1
                status = ResponseStatus.SLVERR
            elif txn.excl:
                if response.sresp is SResp.FAIL:
                    self.excl_failures += 1
                    status = ResponseStatus.OKAY  # lazy-sync store lost
                else:
                    self.exokay += 1
                    status = ResponseStatus.EXOKAY
            else:
                status = ResponseStatus.OKAY
            self.completion_status[response.txn_id] = status
            completed.append(response.txn_id)
        return completed
