"""VC socket protocol models.

One module per socket family the paper names — AHB 2.0, AXI, OCP, the VCI
flavors (PVCI/BVCI/AVCI) and an example proprietary protocol.  Each module
provides:

- request/response record types using the protocol's native signal names;
- a *master* IP model (a :class:`~repro.sim.component.Component`) that
  converts abstract traffic intents into protocol-legal request streams,
  respecting that protocol's pipelining/ordering rules, and checks
  responses against the protocol's ordering model.

The protocol models are intentionally independent of the NoC: they can be
attached to an initiator NIU (:mod:`repro.niu`) or to a bus bridge
(:mod:`repro.bus`), which is exactly the comparison in Figs 1/2.
"""

from repro.protocols.base import (
    MasterSocket,
    ProtocolError,
    ProtocolMaster,
    SlaveRequest,
    SlaveResponse,
    SlaveSocket,
)

__all__ = [
    "MasterSocket",
    "ProtocolError",
    "ProtocolMaster",
    "SlaveRequest",
    "SlaveResponse",
    "SlaveSocket",
]
