"""SoC address decoding: global byte address → (SlvAddr, offset).

Every initiator NIU holds (a copy of) the address map and stamps the
decoded ``SlvAddr`` into request packets; targets only ever see offsets
local to themselves.  Undecodable addresses produce a DECERR response at
the initiator NIU without ever entering the fabric — matching how real
NIUs implement default-slave behaviour.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple


class DecodeError(LookupError):
    """Address does not fall into any mapped range."""


@dataclass(frozen=True)
class AddressRange:
    """A half-open byte range ``[base, base + size)`` owned by one target."""

    base: int
    size: int
    slv_addr: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"range {self.name!r}: negative base")
        if self.size <= 0:
            raise ValueError(f"range {self.name!r}: size must be > 0")
        if self.slv_addr < 0:
            raise ValueError(f"range {self.name!r}: negative slv_addr")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def contains_span(self, address: int, span: int) -> bool:
        return self.base <= address and address + span <= self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.base < other.end and other.base < self.end


class AddressMap:
    """Ordered, non-overlapping collection of :class:`AddressRange`."""

    def __init__(self, ranges: Optional[Iterable[AddressRange]] = None) -> None:
        self._ranges: List[AddressRange] = []
        self._bases: List[int] = []
        for r in ranges or []:
            self.add(r)

    def add(self, new: AddressRange) -> None:
        """Insert ``new``; raises :class:`ValueError` on any overlap.

        The map invariant (sorted by base, pairwise disjoint) means only
        the would-be neighbours can overlap a candidate, so validation is
        O(log n) instead of a full scan.
        """
        index = bisect.bisect(self._bases, new.base)
        neighbors = []
        if index > 0:
            neighbors.append(self._ranges[index - 1])
        if index < len(self._ranges):
            neighbors.append(self._ranges[index])
        for existing in neighbors:
            if existing.overlaps(new):
                raise ValueError(
                    f"range {new.name!r} [{new.base:#x}, {new.end:#x}) overlaps "
                    f"{existing.name!r} [{existing.base:#x}, {existing.end:#x})"
                )
        self._ranges.insert(index, new)
        self._bases.insert(index, new.base)

    def add_range(
        self, base: int, size: int, slv_addr: int, name: str = ""
    ) -> AddressRange:
        r = AddressRange(base=base, size=size, slv_addr=slv_addr, name=name)
        self.add(r)
        return r

    def decode(self, address: int) -> Tuple[int, int]:
        """Return ``(slv_addr, offset)`` for a global byte address."""
        r = self.lookup(address)
        if r is None:
            raise DecodeError(f"address {address:#010x} not mapped")
        return r.slv_addr, address - r.base

    def lookup(self, address: int) -> Optional[AddressRange]:
        index = bisect.bisect(self._bases, address) - 1
        if index >= 0 and self._ranges[index].contains(address):
            return self._ranges[index]
        return None

    def decode_span(self, address: int, span: int) -> Tuple[int, int]:
        """Like :meth:`decode` but the whole span must fit one range.

        Bursts that straddle two targets are a socket-level error in every
        protocol we model, so NIUs reject them here with DECERR.
        """
        r = self.lookup(address)
        if r is None or not r.contains_span(address, span):
            raise DecodeError(
                f"span [{address:#010x}, {address + span:#010x}) not mapped "
                f"to a single target"
            )
        return r.slv_addr, address - r.base

    def ranges(self) -> List[AddressRange]:
        return list(self._ranges)

    def targets(self) -> List[int]:
        """Sorted unique SlvAddr values in the map."""
        return sorted({r.slv_addr for r in self._ranges})

    def range_for_target(self, slv_addr: int) -> List[AddressRange]:
        return [r for r in self._ranges if r.slv_addr == slv_addr]

    def __len__(self) -> int:
        return len(self._ranges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{r.name or r.slv_addr}@[{r.base:#x},{r.end:#x})" for r in self._ranges
        )
        return f"<AddressMap {parts}>"
