"""The NoC transaction layer — the paper's primary contribution.

This package defines what IP blocks see when they plug into the NoC:

- :mod:`repro.core.transaction` — protocol-neutral transaction primitives
  (LOAD, STORE, READEX, LOCK, exclusive variants, bursts);
- :mod:`repro.core.packet` — the uniform packet format carrying
  ``SlvAddr`` / ``MstAddr`` / ``Tag`` plus optional user-defined bits;
- :mod:`repro.core.ordering` — the three ordering models the layer must
  absorb (fully-ordered, threaded, ID-based) and a scoreboard that checks
  observed response orders against them;
- :mod:`repro.core.services` — "NoC services" such as exclusive-access
  monitors activated per NoC configuration;
- :mod:`repro.core.address_map` — SoC address decoding to ``SlvAddr``;
- :mod:`repro.core.layer` — the per-SoC transaction-layer configuration
  derived from the set of attached VC sockets.
"""

from repro.core.address_map import AddressMap, AddressRange, DecodeError
from repro.core.layer import TransactionLayerConfig, build_layer_config
from repro.core.ordering import (
    OrderingModel,
    OrderingChecker,
    OrderingViolation,
)
from repro.core.packet import NocPacket, PacketFormat, PacketKind, UserBit
from repro.core.services import (
    ExclusiveMonitor,
    ExclusiveResult,
    LockManager,
    NocService,
)
from repro.core.transaction import (
    BurstType,
    Opcode,
    Response,
    ResponseStatus,
    Transaction,
)

__all__ = [
    "AddressMap",
    "AddressRange",
    "BurstType",
    "DecodeError",
    "ExclusiveMonitor",
    "ExclusiveResult",
    "LockManager",
    "NocPacket",
    "NocService",
    "Opcode",
    "OrderingChecker",
    "OrderingModel",
    "OrderingViolation",
    "PacketFormat",
    "PacketKind",
    "Response",
    "ResponseStatus",
    "Transaction",
    "TransactionLayerConfig",
    "UserBit",
    "build_layer_config",
]
