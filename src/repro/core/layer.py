"""Per-SoC transaction-layer configuration.

Paper §2: "transactions can be customized to the actual set of VCs that
plug into the NoC, without altering the transport and physical layers".
:func:`build_layer_config` is that customization step: it inspects the
socket families attached to a NoC instance and derives

- the set of :class:`~repro.core.services.NocService` to activate,
- the resulting :class:`~repro.core.packet.PacketFormat` (base header +
  the user bits those services need),
- sizing parameters (tag bits from the largest outstanding-transaction
  budget, slv/mst address bits from the number of nodes).

Benchmark E6 (feature locality) measures exactly which of these artifacts
change when a new socket feature is added — the paper's claim is that the
answer is "the NIU and possibly a packet user bit, nothing else".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from repro.core.packet import PacketFormat, UserBit
from repro.core.services import NocService

#: Which services each socket family requires from the transaction layer.
#: AXI masters may issue exclusive accesses; OCP masters lazy
#: synchronization (same service); AHB masters legacy LOCKed sequences.
PROTOCOL_SERVICES: Dict[str, Set[NocService]] = {
    "AHB": {NocService.LEGACY_LOCK},
    "AXI": {NocService.EXCLUSIVE_ACCESS},
    "OCP": {NocService.EXCLUSIVE_ACCESS},
    "PVCI": set(),
    "BVCI": set(),
    "AVCI": set(),
    "PROPRIETARY": set(),
}


def _bits_for(count: int) -> int:
    """Minimum field width to encode ``count`` distinct values (min 1)."""
    return max(1, math.ceil(math.log2(max(2, count))))


@dataclass
class TransactionLayerConfig:
    """One NoC instance's transaction-layer configuration."""

    protocols: List[str]
    services: Set[NocService]
    packet_format: PacketFormat
    initiators: int
    targets: int
    max_outstanding: int

    def requires_transport_support(self) -> List[NocService]:
        """Services that leak below the transaction layer (LOCK only)."""
        return sorted(
            (s for s in self.services if s.touches_transport),
            key=lambda s: s.value,
        )

    def describe(self) -> str:
        return (
            f"TransactionLayer(protocols={sorted(set(self.protocols))}, "
            f"services={sorted(s.value for s in self.services)}, "
            f"{self.packet_format.describe()})"
        )


def build_layer_config(
    protocols: Iterable[str],
    initiators: int,
    targets: int,
    max_outstanding: int = 8,
    extra_services: Iterable[NocService] = (),
    extra_user_bits: Iterable[UserBit] = (),
) -> TransactionLayerConfig:
    """Derive the transaction-layer configuration for a set of sockets.

    Parameters
    ----------
    protocols:
        Socket family names of every NIU attached to this NoC
        (e.g. ``["AHB", "AXI", "OCP"]``).  Unknown names raise KeyError so
        configuration errors surface at build time, not mid-simulation.
    initiators, targets:
        Node counts, used to size MstAddr/SlvAddr fields.
    max_outstanding:
        Largest simultaneously-outstanding transaction budget of any NIU;
        sizes the Tag field.
    extra_services, extra_user_bits:
        Hooks for the feature-locality experiment (E6): adding a new
        socket feature means passing one more entry here and touching the
        corresponding NIU — nothing else.
    """
    protocol_list = [p.upper() for p in protocols]
    services: Set[NocService] = set(extra_services)
    for protocol in protocol_list:
        try:
            services |= PROTOCOL_SERVICES[protocol]
        except KeyError:
            raise KeyError(
                f"unknown protocol family {protocol!r}; known: "
                f"{sorted(PROTOCOL_SERVICES)}"
            ) from None

    # SlvAddr/MstAddr carry NoC node addresses; initiator and target NIUs
    # share one endpoint numbering space, so both fields must span it.
    node_bits = _bits_for(initiators + targets)
    fmt = PacketFormat(
        slv_addr_bits=node_bits,
        mst_addr_bits=node_bits,
        tag_bits=_bits_for(max_outstanding),
    )
    for service in sorted(services, key=lambda s: s.value):
        for bit in service.packet_bits:
            fmt = fmt.with_user_bit(bit)
    for bit in extra_user_bits:
        fmt = fmt.with_user_bit(bit)

    return TransactionLayerConfig(
        protocols=protocol_list,
        services=services,
        packet_format=fmt,
        initiators=initiators,
        targets=targets,
        max_outstanding=max_outstanding,
    )
