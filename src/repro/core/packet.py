"""The uniform NoC packet format.

The paper's central mechanism: whatever socket a VC speaks, its NIU emits
packets whose header carries a destination (``SlvAddr``), a source
(``MstAddr``) and a ``Tag``.  The switch fabric routes on these three
fields only and never interprets transaction semantics ("the NoC switch
fabric itself is unaware of actual NIU field assignment policies").

Socket-specific features that need information exchanged between NIUs are
added as *optional user-defined bits* (:class:`UserBit`), grown per NoC
configuration — adding a bit widens the packet header but changes nothing
in the transport or physical layers.  :class:`PacketFormat` captures one
such configuration and computes header bit budgets for the area/bandwidth
models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.transaction import Opcode, ResponseStatus


class PacketKind(enum.Enum):
    REQUEST = "REQ"
    RESPONSE = "RSP"


@dataclass(frozen=True)
class UserBit:
    """One optional, named packet-header bit (a "NoC service" carrier).

    ``width`` > 1 models multi-bit user fields; the exclusive-access
    service of the paper uses exactly one bit.
    """

    name: str
    width: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"user bit {self.name!r}: width must be >= 1")


# Baseline header fields and their widths in bits.  Widths follow the
# modelling in DESIGN.md §2: they matter for *relative* area/bandwidth
# numbers, not absolute silicon.
_BASE_HEADER_BITS = {
    "kind": 1,  # request / response
    "opcode": 3,  # 7 opcodes
    "slv_addr": 6,  # up to 64 targets
    "mst_addr": 6,  # up to 64 initiators
    "tag": 4,  # up to 16 interleaved transactions per pair
    "offset": 32,  # address offset within target
    "len": 6,  # up to 64 beats
    "size": 3,  # log2(beat bytes)
    "burst": 2,
    "status": 2,
    "priority": 2,
}


@dataclass
class PacketFormat:
    """A concrete packet-format configuration for one NoC instance.

    The format is *customized to the actual set of VCs that plug into the
    NoC* (paper §2): :func:`repro.core.layer.build_layer_config` inspects
    the attached sockets and enables only the user bits they need.
    """

    user_bits: List[UserBit] = field(default_factory=list)
    slv_addr_bits: int = 6
    mst_addr_bits: int = 6
    tag_bits: int = 4

    def __post_init__(self) -> None:
        names = [b.name for b in self.user_bits]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate user bit names: {names}")
        for limit_name in ("slv_addr_bits", "mst_addr_bits", "tag_bits"):
            if getattr(self, limit_name) < 1:
                raise ValueError(f"{limit_name} must be >= 1")

    def has_user_bit(self, name: str) -> bool:
        return any(b.name == name for b in self.user_bits)

    def user_bit(self, name: str) -> UserBit:
        for b in self.user_bits:
            if b.name == name:
                return b
        raise KeyError(f"packet format has no user bit {name!r}")

    def with_user_bit(self, bit: UserBit) -> "PacketFormat":
        """Return a new format extended with ``bit`` (idempotent)."""
        if self.has_user_bit(bit.name):
            return self
        return PacketFormat(
            user_bits=self.user_bits + [bit],
            slv_addr_bits=self.slv_addr_bits,
            mst_addr_bits=self.mst_addr_bits,
            tag_bits=self.tag_bits,
        )

    def header_bits(self) -> int:
        """Total request/response header width in bits."""
        bits = dict(_BASE_HEADER_BITS)
        bits["slv_addr"] = self.slv_addr_bits
        bits["mst_addr"] = self.mst_addr_bits
        bits["tag"] = self.tag_bits
        return sum(bits.values()) + sum(b.width for b in self.user_bits)

    def max_tags(self) -> int:
        return 1 << self.tag_bits

    def max_targets(self) -> int:
        return 1 << self.slv_addr_bits

    def max_initiators(self) -> int:
        return 1 << self.mst_addr_bits

    def describe(self) -> str:
        user = ", ".join(f"{b.name}[{b.width}]" for b in self.user_bits) or "none"
        return (
            f"PacketFormat(header={self.header_bits()}b, "
            f"slv={self.slv_addr_bits}b, mst={self.mst_addr_bits}b, "
            f"tag={self.tag_bits}b, user bits: {user})"
        )


@dataclass
class NocPacket:
    """One transport-layer packet.

    Requests travel initiator-NIU → target-NIU, responses the reverse.
    The transport layer routes requests towards ``slv_addr`` and responses
    towards ``mst_addr``; it reads ``priority`` for QoS and the ``lock``
    marker for legacy LOCK handling (the one transaction family that
    *does* leak into transport, as §3 of the paper concedes) and nothing
    else.
    """

    kind: PacketKind
    opcode: Opcode
    slv_addr: int
    mst_addr: int
    tag: int
    offset: int = 0
    beats: int = 1
    beat_bytes: int = 4
    burst: str = "SINGLE"
    payload: Optional[List[int]] = None
    status: ResponseStatus = ResponseStatus.OKAY
    priority: int = 0
    user: Dict[str, int] = field(default_factory=dict)
    txn_id: int = -1
    injected_cycle: int = -1
    #: Per-(source, destination) injection sequence, stamped by adaptive
    #: planes so the ejection port can restore per-pair FIFO delivery
    #: (-1 on deterministic planes, which need no resequencing).
    fabric_seq: int = -1

    def __post_init__(self) -> None:
        if self.slv_addr < 0 or self.mst_addr < 0:
            raise ValueError("slv_addr/mst_addr must be non-negative")
        if self.tag < 0:
            raise ValueError("tag must be non-negative")
        if self.beats < 1:
            raise ValueError("beats must be >= 1")

    # ------------------------------------------------------------------ #
    # routing view (all the fabric is allowed to look at)
    # ------------------------------------------------------------------ #
    @property
    def route_destination(self) -> int:
        """Node the fabric must deliver this packet to."""
        if self.kind is PacketKind.REQUEST:
            return self.slv_addr
        return self.mst_addr

    @property
    def route_source(self) -> int:
        if self.kind is PacketKind.REQUEST:
            return self.mst_addr
        return self.slv_addr

    @property
    def is_lock_related(self) -> bool:
        """Transport-visible: switches act on LOCK-family packets (§3)."""
        return self.opcode.is_locking

    # ------------------------------------------------------------------ #
    # payload sizing (used by flit segmentation and bandwidth model)
    # ------------------------------------------------------------------ #
    @property
    def payload_beats(self) -> int:
        """Number of data beats this packet carries."""
        if self.kind is PacketKind.REQUEST:
            return self.beats if self.opcode.is_write else 0
        return self.beats if self.opcode.is_read else 0

    def payload_bits(self) -> int:
        return self.payload_beats * self.beat_bytes * 8

    def validate_against(self, fmt: PacketFormat) -> None:
        """Check field ranges against a packet format (NIU egress check)."""
        if self.slv_addr >= fmt.max_targets():
            raise ValueError(
                f"slv_addr {self.slv_addr} exceeds format max {fmt.max_targets()}"
            )
        if self.mst_addr >= fmt.max_initiators():
            raise ValueError(
                f"mst_addr {self.mst_addr} exceeds format max {fmt.max_initiators()}"
            )
        if self.tag >= fmt.max_tags():
            raise ValueError(f"tag {self.tag} exceeds format max {fmt.max_tags()}")
        for name, value in self.user.items():
            bit = fmt.user_bit(name)  # KeyError if the service is not enabled
            if value >= (1 << bit.width):
                raise ValueError(
                    f"user field {name!r} value {value} exceeds {bit.width} bits"
                )

    def make_response(
        self,
        status: ResponseStatus = ResponseStatus.OKAY,
        payload: Optional[List[int]] = None,
        user: Optional[Dict[str, int]] = None,
    ) -> "NocPacket":
        """Build the response packet for this request (target-NIU side)."""
        if self.kind is not PacketKind.REQUEST:
            raise ValueError("can only respond to a request packet")
        return NocPacket(
            kind=PacketKind.RESPONSE,
            opcode=self.opcode,
            slv_addr=self.slv_addr,
            mst_addr=self.mst_addr,
            tag=self.tag,
            offset=self.offset,
            beats=self.beats,
            beat_bytes=self.beat_bytes,
            burst=self.burst,
            payload=payload,
            status=status,
            priority=self.priority,
            user=dict(user) if user else {},
            txn_id=self.txn_id,
        )

    def describe(self) -> str:
        return (
            f"{self.kind.value} {self.opcode.value} slv={self.slv_addr} "
            f"mst={self.mst_addr} tag={self.tag} off={self.offset:#x} "
            f"x{self.beats} prio={self.priority} user={self.user}"
        )
