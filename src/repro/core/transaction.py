"""Protocol-neutral transaction primitives.

Every VC socket (AHB, AXI, OCP, VCI, proprietary) is translated by its NIU
into instances of :class:`Transaction`; responses travel back as
:class:`Response`.  The vocabulary is the union of what the supported
sockets can express — the paper's point is that this union is small enough
to be carried by one packet format once ordering and synchronization are
handled by field-assignment policies and optional user bits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.snapshot import SerialCounter


class Opcode(enum.Enum):
    """Transaction-layer operation codes.

    ``LOAD``/``STORE`` are the ordinary read/write primitives.
    ``STORE_POSTED`` is a write without a response (OCP posted writes,
    AHB bufferable writes).  ``READEX``/``STORE_COND_LOCKED`` and
    ``LOCK``/``UNLOCK`` implement the *blocking* legacy synchronization;
    exclusive (non-blocking) synchronization reuses ``LOAD``/``STORE``
    with the ``excl`` user bit set — exactly the paper's single-bit
    "NoC service".
    """

    LOAD = "LOAD"
    STORE = "STORE"
    STORE_POSTED = "STORE_POSTED"
    READEX = "READEX"
    STORE_COND_LOCKED = "STORE_COND_LOCKED"
    LOCK = "LOCK"
    UNLOCK = "UNLOCK"

    @property
    def is_write(self) -> bool:
        return self in (Opcode.STORE, Opcode.STORE_POSTED, Opcode.STORE_COND_LOCKED)

    @property
    def is_read(self) -> bool:
        return self in (Opcode.LOAD, Opcode.READEX)

    @property
    def expects_response(self) -> bool:
        """Posted stores complete at the NIU; everything else gets a reply."""
        return self is not Opcode.STORE_POSTED

    @property
    def is_locking(self) -> bool:
        """True for legacy blocking-synchronization opcodes (paper §3)."""
        return self in (
            Opcode.READEX,
            Opcode.STORE_COND_LOCKED,
            Opcode.LOCK,
            Opcode.UNLOCK,
        )


class BurstType(enum.Enum):
    """Burst address sequences, union of AHB/AXI/OCP/VCI burst kinds."""

    SINGLE = "SINGLE"
    INCR = "INCR"
    WRAP = "WRAP"
    FIXED = "FIXED"  # AXI FIFO-style bursts
    STREAM = "STREAM"  # OCP STRM

    def addresses(self, start: int, beats: int, beat_bytes: int) -> List[int]:
        """Byte address of every beat in the burst.

        WRAP wraps at the burst-size boundary as AHB/AXI define it.
        FIXED/STREAM repeatedly target the start address.
        """
        if beats < 1:
            raise ValueError(f"burst needs >= 1 beat, got {beats}")
        if self in (BurstType.FIXED, BurstType.STREAM):
            return [start] * beats
        if self is BurstType.SINGLE:
            if beats != 1:
                raise ValueError(f"SINGLE burst must have 1 beat, got {beats}")
            return [start]
        if self is BurstType.INCR:
            return [start + i * beat_bytes for i in range(beats)]
        # WRAP: total size must be a power of two multiple of the beat size
        total = beats * beat_bytes
        if total & (total - 1):
            raise ValueError(f"WRAP burst size {total} is not a power of two")
        base = (start // total) * total
        return [base + ((start - base) + i * beat_bytes) % total for i in range(beats)]


class ResponseStatus(enum.Enum):
    """Completion status carried in responses, superset of socket statuses."""

    OKAY = "OKAY"
    EXOKAY = "EXOKAY"  # exclusive success (AXI EXOKAY / OCP SRMD ok)
    SLVERR = "SLVERR"  # target signalled an error
    DECERR = "DECERR"  # no target decoded for the address

    @property
    def is_error(self) -> bool:
        return self in (ResponseStatus.SLVERR, ResponseStatus.DECERR)


#: Global transaction-id stream.  A SerialCounter (not itertools.count)
#: so checkpoints can capture and restore it — a restored run must hand
#: out exactly the ids the uninterrupted run would have.
_txn_ids = SerialCounter()


def _next_txn_id() -> int:
    return next(_txn_ids)


@dataclass
class Transaction:
    """One transaction-layer operation emitted by an initiator NIU.

    Attributes
    ----------
    opcode, address, burst:
        What to do and where.  ``address`` is a global SoC byte address;
        the address map resolves it to (``SlvAddr``, offset).
    beats, beat_bytes:
        Burst length and per-beat width.
    data:
        Write payload, one int per beat (reads carry ``None``).
    master, thread, txn_tag:
        Socket-side identity: the initiating master's name, the OCP
        thread / AXI ID it used (0 for single-threaded sockets), and the
        protocol-level transaction tag if any.
    excl:
        Requests the exclusive-access NoC service (AXI exclusive /
        OCP lazy synchronization) — becomes the single user bit.
    priority:
        QoS class, 0 = lowest.  Purely a transport-layer hint.
    txn_id:
        Globally unique simulation identifier (tracing / latency).
    meta:
        Socket-specific scratch (e.g. AHB HPROT) that the NIU round-trips.
    """

    opcode: Opcode
    address: int
    beats: int = 1
    beat_bytes: int = 4
    burst: BurstType = BurstType.SINGLE
    data: Optional[List[int]] = None
    master: str = ""
    thread: int = 0
    txn_tag: int = 0
    excl: bool = False
    priority: int = 0
    issued_cycle: int = -1
    txn_id: int = field(default_factory=_next_txn_id)
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"negative address {self.address:#x}")
        if self.beats < 1:
            raise ValueError(f"beats must be >= 1, got {self.beats}")
        if self.beat_bytes not in (1, 2, 4, 8, 16):
            raise ValueError(f"unsupported beat width {self.beat_bytes}")
        if self.beats == 1 and self.burst in (BurstType.INCR, BurstType.WRAP):
            self.burst = BurstType.SINGLE
        if self.opcode.is_write:
            if self.data is None:
                raise ValueError(f"{self.opcode.value} requires data")
            if len(self.data) != self.beats:
                raise ValueError(
                    f"{self.opcode.value}: {len(self.data)} data beats "
                    f"for a {self.beats}-beat burst"
                )
        if self.excl and self.opcode.is_locking:
            raise ValueError("excl bit is exclusive with legacy locking opcodes")

    def beat_addresses(self) -> List[int]:
        return self.burst.addresses(self.address, self.beats, self.beat_bytes)

    @property
    def total_bytes(self) -> int:
        return self.beats * self.beat_bytes

    def describe(self) -> str:
        return (
            f"{self.opcode.value} @{self.address:#010x} x{self.beats}"
            f"({self.burst.value}) master={self.master} thread={self.thread}"
            f"{' EXCL' if self.excl else ''}"
        )


@dataclass
class Response:
    """Transaction-layer completion delivered back to the initiator NIU."""

    txn_id: int
    opcode: Opcode
    status: ResponseStatus = ResponseStatus.OKAY
    data: Optional[List[int]] = None
    master: str = ""
    thread: int = 0
    txn_tag: int = 0
    completed_cycle: int = -1
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.opcode.is_read and self.status is ResponseStatus.OKAY:
            if self.data is None:
                raise ValueError("read OKAY response requires data")

    @property
    def ok(self) -> bool:
        return not self.status.is_error

    def describe(self) -> str:
        return (
            f"RSP txn={self.txn_id} {self.opcode.value} {self.status.value} "
            f"master={self.master} thread={self.thread}"
        )


def make_read(
    address: int,
    beats: int = 1,
    beat_bytes: int = 4,
    burst: BurstType = BurstType.INCR,
    **kwargs,
) -> Transaction:
    """Convenience constructor used throughout tests and examples."""
    if beats == 1:
        burst = BurstType.SINGLE
    return Transaction(
        opcode=Opcode.LOAD,
        address=address,
        beats=beats,
        beat_bytes=beat_bytes,
        burst=burst,
        **kwargs,
    )


def make_write(
    address: int,
    data: List[int],
    beat_bytes: int = 4,
    burst: BurstType = BurstType.INCR,
    posted: bool = False,
    **kwargs,
) -> Transaction:
    """Convenience constructor for (posted) writes."""
    if len(data) == 1:
        burst = BurstType.SINGLE
    return Transaction(
        opcode=Opcode.STORE_POSTED if posted else Opcode.STORE,
        address=address,
        beats=len(data),
        beat_bytes=beat_bytes,
        burst=burst,
        data=list(data),
        **kwargs,
    )


def split_burst(txn: Transaction, max_beats: int) -> List[Tuple[int, List[int]]]:
    """Split a burst into (address, data-slice) chunks of ``max_beats``.

    Used by bridges and narrow NIUs that cannot carry the original burst —
    precisely the feature-loss the paper attributes to bridges.
    """
    if max_beats < 1:
        raise ValueError("max_beats must be >= 1")
    addresses = txn.beat_addresses()
    chunks: List[Tuple[int, List[int]]] = []
    for start in range(0, txn.beats, max_beats):
        end = min(start + max_beats, txn.beats)
        data = txn.data[start:end] if txn.data is not None else []
        chunks.append((addresses[start], data))
    return chunks
