"""Ordering models absorbed by the transaction layer.

Paper §3: AHB/PVCI/BVCI are *fully ordered* between requests and
responses; OCP is fully ordered *within a thread* but threads are
unordered against each other; AXI/AVCI attach *transaction IDs* and allow
out-of-order responses across IDs (ordered within an ID).  The Arteris
layer adapts to all three "using a careful assignment policy" of
SlvAddr/MstAddr/Tag.

This module defines the three models, the ordering constraint they impose
(:meth:`OrderingModel.must_order`), and :class:`OrderingChecker`, a
scoreboard that replays an observed (issue, completion) sequence and
reports violations.  Benchmarks E2 runs the same fabric under all three
models and asserts zero violations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.snapshot import Snapshottable


class OrderingModel(enum.Enum):
    """The three socket ordering disciplines the layer must absorb."""

    FULLY_ORDERED = "FULLY_ORDERED"  # AHB 2.0, PVCI, BVCI
    THREADED = "THREADED"  # OCP: ordered within ThreadID
    ID_BASED = "ID_BASED"  # AXI, AVCI: ordered within transaction ID

    def stream_key(self, thread: int, txn_tag: int) -> Tuple[int, ...]:
        """The key within which responses must preserve issue order.

        - fully ordered: every transaction shares one stream;
        - threaded: one stream per ThreadID;
        - ID-based: one stream per (channel, transaction ID).  AXI orders
          reads per ARID and writes per AWID but never reads against
          writes ("independent READ and WRITE channels, further obscuring
          ordering constraints", paper §3) — the AXI master model encodes
          the channel in ``thread`` (0 = read, 1 = write).
        """
        if self is OrderingModel.FULLY_ORDERED:
            return ()
        if self is OrderingModel.THREADED:
            return (thread,)
        return (thread, txn_tag)

    def must_order(
        self,
        first: Tuple[int, int],
        second: Tuple[int, int],
    ) -> bool:
        """Whether response(second) may not overtake response(first).

        Arguments are ``(thread, txn_tag)`` pairs of two transactions
        issued in that order by the same master.
        """
        return self.stream_key(*first) == self.stream_key(*second)


class OrderingViolation(AssertionError):
    """Raised (or collected) when a response overtakes one it must follow."""


@dataclass
class _IssueRecord:
    txn_id: int
    sequence: int
    thread: int
    txn_tag: int
    completed: bool = False


@dataclass
class OrderingChecker(Snapshottable):
    """Scoreboard validating observed completion order per master.

    Usage: call :meth:`issue` when the master hands a transaction to its
    NIU and :meth:`complete` when the response reaches the master.  Every
    completion is checked against all earlier *incomplete* issues in the
    same ordering stream; completing out of stream order is a violation.

    With ``strict=True`` violations raise immediately; otherwise they are
    collected in :attr:`violations` so a bench can count them.
    """

    model: OrderingModel
    master: str = ""
    strict: bool = True
    violations: List[str] = field(default_factory=list)
    _records: Dict[int, _IssueRecord] = field(default_factory=dict)
    # Open (incomplete) records bucketed by ordering stream, each bucket in
    # issue order.  A completion only ever needs to look at its own stream,
    # so the check is O(open-in-stream) instead of O(all issues ever) —
    # with thousands of completed transactions retained for post-run stats,
    # the full scan dominated saturated-workload profiles.
    _open_by_stream: Dict[Tuple[int, ...], Dict[int, _IssueRecord]] = field(
        default_factory=dict
    )
    _open_count: int = 0
    _sequence: int = 0

    # _open_by_stream buckets alias the _IssueRecord objects in _records;
    # the checkpoint layer's shared-memo deepcopy preserves that aliasing.
    _snapshot_fields = (
        "violations",
        "_records",
        "_open_by_stream",
        "_open_count",
        "_sequence",
    )

    def issue(self, txn_id: int, thread: int = 0, txn_tag: int = 0) -> None:
        if txn_id in self._records:
            raise KeyError(f"txn {txn_id} already issued on {self.master!r}")
        record = _IssueRecord(
            txn_id=txn_id,
            sequence=self._sequence,
            thread=thread,
            txn_tag=txn_tag,
        )
        self._records[txn_id] = record
        key = self.model.stream_key(thread, txn_tag)
        self._open_by_stream.setdefault(key, {})[txn_id] = record
        self._open_count += 1
        self._sequence += 1

    def complete(self, txn_id: int) -> None:
        record = self._records.get(txn_id)
        if record is None:
            raise KeyError(f"txn {txn_id} completing but never issued")
        if record.completed:
            raise KeyError(f"txn {txn_id} completed twice")
        key = self.model.stream_key(record.thread, record.txn_tag)
        stream = self._open_by_stream[key]
        # Buckets hold only incomplete issues in issue order, so everything
        # ahead of this record in its bucket is an overtaken transaction.
        for other in stream.values():
            if other.txn_id == txn_id:
                break
            message = (
                f"master {self.master!r} ({self.model.value}): response "
                f"for txn {txn_id} (seq {record.sequence}) overtook "
                f"txn {other.txn_id} (seq {other.sequence}) "
                f"in stream {key}"
            )
            if self.strict:
                raise OrderingViolation(message)
            self.violations.append(message)
        record.completed = True
        del stream[txn_id]
        if not stream:
            del self._open_by_stream[key]
        self._open_count -= 1

    @property
    def outstanding(self) -> int:
        return self._open_count

    @property
    def issued(self) -> int:
        return len(self._records)

    @property
    def completed_count(self) -> int:
        return len(self._records) - self._open_count

    def all_complete(self) -> bool:
        return self.outstanding == 0 and self.issued > 0

    def reset(self) -> None:
        self._records.clear()
        self._open_by_stream.clear()
        self._open_count = 0
        self._sequence = 0
        self.violations.clear()


def interleaving_allowed(
    model: OrderingModel,
    earlier: Tuple[int, int],
    later: Tuple[int, int],
) -> bool:
    """True if the later transaction's response may overtake the earlier's.

    Convenience inverse of :meth:`OrderingModel.must_order`, used by NIUs
    when deciding whether an incoming response can be forwarded or must be
    held in the reorder buffer.
    """
    return not model.must_order(earlier, later)


#: Map from socket protocol family name to its native ordering model.
#: NIUs consult this to choose a default field-assignment policy.
PROTOCOL_ORDERING: Dict[str, OrderingModel] = {
    "AHB": OrderingModel.FULLY_ORDERED,
    "PVCI": OrderingModel.FULLY_ORDERED,
    "BVCI": OrderingModel.FULLY_ORDERED,
    "OCP": OrderingModel.THREADED,
    "AXI": OrderingModel.ID_BASED,
    "AVCI": OrderingModel.ID_BASED,
    "PROPRIETARY": OrderingModel.FULLY_ORDERED,
}


def ordering_for_protocol(protocol: str) -> OrderingModel:
    """Native ordering model of a socket family (KeyError if unknown)."""
    try:
        return PROTOCOL_ORDERING[protocol.upper()]
    except KeyError:
        raise KeyError(
            f"unknown protocol family {protocol!r}; known: "
            f"{sorted(PROTOCOL_ORDERING)}"
        ) from None
