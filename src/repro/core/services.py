"""NoC services — optional transaction-layer features (paper §3).

The paper contrasts two synchronization families:

- **Legacy blocking**: READEX / LOCK.  These *impact the transport level*:
  switches must take specific decisions when they see LOCK-related
  packets (a path through the fabric is held for one master).
  :class:`LockManager` models the target-side lock state; the transport
  layer's routers additionally reserve the locked path (see
  :mod:`repro.transport.router`).

- **Non-blocking exclusive**: AXI "exclusive access" and OCP "lazy
  synchronization".  Handling these "only requires adding a single
  user-defined bit in the packets, and state information in the NIU".
  :class:`ExclusiveMonitor` is that state: a reservation table at the
  target NIU, keyed by initiator, granting EXOKAY to an exclusive store
  only if the reservation still stands.

Both are *services*: a NoC configuration activates them only when an
attached socket needs them (:mod:`repro.core.layer`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.packet import UserBit
from repro.sim.snapshot import Snapshottable

#: The paper's single optional packet bit for exclusive accesses.
EXCL_USER_BIT = UserBit(
    name="excl",
    width=1,
    description="AXI exclusive access / OCP lazy synchronization marker",
)

#: Urgency side-band used by the QoS experiments (not in the paper's list,
#: included to show the 'family of similar NoC services' is open-ended).
URGENCY_USER_BIT = UserBit(
    name="urgency",
    width=2,
    description="dynamic QoS boost requested by the initiator NIU",
)


class NocService(enum.Enum):
    """Activatable transaction-layer services."""

    EXCLUSIVE_ACCESS = "EXCLUSIVE_ACCESS"  # one packet bit + NIU state
    LEGACY_LOCK = "LEGACY_LOCK"  # transport-level path locking
    URGENCY = "URGENCY"  # QoS boost side-band

    @property
    def packet_bits(self) -> List[UserBit]:
        """User bits this service adds to the packet format."""
        if self is NocService.EXCLUSIVE_ACCESS:
            return [EXCL_USER_BIT]
        if self is NocService.URGENCY:
            return [URGENCY_USER_BIT]
        return []  # LEGACY_LOCK rides on dedicated opcodes, not user bits

    @property
    def touches_transport(self) -> bool:
        """Paper §3: only the LOCK family leaks below the transaction layer."""
        return self is NocService.LEGACY_LOCK


class ExclusiveResult(enum.Enum):
    """Outcome of an exclusive store at the monitor."""

    EXOKAY = "EXOKAY"  # reservation held — store performed
    OKAY_FAILED = "OKAY_FAILED"  # reservation lost — store NOT performed


@dataclass
class _Reservation:
    address: int
    span: int
    cycle: int


@dataclass
class ExclusiveMonitor(Snapshottable):
    """Per-target exclusive-access reservation table (NIU state).

    Semantics follow AXI: an exclusive load establishes a reservation for
    ``(initiator, address-range)``; any store by *another* initiator that
    overlaps the range kills the reservation; an exclusive store succeeds
    (EXOKAY) only if the initiator's reservation is still alive, and
    clears it either way.  ``max_reservations`` bounds the table, which is
    what the gate-count model charges for.
    """

    name: str = "excl-monitor"
    max_reservations: int = 16
    _table: Dict[int, _Reservation] = field(default_factory=dict)
    grants: int = 0
    failures: int = 0
    evictions: int = 0

    _snapshot_fields = ("_table", "grants", "failures", "evictions")

    def exclusive_load(
        self, initiator: int, address: int, span: int, cycle: int
    ) -> None:
        """Record a reservation (replacing the initiator's previous one)."""
        if span < 1:
            raise ValueError("reservation span must be >= 1 byte")
        if (
            initiator not in self._table
            and len(self._table) >= self.max_reservations
        ):
            # Capacity eviction: drop the oldest reservation.  Real
            # monitors simply fail the evicted master's later exclusive
            # store, which is what this produces.
            oldest = min(self._table.items(), key=lambda kv: kv[1].cycle)
            del self._table[oldest[0]]
            self.evictions += 1
        self._table[initiator] = _Reservation(address=address, span=span, cycle=cycle)

    def observe_store(self, initiator: int, address: int, span: int) -> None:
        """Any ordinary store snoops the table and kills overlapping entries."""
        dead = [
            other
            for other, res in self._table.items()
            if other != initiator and _overlaps(res, address, span)
        ]
        for other in dead:
            del self._table[other]

    def exclusive_store(
        self, initiator: int, address: int, span: int
    ) -> ExclusiveResult:
        """Attempt the exclusive store; the reservation is consumed."""
        res = self._table.pop(initiator, None)
        if res is not None and _overlaps(res, address, span):
            # A successful exclusive store also invalidates everyone
            # else's overlapping reservations (it is a store).
            self.observe_store(initiator, address, span)
            self.grants += 1
            return ExclusiveResult.EXOKAY
        self.failures += 1
        return ExclusiveResult.OKAY_FAILED

    def has_reservation(self, initiator: int) -> bool:
        return initiator in self._table

    @property
    def live_reservations(self) -> int:
        return len(self._table)


def _overlaps(res: _Reservation, address: int, span: int) -> bool:
    return address < res.address + res.span and res.address < address + span


class LockError(RuntimeError):
    """Illegal lock usage (unlock without lock, double lock...)."""


@dataclass
class LockManager(Snapshottable):
    """Target-side state for legacy LOCK/READEX blocking synchronization.

    While an initiator holds the lock, every other initiator's request at
    this target is stalled — the blocking behaviour the paper says newer
    exclusive accesses were introduced to avoid.  The transport-level half
    (path reservation through switches) is modelled in the router.
    """

    name: str = "lock-manager"
    holder: Optional[int] = None
    acquisitions: int = 0
    blocked_cycles: int = 0
    _waiters: Set[int] = field(default_factory=set)

    _snapshot_fields = ("holder", "acquisitions", "blocked_cycles", "_waiters")

    @property
    def locked(self) -> bool:
        return self.holder is not None

    def may_proceed(self, initiator: int) -> bool:
        """Whether a request from ``initiator`` may access the target now."""
        return self.holder is None or self.holder == initiator

    def acquire(self, initiator: int) -> bool:
        """Try to take the lock; False means the caller must retry/stall."""
        if self.holder is None:
            self.holder = initiator
            self.acquisitions += 1
            self._waiters.discard(initiator)
            return True
        if self.holder == initiator:
            raise LockError(f"{self.name}: initiator {initiator} double-lock")
        self._waiters.add(initiator)
        return False

    def release(self, initiator: int) -> None:
        if self.holder != initiator:
            raise LockError(
                f"{self.name}: initiator {initiator} releasing lock held by "
                f"{self.holder}"
            )
        self.holder = None

    def note_blocked(self, count: int = 1) -> None:
        """Bench hook: accumulate cycles other masters spent stalled."""
        self.blocked_cycles += count

    @property
    def waiting(self) -> int:
        return len(self._waiters)
