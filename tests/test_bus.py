"""Shared-bus baseline and bridge tests (Fig-2 system, claims C1/E8)."""

import pytest

from repro.bus import build_bus_soc, coverage_matrix, coverage_score
from repro.bus.coverage import FeatureSupport, format_matrix
from repro.core.transaction import Opcode, Transaction, make_read, make_write
from repro.ip.traffic import ScriptedTraffic
from repro.soc import InitiatorSpec, TargetSpec


def bus_soc(protocol, intents, protocol_kwargs=None, targets=2, **bus_kwargs):
    inits = [
        InitiatorSpec(
            "m0", protocol, ScriptedTraffic(intents),
            protocol_kwargs=protocol_kwargs or {},
        )
    ]
    tgts = [TargetSpec(f"mem{i}", size=0x1000) for i in range(targets)]
    return build_bus_soc(inits, tgts, **bus_kwargs)


PROTOCOLS = [
    ("AHB", {}),
    ("AXI", {}),
    ("OCP", {"threads": 2}),
    ("PVCI", {}),
    ("BVCI", {}),
    ("AVCI", {}),
    ("PROPRIETARY", {}),
]


class TestBridgedRoundTrip:
    @pytest.mark.parametrize("protocol,kwargs", PROTOCOLS,
                             ids=[p for p, _ in PROTOCOLS])
    def test_write_read_roundtrip(self, protocol, kwargs):
        intents = [make_write(0x100, [0xAB, 0xCD]), make_read(0x100, beats=2)]
        soc = bus_soc(protocol, intents, kwargs)
        soc.run_to_completion(max_cycles=50_000)
        assert soc.masters["m0"].completed == 2
        assert soc.ordering_violations() == 0

    def test_decerr_on_unmapped(self):
        soc = bus_soc("AXI", [make_read(0x9000_0000)])
        soc.run_to_completion(max_cycles=50_000)
        assert soc.masters["m0"].errors == 1


class TestBridgePenalties:
    def test_long_burst_split(self):
        """A 32-beat AXI burst exceeds the reference socket's 16-beat cap
        and is split into multiple bus transfers."""
        soc = bus_soc("AXI", [make_write(0x0, list(range(32)))])
        soc.run_to_completion(max_cycles=50_000)
        bridge = soc.bridges["m0"]
        assert bridge.splits == 1
        assert soc.bus.transfers == 2

    def test_exclusive_emulated_with_bus_lock(self):
        load = make_read(0x40)
        load.excl = True
        store = make_write(0x40, [1])
        store.excl = True
        soc = bus_soc("AXI", [load, store])
        soc.run_to_completion(max_cycles=50_000)
        bridge = soc.bridges["m0"]
        assert bridge.lock_emulations == 2
        assert soc.bus.lock_held_cycles > 0
        assert soc.bus.lock_holder is None  # released at the end
        assert soc.masters["m0"].exokay >= 1  # emulation reports success

    def test_bridge_latency_visible(self):
        fast = bus_soc("AHB", [make_read(0x0)], bridge_latency=0)
        fast.run_to_completion(max_cycles=10_000)
        slow = bus_soc("AHB", [make_read(0x0)], bridge_latency=6)
        slow.run_to_completion(max_cycles=10_000)
        lat_fast = fast.master_latency("m0")["mean"]
        lat_slow = slow.master_latency("m0")["mean"]
        # Both directions pay the pipe (±1 cycle of phase alignment).
        assert lat_slow >= lat_fast + 2 * 6 - 2

    def test_threads_serialized(self):
        """Two OCP threads behind a bridge cannot overlap — the bridge
        takes one intent at a time."""
        intents = []
        for i in range(6):
            t = make_read(0x10 * i)
            t.thread = i % 2
            intents.append(t)
        soc = bus_soc("OCP", intents, {"threads": 2})
        soc.run_to_completion(max_cycles=50_000)
        assert soc.masters["m0"].completed == 6
        # Bus saw them strictly one at a time.
        assert soc.bus.transfers == 6


class TestBusArbitration:
    def _two_master_soc(self, arbitration):
        inits = [
            InitiatorSpec("a", "BVCI",
                          ScriptedTraffic([make_read(0x10 * i) for i in range(10)])),
            InitiatorSpec("b", "BVCI",
                          ScriptedTraffic([make_read(0x10 * i) for i in range(10)])),
        ]
        return build_bus_soc(inits, [TargetSpec("mem0", size=0x1000)],
                             arbitration=arbitration)

    @pytest.mark.parametrize("arbitration", ["rr", "fixed", "priority"])
    def test_all_complete_under_any_arbitration(self, arbitration):
        soc = self._two_master_soc(arbitration)
        soc.run_to_completion(max_cycles=100_000)
        assert soc.total_completed() == 20

    def test_bus_serializes_everything(self):
        soc = self._two_master_soc("rr")
        cycles = soc.run_to_completion(max_cycles=100_000)
        assert soc.bus.utilization(cycles) > 0.5  # single shared resource

    def test_lock_blocks_other_master(self):
        seq = [
            Transaction(opcode=Opcode.READEX, address=0x0),
            Transaction(opcode=Opcode.STORE_COND_LOCKED, address=0x0, data=[1]),
        ]
        inits = [
            InitiatorSpec("locker", "AHB", ScriptedTraffic(seq)),
            InitiatorSpec("victim", "BVCI",
                          ScriptedTraffic([make_read(0x20)])),
        ]
        soc = build_bus_soc(inits, [TargetSpec("mem0", size=0x1000)])
        soc.run_to_completion(max_cycles=50_000)
        assert soc.total_completed() == 3
        assert soc.bus.lock_held_cycles > 0


class TestCoverageMatrices:
    def test_niu_coverage_is_full(self):
        """The transaction layer was designed for the socket union —
        every feature is native through an NIU (the paper's claim)."""
        for protocol in coverage_matrix("niu"):
            assert coverage_score(protocol, "niu") == 1.0

    def test_every_rich_protocol_loses_through_a_bridge(self):
        for protocol in ("AXI", "OCP", "BVCI", "AVCI"):
            assert coverage_score(protocol, "bridge") < 1.0

    def test_simple_protocols_survive_bridges(self):
        assert coverage_score("AHB", "bridge") == 1.0
        assert coverage_score("PVCI", "bridge") == 1.0

    def test_axi_specific_losses(self):
        matrix = coverage_matrix("bridge")["AXI"]
        assert matrix["out_of_order_ids"] is FeatureSupport.LOST
        assert matrix["exclusive_access"] is FeatureSupport.EMULATED

    def test_matrices_cover_same_features(self):
        niu, bridge = coverage_matrix("niu"), coverage_matrix("bridge")
        assert set(niu) == set(bridge)
        for protocol in niu:
            assert set(niu[protocol]) == set(bridge[protocol])

    def test_format_matrix_prints(self):
        text = format_matrix("bridge")
        assert "AXI" in text and "score=" in text

    def test_unknown_attachment(self):
        with pytest.raises(ValueError):
            coverage_matrix("wireless")
