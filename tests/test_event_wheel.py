"""Event-wheel kernel: next-event cycle skipping, parking and wakes.

The time-skipping half of the activity contract
(:meth:`Component.next_event_cycle`) is only legal if it is invisible:
every observable — what components do, when queue items move, every stat
— must be byte-identical to the strict tick-everything kernel.  These
tests pin the kernel mechanics (skip targets, timing-wheel parking,
stale-slot validation, wake-during-a-skipped-window rewinds, clock-edge
alignment) on purpose-built components, and pin the router's body-flit
fast path against its slow-path reference on full SoCs.
"""

import pytest

from repro.sim.component import Component
from repro.sim.kernel import PARK_HORIZON, Simulator, TimingWheel
from repro.phys.clocking import ClockDomain

from test_kernel_determinism import _fresh_global_ids  # noqa: F401
from test_kernel_determinism import (
    build_adaptive_gals_soc,
    build_faulted_adaptive_gals_soc,
    build_gals_soc,
    build_mixed_soc,
    build_vc_gals_soc,
    fingerprint,
)


class PulseSource(Component):
    """Declares its next event precisely: pushes once at ``fire_at``."""

    _next_event_known = True

    def __init__(self, name, queue, fire_at):
        super().__init__(name)
        self.queue = queue
        self.fire_at = fire_at
        self.fired = False
        self.tick_cycles = []

    def is_idle(self):
        return self.fired

    def next_event_cycle(self, now):
        if self.fired:
            return None
        return self.fire_at if self.fire_at > now else now

    def tick(self, cycle):
        self.tick_cycles.append(cycle)
        if not self.fired and cycle >= self.fire_at:
            self.queue.push(cycle)
            self.fired = True


class RecordingConsumer(Component):
    """Sleeps on an empty queue; records exactly when items arrive."""

    def __init__(self, name, queue):
        super().__init__(name)
        self.queue = queue
        queue.wake_on_push(self)
        self.received = []

    def is_idle(self):
        return not self.queue

    def tick(self, cycle):
        if self.queue:
            self.received.append((cycle, self.queue.pop()))


class GatedTicker(Component):
    """Plain component (no event protocol) on a slow clock domain."""

    def __init__(self, name):
        super().__init__(name)
        self.ticks = []

    def tick(self, cycle):
        self.ticks.append(cycle)


def _pulse_sim(strict, fire_at=200, window=400):
    sim = Simulator(strict=strict)
    q = sim.new_queue("q", capacity=4)
    src = sim.add(PulseSource("src", q, fire_at))
    dst = sim.add(RecordingConsumer("dst", q))
    sim.run(window)
    return sim, src, dst


class TestCycleSkipping:
    def test_skip_is_observably_identical_to_strict(self):
        __, __, strict_dst = _pulse_sim(strict=True)
        sim, __, dst = _pulse_sim(strict=False)
        assert dst.received == strict_dst.received
        # The pulse fires at 200, is committed the same cycle and
        # consumed at 201 — everything else is provably dead time.
        assert dst.received == [(201, 200)]
        assert sim.cycles_skipped > 300

    def test_empty_schedule_skips_to_the_end(self):
        sim = Simulator()
        sim.run(5000)
        assert sim.cycle == 5000
        assert sim.cycles_skipped >= 4999

    def test_run_boundary_clamps_the_skip(self):
        sim = Simulator()
        q = sim.new_queue("q", capacity=4)
        sim.add(PulseSource("src", q, fire_at=1000))
        sim.run(10)  # skip must stop at the run() boundary...
        assert sim.cycle == 10
        sim.run(2000)  # ...and the source must still fire on time
        assert q.total_pushed == 1

    def test_component_added_after_skip_is_scheduled(self):
        sim = Simulator()
        sim.run(50)
        t = sim.add(GatedTicker("late"))
        sim.run(3)
        assert t.ticks == [50, 51, 52]

    def test_unknown_component_disables_skipping(self):
        sim = Simulator()
        t = sim.add(GatedTicker("t"))  # no next-event protocol, divisor 1
        sim.run(40)
        assert t.ticks == list(range(40))
        assert sim.cycles_skipped == 0

    def test_gated_component_skips_to_its_edges(self):
        """A component with no event protocol but a slow clock domain
        still enables skipping: its next possible action is its next
        clock edge, and ticks land exactly on the edges — identical to
        the strict kernel's domain gating."""
        edges = None
        for strict in (True, False):
            sim = Simulator(strict=strict)
            t = sim.add(GatedTicker("t"))
            t.set_clock_domain(ClockDomain("slow", divisor=5, phase=2))
            sim.run(31)
            if edges is None:
                edges = t.ticks
            assert t.ticks == edges
        assert edges == [2, 7, 12, 17, 22, 27]
        assert sim.cycles_skipped > 0  # the non-edge cycles were skipped


class TestTimingWheelParking:
    def test_far_event_parks_on_the_wheel(self):
        sim = Simulator()
        q = sim.new_queue("q", capacity=4)
        src = sim.add(PulseSource("src", q, fire_at=300))
        sim.add(GatedTicker("hot"))  # keeps the kernel stepping
        sim.run(20)  # past the first retire sweep
        assert src._parked_until == 300
        assert sim.wheel_events >= 1
        sim.run(300)
        assert src.fired
        assert q.total_pushed == 1

    def test_wake_during_parked_window_rewinds_safely(self):
        """A component parked far in the future must honour an earlier
        queue event: the wake re-schedules it immediately and its stale
        wheel slot is dropped, not double-fired."""
        sim = Simulator()
        trigger = sim.new_queue("trigger", capacity=4)
        out = sim.new_queue("out", capacity=4)

        class ParkedWorker(PulseSource):
            # Fires at fire_at *or* whenever the trigger queue delivers.
            def __init__(self, name, queue, fire_at, trigger):
                super().__init__(name, queue, fire_at)
                self.trigger = trigger
                trigger.wake_on_push(self)

            def is_idle(self):
                return self.fired and not self.trigger

            def tick(self, cycle):
                self.tick_cycles.append(cycle)
                if not self.fired and (
                    self.trigger or cycle >= self.fire_at
                ):
                    if self.trigger:
                        self.trigger.pop()
                    self.queue.push(cycle)
                    self.fired = True

        worker = sim.add(ParkedWorker("w", out, 500, trigger))
        sim.add(GatedTicker("hot"))
        sim.run(40)
        assert worker._parked_until == 500  # parked by the sweep
        trigger.push("now!")  # external event inside the parked window
        sim.run(10)
        # Woken at the commit, fired at the next cycle — 460 cycles
        # before its wheel slot.
        assert worker.fired
        assert out.total_pushed == 1
        assert worker._parked_until == -1
        sim.run(600)  # the stale slot at 500 must not re-fire anything
        assert out.total_pushed == 1

    def test_park_horizon_keeps_near_events_in_the_run_list(self):
        sim = Simulator()
        q = sim.new_queue("q", capacity=4)
        # Fires 2 cycles after the first sweep: too close to park.
        src = sim.add(PulseSource("src", q, fire_at=PARK_HORIZON + 2))
        sim.add(GatedTicker("hot"))
        sim.run(PARK_HORIZON)
        assert src._parked_until == -1
        sim.run(PARK_HORIZON)
        assert src.fired


class TestTimingWheelUnit:
    def test_schedule_and_pop_due_orders_slots(self):
        wheel = TimingWheel()
        a, b, c = (Component(n) for n in "abc")
        wheel.schedule(30, c)
        wheel.schedule(10, a)
        wheel.schedule(10, b)
        assert wheel.next_cycle() == 10
        assert len(wheel) == 3
        due = wheel.pop_due(10)
        assert due == [(10, a), (10, b)]
        assert wheel.next_cycle() == 30
        assert wheel.pop_due(100) == [(30, c)]
        assert wheel.next_cycle() is None
        assert len(wheel) == 0

    def test_events_scheduled_counter(self):
        wheel = TimingWheel()
        for i in range(5):
            wheel.schedule(7, Component(f"c{i}"))
        assert wheel.events_scheduled == 5


class TestSkippingMatchesStrictOnSocs:
    """The determinism suite's fingerprints already compare the skipping
    kernel against strict byte-for-byte; these pin that the comparison
    is not vacuous — the skipping machinery really engages on the GALS /
    VC / adaptive SoCs — and that drained SoCs skip to the horizon."""

    @pytest.mark.parametrize(
        "build, cycles",
        [
            (build_gals_soc, 5000),
            (build_vc_gals_soc, 5000),
            (build_adaptive_gals_soc, 5000),
        ],
        ids=["gals", "vc-dateline-gals", "adaptive-escape-gals"],
    )
    def test_skipping_engages(self, build, cycles):
        soc = build(strict=False)
        soc.run(cycles)
        assert soc.sim.cycles_skipped > 0

    def test_strict_kernel_never_skips(self):
        soc = build_gals_soc(strict=True)
        soc.run(5000)
        assert soc.sim.cycles_skipped == 0

    def test_drained_soc_skips_nearly_everything(self):
        soc = build_mixed_soc(strict=False)
        soc.run_to_completion()
        drained_at = soc.sim.cycle
        soc.run(50_000)
        skipped_after = soc.sim.cycles_skipped
        assert soc.sim.cycle == drained_at + 50_000
        # Post-drain cycles are free: virtually the whole stretch is
        # jumped over (a handful of steps may run at the boundary).
        assert skipped_after >= 49_900


class TestFaultEdgesAndSkipping:
    """A fault edge is an externally-timetabled event: the wheel may skip
    any amount of quiet time but must land on the edge's exact cycle (the
    injector's ``next_event_cycle`` is the next scheduled edge)."""

    def test_fault_edges_in_quiet_window_land_exactly(self):
        # The faulted GALS SoC's traffic drains well before cycle 400,
        # so both fault edges (down 400, up 900) sit inside windows the
        # wheel would otherwise skip straight over.
        soc = build_faulted_adaptive_gals_soc(strict=False)
        soc.run(5000)
        injector = soc.fabric.request_plane.fault_injector
        assert injector is not None
        assert [(c, ev.down) for c, ev in injector.applied] == [
            (400, True),
            (900, False),
        ]
        # ...and skipping genuinely engaged around them.
        assert soc.sim.cycles_skipped > 0

    def test_faulted_soc_completes_through_both_edges(self):
        soc = build_faulted_adaptive_gals_soc(strict=False)
        soc.run_to_completion(max_cycles=400_000)
        assert all(m.finished() for m in soc.masters.values())
        assert soc.ordering_violations() == 0
        injector = soc.fabric.request_plane.fault_injector
        assert [(c, ev.down) for c, ev in injector.applied] == [
            (400, True),
            (900, False),
        ]


def _disable_fast_path(soc):
    for plane in soc.fabric._planes:
        for router in plane.routers.values():
            router.stream_fast_path = False
    return soc


class TestBodyFlitFastPath:
    """The streaming fast path (held grants + sole-candidate bypass)
    must produce the same flit interleaving as running the reference
    arbitration for every flit — pinned by full-fingerprint equality,
    which covers queue counters, traces, per-router stats and memory
    images, cycle for cycle."""

    @pytest.mark.parametrize(
        "build, cycles",
        [
            (build_mixed_soc, 4000),
            (build_vc_gals_soc, 5000),
            (build_adaptive_gals_soc, 5000),
        ],
        ids=["single-vc", "vc-dateline-gals", "adaptive-escape-gals"],
    )
    def test_fast_path_matches_slow_path(self, build, cycles):
        fast = fingerprint(build(strict=False), cycles)
        slow = fingerprint(_disable_fast_path(build(strict=False)), cycles)
        for key in fast:
            assert fast[key] == slow[key], f"{key} diverged"

    def test_fast_path_is_on_by_default(self):
        soc = build_mixed_soc(strict=False)
        routers = [
            r
            for plane in soc.fabric._planes
            for r in plane.routers.values()
        ]
        assert routers and all(r.stream_fast_path for r in routers)
