"""Unit tests for topology constructors."""

import networkx as nx
import pytest

from repro.transport import topology as topo


class TestMesh:
    def test_router_and_link_counts(self):
        t = topo.mesh(3, 3)
        assert t.graph.number_of_nodes() == 9
        assert t.graph.number_of_edges() == 12  # 2*w*h - w - h

    def test_default_endpoint_per_router(self):
        t = topo.mesh(2, 2)
        assert t.endpoints == [0, 1, 2, 3]

    def test_endpoint_oversubscription_round_robins(self):
        t = topo.mesh(2, 2, endpoints=6)
        assert len(t.endpoints) == 6
        assert t.router_of(0) == t.router_of(4)

    def test_hop_distance(self):
        t = topo.mesh(3, 3)
        assert t.hop_distance(0, 0) == 0
        # endpoint 0 -> router (0,0), endpoint 8 -> router (2,2)
        assert t.hop_distance(0, 8) == 4

    def test_degenerate_dims_rejected(self):
        with pytest.raises(ValueError):
            topo.mesh(0, 3)


class TestOtherShapes:
    def test_torus_has_wraparound(self):
        t = topo.torus(3, 3)
        assert t.graph.has_edge((0, 0), (2, 0))
        assert t.graph.has_edge((0, 0), (0, 2))
        assert t.diameter() <= topo.mesh(3, 3).diameter()

    def test_ring(self):
        t = topo.ring(5)
        assert t.graph.number_of_edges() == 5
        assert all(t.graph.degree[n] == 2 for n in t.graph)

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            topo.ring(1)

    def test_star_endpoints_on_leaves(self):
        t = topo.star(4, endpoints=4)
        for ep in t.endpoints:
            assert t.router_of(ep) != 0  # hub carries no endpoint

    def test_tree_endpoints_on_leaves(self):
        t = topo.tree(depth=2, fanout=2, endpoints=4)
        for ep in t.endpoints:
            assert t.graph.degree[t.router_of(ep)] == 1

    def test_single_router_xbar(self):
        t = topo.single_router(6)
        assert t.graph.number_of_nodes() == 1
        assert all(t.router_of(ep) == 0 for ep in range(6))

    def test_custom(self):
        t = topo.custom([(0, 1), (1, 2)], {0: 0, 1: 2})
        assert t.hop_distance(0, 1) == 2


class TestEndpointIndex:
    def test_endpoints_at_matches_attachment_map(self):
        t = topo.mesh(2, 2, endpoints=6)
        for router in t.routers:
            expected = sorted(
                ep for ep, r in t.endpoint_router.items() if r == router
            )
            assert t.endpoints_at(router) == expected

    def test_endpoints_at_unknown_router_is_empty(self):
        t = topo.ring(3)
        assert t.endpoints_at("nonexistent") == []

    def test_index_is_precomputed_and_stable(self):
        t = topo.star(4, endpoints=8)
        first = t.endpoints_at(1)
        # Returned lists are copies: callers cannot corrupt the index.
        first.append(999)
        assert 999 not in t.endpoints_at(1)

    def test_every_endpoint_appears_exactly_once(self):
        t = topo.tree(depth=2, fanout=2, endpoints=5)
        seen = [ep for r in t.routers for ep in t.endpoints_at(r)]
        assert sorted(seen) == t.endpoints


class TestCanonicalOrdering:
    """Router/neighbor ordering is numeric, not lexicographic: with
    ``key=str``, router ``(1, 10)`` sorted before ``(1, 2)`` as soon as a
    fabric grew wider than 10, silently changing arbitration tie-break
    order between small and large meshes.  These pin the canonical
    tuple-key ordering."""

    def test_wide_ring_routers_sort_numerically(self):
        t = topo.ring(12)
        assert t.routers == list(range(12))  # str sort gave 0,1,10,11,2,…

    def test_wide_mesh_neighbors_sort_elementwise(self):
        t = topo.mesh(2, 12)
        assert t.neighbors((0, 10)) == [(0, 9), (0, 11), (1, 10)]
        assert t.neighbors((1, 2)) == [(0, 2), (1, 1), (1, 3)]

    def test_router_sort_key_orders_double_digit_tuples(self):
        assert topo.router_sort_key((1, 2)) < topo.router_sort_key((1, 10))
        assert sorted([(1, 10), (1, 2), (0, 11)], key=topo.router_sort_key) == [
            (0, 11), (1, 2), (1, 10)
        ]

    def test_ordering_consistent_between_narrow_and_wide(self):
        """The relative order of a router pair never depends on fabric
        width (the str-key bug made it flip past width 10)."""
        narrow = topo.mesh(2, 3)
        wide = topo.mesh(2, 12)
        common = [r for r in narrow.routers if r in set(wide.routers)]
        assert common == [r for r in wide.routers if r in set(narrow.routers)]


class TestValidation:
    def test_disconnected_graph_rejected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError):
            topo.Topology(g, {0: 0})

    def test_endpoint_on_unknown_router_rejected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        with pytest.raises(ValueError):
            topo.Topology(g, {0: 99})

    def test_negative_endpoint_rejected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        with pytest.raises(ValueError):
            topo.Topology(g, {-1: 0})
