"""Unit + property tests for the credit counter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.transport.flow_control import CreditCounter


class TestBasics:
    def test_initial_credits_equal_capacity(self):
        c = CreditCounter(4)
        assert c.available == 4
        assert c.can_send(4)
        assert not c.can_send(5)

    def test_consume_and_immediate_return(self):
        c = CreditCounter(2, return_latency=0)
        c.consume(2)
        assert c.available == 0
        c.give_back()
        assert c.available == 1

    def test_delayed_return(self):
        c = CreditCounter(2, return_latency=2)
        c.consume(1)
        c.give_back(1)
        assert c.available == 1  # not yet matured
        c.advance()
        assert c.available == 1
        c.advance()
        assert c.available == 2

    def test_underflow_rejected(self):
        c = CreditCounter(1)
        c.consume(1)
        with pytest.raises(RuntimeError):
            c.consume(1)

    def test_overflow_rejected(self):
        c = CreditCounter(1, return_latency=0)
        with pytest.raises(RuntimeError):
            c.give_back(1)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            CreditCounter(0)
        with pytest.raises(ValueError):
            CreditCounter(1, return_latency=-1)
        with pytest.raises(ValueError):
            CreditCounter(1).give_back(0)

    def test_outstanding_accounting(self):
        c = CreditCounter(4, return_latency=3)
        c.consume(3)
        c.give_back(2)
        assert c.outstanding == 3  # 1 held + 2 in the return loop


@given(
    capacity=st.integers(min_value=1, max_value=8),
    latency=st.integers(min_value=0, max_value=4),
    script=st.lists(
        st.sampled_from(["send", "ret", "tick"]), min_size=1, max_size=200
    ),
)
def test_property_credits_conserved(capacity, latency, script):
    """available + outstanding == capacity at every step, and the sender
    can never overrun the receiver buffer."""
    c = CreditCounter(capacity, return_latency=latency)
    receiver_occupancy = 0
    for action in script:
        if action == "send" and c.can_send():
            c.consume()
            receiver_occupancy += 1
        elif action == "ret" and receiver_occupancy > 0:
            receiver_occupancy -= 1
            c.give_back()
        elif action == "tick":
            c.advance()
        assert 0 <= c.available <= capacity
        assert c.available + c.outstanding == capacity
        assert receiver_occupancy <= capacity
