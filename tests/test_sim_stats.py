"""Unit + property tests for the statistics primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import Counter, Histogram, LatencyStat, StatsRegistry


def test_counter_basics():
    c = Counter("c")
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert c.rate(10) == 0.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_histogram_summary():
    h = Histogram("h")
    for v in [1, 2, 3, 4, 5]:
        h.add(v)
    s = h.summary()
    assert s["count"] == 5
    assert s["mean"] == 3
    assert s["min"] == 1
    assert s["max"] == 5
    assert s["p50"] == 3


def test_histogram_empty_is_zeroes():
    h = Histogram("h")
    assert h.mean() == 0.0
    assert h.percentile(99) == 0.0


def test_percentile_bounds_checked():
    h = Histogram("h")
    h.add(1)
    with pytest.raises(ValueError):
        h.percentile(101)


@given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=200))
def test_percentile_properties(samples):
    h = Histogram("h")
    for s in samples:
        h.add(s)
    p0 = h.percentile(0.0001)
    p100 = h.percentile(100)
    assert p0 == min(samples)
    assert p100 == max(samples)
    assert h.minimum() <= h.percentile(50) <= h.maximum()


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=100))
def test_stddev_nonnegative(samples):
    h = Histogram("h")
    for s in samples:
        h.add(s)
    assert h.stddev() >= 0.0


def test_latency_stat_roundtrip():
    lat = LatencyStat("l")
    lat.start("t1", 10)
    assert lat.open_count == 1
    assert lat.stop("t1", 25) == 15
    assert lat.open_count == 0
    assert lat.histogram.mean() == 15


def test_latency_double_start_rejected():
    lat = LatencyStat("l")
    lat.start("t", 0)
    with pytest.raises(KeyError):
        lat.start("t", 1)


def test_latency_unknown_stop_rejected():
    lat = LatencyStat("l")
    with pytest.raises(KeyError):
        lat.stop("nope", 5)


def test_latency_negative_rejected():
    lat = LatencyStat("l")
    lat.start("t", 10)
    with pytest.raises(ValueError):
        lat.stop("t", 5)


def test_registry_memoizes():
    reg = StatsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.histogram("y") is reg.histogram("y")
    assert reg.latency("z") is reg.latency("z")


def test_registry_report_contains_names():
    reg = StatsRegistry()
    reg.counter("hits").inc(3)
    reg.histogram("lat").add(5)
    report = reg.report()
    assert "hits: 3" in report
    assert "lat" in report
