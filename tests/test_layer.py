"""Unit tests for per-SoC transaction-layer configuration (claim C2/E6)."""

import pytest

from repro.core.layer import build_layer_config
from repro.core.packet import UserBit
from repro.core.services import NocService


class TestServiceDerivation:
    def test_ahb_only_needs_lock(self):
        cfg = build_layer_config(["AHB"], initiators=1, targets=1)
        assert cfg.services == {NocService.LEGACY_LOCK}

    def test_axi_and_ocp_share_the_exclusive_service(self):
        for protocols in (["AXI"], ["OCP"], ["AXI", "OCP"]):
            cfg = build_layer_config(protocols, initiators=2, targets=1)
            assert NocService.EXCLUSIVE_ACCESS in cfg.services

    def test_vci_needs_nothing(self):
        cfg = build_layer_config(["PVCI", "BVCI"], initiators=2, targets=1)
        assert cfg.services == set()

    def test_unknown_protocol_raises(self):
        with pytest.raises(KeyError):
            build_layer_config(["PCIE"], initiators=1, targets=1)

    def test_only_lock_touches_transport(self):
        cfg = build_layer_config(
            ["AHB", "AXI", "OCP"], initiators=3, targets=2
        )
        assert cfg.requires_transport_support() == [NocService.LEGACY_LOCK]


class TestPacketFormatDerivation:
    def test_exclusive_adds_exactly_one_bit(self):
        """The paper's headline: AXI/OCP exclusives cost one packet bit."""
        without = build_layer_config(["AHB"], initiators=4, targets=4)
        with_excl = build_layer_config(
            ["AHB", "AXI"], initiators=4, targets=4
        )
        delta = (
            with_excl.packet_format.header_bits()
            - without.packet_format.header_bits()
        )
        assert delta == 1
        assert with_excl.packet_format.has_user_bit("excl")

    def test_field_widths_scale_with_nodes(self):
        small = build_layer_config(["AXI"], initiators=2, targets=2)
        large = build_layer_config(["AXI"], initiators=30, targets=30)
        assert (
            large.packet_format.slv_addr_bits
            > small.packet_format.slv_addr_bits
        )

    def test_tag_bits_scale_with_outstanding(self):
        shallow = build_layer_config(
            ["AXI"], initiators=2, targets=2, max_outstanding=2
        )
        deep = build_layer_config(
            ["AXI"], initiators=2, targets=2, max_outstanding=32
        )
        assert deep.packet_format.tag_bits > shallow.packet_format.tag_bits

    def test_node_space_shared_by_both_fields(self):
        cfg = build_layer_config(["AXI"], initiators=5, targets=2)
        fmt = cfg.packet_format
        assert fmt.max_targets() >= 7
        assert fmt.max_initiators() >= 7


class TestFeatureLocality:
    def test_extra_user_bit_changes_format_only(self):
        """Adding a socket feature = one more user bit; services and
        sizing of every other field are untouched (claim C2)."""
        base = build_layer_config(["AXI", "OCP"], initiators=4, targets=4)
        extended = build_layer_config(
            ["AXI", "OCP"],
            initiators=4,
            targets=4,
            extra_user_bits=[UserBit("posted_ack", 1)],
        )
        assert extended.services == base.services
        fmt_base, fmt_ext = base.packet_format, extended.packet_format
        assert fmt_ext.header_bits() == fmt_base.header_bits() + 1
        assert fmt_ext.slv_addr_bits == fmt_base.slv_addr_bits
        assert fmt_ext.tag_bits == fmt_base.tag_bits

    def test_extra_service_activation(self):
        cfg = build_layer_config(
            ["AHB"],
            initiators=1,
            targets=1,
            extra_services=[NocService.URGENCY],
        )
        assert cfg.packet_format.has_user_bit("urgency")

    def test_describe_mentions_protocols(self):
        cfg = build_layer_config(["AHB", "AXI"], initiators=2, targets=1)
        assert "AHB" in cfg.describe() and "AXI" in cfg.describe()
