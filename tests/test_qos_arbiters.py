"""Unit tests for output-port arbitration policies."""

import pytest

from repro.transport.qos import (
    AgeArbiter,
    Candidate,
    PriorityArbiter,
    RoundRobinArbiter,
    make_arbiter,
)


def cand(port, priority=0, age=0, urgency=0):
    return Candidate(port=port, priority=priority, age=age, urgency=urgency)


class TestRoundRobin:
    def test_rotates_fairly(self):
        arb = RoundRobinArbiter()
        candidates = [cand("a"), cand("b"), cand("c")]
        winners = [arb.pick("out", candidates).port for __ in range(6)]
        assert winners == ["a", "b", "c", "a", "b", "c"]

    def test_least_recently_granted_across_subsets(self):
        """Rotation state is fair across *filtered* candidate subsets:
        after {a, b} -> a and {c} -> c, the next {a, b} contest must go
        to b (never granted), not back to a."""
        arb = RoundRobinArbiter()
        assert arb.pick("out", [cand("a"), cand("b")]).port == "a"
        assert arb.pick("out", [cand("c")]).port == "c"
        assert arb.pick("out", [cand("a"), cand("b")]).port == "b"
        assert arb.pick("out", [cand("a"), cand("b")]).port == "a"

    def test_per_output_state(self):
        arb = RoundRobinArbiter()
        assert arb.pick("o1", [cand("a"), cand("b")]).port == "a"
        assert arb.pick("o2", [cand("a"), cand("b")]).port == "a"

    def test_no_candidates_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter().pick("out", [])

    def test_no_starvation_under_alternating_subsets(self):
        """The old "first port after the last winner" pointer starved a
        middle port forever when contests alternated between subsets on
        either side of it ({a, b} then {c}: winners went a, c, a, c, …
        and b never won).  Least-recently-granted serves every
        persistent contender."""
        arb = RoundRobinArbiter()
        wins = {"a": 0, "b": 0, "c": 0}
        for round_no in range(300):
            subset = [cand("a"), cand("b")] if round_no % 2 == 0 else [cand("c")]
            wins[arb.pick("out", subset).port] += 1
        assert all(count > 0 for count in wins.values())
        assert wins["a"] == wins["b"]  # the {a, b} contests split evenly

    def test_priority_arbiter_fair_on_filtered_subsets(self):
        """PriorityArbiter delegates the tie-break to _round_robin on a
        *subset* (the priority winners); rotation must stay fair when
        that subset changes shape between contests."""
        arb = PriorityArbiter()
        wins = {"a": 0, "b": 0}
        for round_no in range(200):
            # c outranks everyone in odd rounds, so the tie-break subset
            # alternates between {a, b} and {c}.
            if round_no % 2 == 0:
                subset = [cand("a", 1), cand("b", 1)]
            else:
                subset = [cand("a", 1), cand("b", 1), cand("c", 5)]
            winner = arb.pick("out", subset).port
            if winner in wins:
                wins[winner] += 1
        assert wins["a"] == wins["b"] == 50


class TestPriority:
    def test_highest_priority_wins(self):
        arb = PriorityArbiter()
        winner = arb.pick("out", [cand("a", 0), cand("b", 2), cand("c", 1)])
        assert winner.port == "b"

    def test_ties_round_robin(self):
        arb = PriorityArbiter()
        candidates = [cand("a", 1), cand("b", 1)]
        winners = [arb.pick("out", candidates).port for __ in range(4)]
        assert winners == ["a", "b", "a", "b"]

    def test_urgency_boost_applies(self):
        arb = PriorityArbiter()
        winner = arb.pick("out", [cand("a", 1), cand("b", 0, urgency=2)])
        assert winner.port == "b"


class TestAge:
    def test_oldest_wins(self):
        arb = AgeArbiter()
        winner = arb.pick("out", [cand("a", age=3), cand("b", age=9)])
        assert winner.port == "b"

    def test_age_ignores_priority(self):
        arb = AgeArbiter()
        winner = arb.pick("out", [cand("a", 5, age=0), cand("b", 0, age=1)])
        assert winner.port == "b"


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_arbiter("priority"), PriorityArbiter)
        assert isinstance(make_arbiter("round-robin"), RoundRobinArbiter)
        assert isinstance(make_arbiter("age"), AgeArbiter)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_arbiter("random")
