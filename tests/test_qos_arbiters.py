"""Unit tests for output-port arbitration policies."""

import pytest

from repro.transport.qos import (
    AgeArbiter,
    Candidate,
    PriorityArbiter,
    RoundRobinArbiter,
    make_arbiter,
)


def cand(port, priority=0, age=0, urgency=0):
    return Candidate(port=port, priority=priority, age=age, urgency=urgency)


class TestRoundRobin:
    def test_rotates_fairly(self):
        arb = RoundRobinArbiter()
        candidates = [cand("a"), cand("b"), cand("c")]
        winners = [arb.pick("out", candidates).port for __ in range(6)]
        assert winners == ["a", "b", "c", "a", "b", "c"]

    def test_skips_absent_candidates(self):
        arb = RoundRobinArbiter()
        assert arb.pick("out", [cand("a"), cand("b")]).port == "a"
        assert arb.pick("out", [cand("c")]).port == "c"
        assert arb.pick("out", [cand("a"), cand("b")]).port == "a"

    def test_per_output_state(self):
        arb = RoundRobinArbiter()
        assert arb.pick("o1", [cand("a"), cand("b")]).port == "a"
        assert arb.pick("o2", [cand("a"), cand("b")]).port == "a"

    def test_no_candidates_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter().pick("out", [])


class TestPriority:
    def test_highest_priority_wins(self):
        arb = PriorityArbiter()
        winner = arb.pick("out", [cand("a", 0), cand("b", 2), cand("c", 1)])
        assert winner.port == "b"

    def test_ties_round_robin(self):
        arb = PriorityArbiter()
        candidates = [cand("a", 1), cand("b", 1)]
        winners = [arb.pick("out", candidates).port for __ in range(4)]
        assert winners == ["a", "b", "a", "b"]

    def test_urgency_boost_applies(self):
        arb = PriorityArbiter()
        winner = arb.pick("out", [cand("a", 1), cand("b", 0, urgency=2)])
        assert winner.port == "b"


class TestAge:
    def test_oldest_wins(self):
        arb = AgeArbiter()
        winner = arb.pick("out", [cand("a", age=3), cand("b", age=9)])
        assert winner.port == "b"

    def test_age_ignores_priority(self):
        arb = AgeArbiter()
        winner = arb.pick("out", [cand("a", 5, age=0), cand("b", 0, age=1)])
        assert winner.port == "b"


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_arbiter("priority"), PriorityArbiter)
        assert isinstance(make_arbiter("round-robin"), RoundRobinArbiter)
        assert isinstance(make_arbiter("age"), AgeArbiter)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_arbiter("random")
