"""Unit tests for the analytic gate-count model (claim C3 / E4)."""

import pytest

from repro.core.ordering import OrderingModel
from repro.core.packet import PacketFormat, UserBit
from repro.niu.gate_count import (
    GateReport,
    bridge_gate_count,
    niu_gate_count,
    state_entry_bits,
)
from repro.niu.tag_policy import TagPolicy


def policy(outstanding=4, multi_target=True, ordering=OrderingModel.ID_BASED):
    return TagPolicy(
        ordering=ordering,
        max_outstanding=outstanding,
        per_stream_outstanding=outstanding,
        multi_target=multi_target,
    )


FMT = PacketFormat()


class TestScalingShape:
    def test_gates_grow_monotonically_with_outstanding(self):
        totals = [
            niu_gate_count("AXI", policy(n), FMT).total for n in (1, 2, 4, 8, 16)
        ]
        assert totals == sorted(totals)
        assert totals[-1] > totals[0]

    def test_growth_is_linear_in_outstanding(self):
        """state table + CAM + reorder scale linearly: doubling outstanding
        roughly doubles the variable part."""
        g1 = niu_gate_count("AXI", policy(4), FMT)
        g2 = niu_gate_count("AXI", policy(8), FMT)
        fixed = g1.breakdown["frontend_fsm"] + g1.breakdown["channel_regs"] + g1.breakdown["packet_datapath"]
        var1 = g1.total - fixed
        var2 = g2.total - fixed
        assert var2 == pytest.approx(2 * var1, rel=0.01)

    def test_multi_target_surcharge(self):
        cheap = niu_gate_count("AXI", policy(8, multi_target=False), FMT)
        rich = niu_gate_count("AXI", policy(8, multi_target=True), FMT)
        assert rich.total > cheap.total
        assert "reorder_buffer" in rich.breakdown
        assert "reorder_buffer" not in cheap.breakdown

    def test_protocol_offsets(self):
        """Frontend complexity ordering: PVCI < AHB < OCP < AXI."""
        p = policy(4, ordering=OrderingModel.FULLY_ORDERED)
        pvci = niu_gate_count("PVCI", p, FMT).total
        ahb = niu_gate_count("AHB", p, FMT).total
        p_ocp = policy(4, ordering=OrderingModel.THREADED)
        ocp = niu_gate_count("OCP", p_ocp, FMT).total
        axi = niu_gate_count("AXI", policy(4), FMT).total
        assert pvci < ahb < ocp < axi

    def test_service_state_costs(self):
        base = niu_gate_count("AXI", policy(4), FMT)
        with_excl = niu_gate_count(
            "AXI", policy(4), FMT, exclusive_monitor_entries=8
        )
        with_lock = niu_gate_count("AHB", policy(4, ordering=OrderingModel.FULLY_ORDERED), FMT, lock_manager=True)
        assert with_excl.total > base.total
        assert "lock_manager" in with_lock.breakdown

    def test_wider_format_costs_more_datapath(self):
        wide = PacketFormat(user_bits=[UserBit("u", 8)])
        a = niu_gate_count("AXI", policy(4), FMT)
        b = niu_gate_count("AXI", policy(4), wide)
        assert b.breakdown["packet_datapath"] > a.breakdown["packet_datapath"]


class TestBridgeComparison:
    def test_bridge_carries_two_frontends(self):
        report = bridge_gate_count("AXI")
        assert "socket_side_fsm" in report.breakdown
        assert "bus_side_fsm" in report.breakdown

    def test_bridge_heavier_than_minimal_niu_frontend(self):
        """Claim C1: a bridge duplicates protocol machinery a NIU shares
        with the uniform packet datapath."""
        bridge = bridge_gate_count("AXI").total
        niu_minimal = niu_gate_count("AXI", policy(1, multi_target=False), FMT)
        frontend_only = (
            niu_minimal.breakdown["frontend_fsm"]
            + niu_minimal.breakdown["channel_regs"]
        )
        assert bridge > frontend_only


class TestPlumbing:
    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            niu_gate_count("PCIE", policy(1), FMT)

    def test_entry_bits_grow_with_payload(self):
        assert state_entry_bits(FMT, data_beats=4) > state_entry_bits(FMT)

    def test_report_describe(self):
        report = niu_gate_count("OCP", policy(2, ordering=OrderingModel.THREADED), FMT)
        text = report.describe()
        assert "OCP NIU" in text and "state_table" in text

    def test_report_accumulates(self):
        r = GateReport("X")
        r.add("a", 10)
        r.add("a", 5)
        assert r.total == 15 and r.breakdown["a"] == 15
