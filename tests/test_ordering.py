"""Unit + property tests for the three ordering models and the checker."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ordering import (
    OrderingChecker,
    OrderingModel,
    OrderingViolation,
    interleaving_allowed,
    ordering_for_protocol,
)


class TestStreamKeys:
    def test_fully_ordered_single_stream(self):
        m = OrderingModel.FULLY_ORDERED
        assert m.stream_key(0, 0) == m.stream_key(3, 7) == ()

    def test_threaded_streams_by_thread(self):
        m = OrderingModel.THREADED
        assert m.stream_key(1, 5) == m.stream_key(1, 9)
        assert m.stream_key(1, 5) != m.stream_key(2, 5)

    def test_id_based_streams_by_channel_and_id(self):
        m = OrderingModel.ID_BASED
        assert m.stream_key(0, 5) == m.stream_key(0, 5)
        assert m.stream_key(0, 5) != m.stream_key(1, 5)  # read vs write
        assert m.stream_key(0, 5) != m.stream_key(0, 6)

    def test_must_order_matches_stream_equality(self):
        m = OrderingModel.THREADED
        assert m.must_order((1, 0), (1, 9))
        assert not m.must_order((1, 0), (2, 0))
        assert interleaving_allowed(m, (1, 0), (2, 0))


class TestProtocolMap:
    def test_known_protocols(self):
        assert ordering_for_protocol("AHB") is OrderingModel.FULLY_ORDERED
        assert ordering_for_protocol("ocp") is OrderingModel.THREADED
        assert ordering_for_protocol("AXI") is OrderingModel.ID_BASED
        assert ordering_for_protocol("AVCI") is OrderingModel.ID_BASED

    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            ordering_for_protocol("PCIe")


class TestChecker:
    def test_in_order_completion_passes(self):
        checker = OrderingChecker(model=OrderingModel.FULLY_ORDERED)
        for i in range(5):
            checker.issue(i)
        for i in range(5):
            checker.complete(i)
        assert checker.all_complete()

    def test_out_of_order_same_stream_violates(self):
        checker = OrderingChecker(model=OrderingModel.FULLY_ORDERED)
        checker.issue(1)
        checker.issue(2)
        with pytest.raises(OrderingViolation):
            checker.complete(2)

    def test_out_of_order_across_threads_allowed(self):
        checker = OrderingChecker(model=OrderingModel.THREADED)
        checker.issue(1, thread=0)
        checker.issue(2, thread=1)
        checker.complete(2)
        checker.complete(1)
        assert checker.all_complete()

    def test_out_of_order_across_ids_allowed(self):
        checker = OrderingChecker(model=OrderingModel.ID_BASED)
        checker.issue(1, txn_tag=0)
        checker.issue(2, txn_tag=1)
        checker.complete(2)
        checker.complete(1)

    def test_non_strict_collects(self):
        checker = OrderingChecker(
            model=OrderingModel.FULLY_ORDERED, strict=False
        )
        checker.issue(1)
        checker.issue(2)
        checker.complete(2)
        assert len(checker.violations) == 1

    def test_double_issue_rejected(self):
        checker = OrderingChecker(model=OrderingModel.FULLY_ORDERED)
        checker.issue(1)
        with pytest.raises(KeyError):
            checker.issue(1)

    def test_unknown_completion_rejected(self):
        checker = OrderingChecker(model=OrderingModel.FULLY_ORDERED)
        with pytest.raises(KeyError):
            checker.complete(9)

    def test_double_completion_rejected(self):
        checker = OrderingChecker(model=OrderingModel.FULLY_ORDERED)
        checker.issue(1)
        checker.complete(1)
        with pytest.raises(KeyError):
            checker.complete(1)

    def test_counters(self):
        checker = OrderingChecker(model=OrderingModel.THREADED)
        checker.issue(1, thread=0)
        checker.issue(2, thread=1)
        checker.complete(1)
        assert checker.issued == 2
        assert checker.completed_count == 1
        assert checker.outstanding == 1

    def test_reset(self):
        checker = OrderingChecker(model=OrderingModel.THREADED)
        checker.issue(1)
        checker.reset()
        assert checker.issued == 0


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # thread
            st.integers(min_value=0, max_value=3),  # tag
        ),
        min_size=1,
        max_size=30,
    ),
    st.randoms(use_true_random=False),
)
def test_property_per_stream_order_never_violates(txns, rng):
    """Completing in any order that preserves per-stream issue order is
    accepted by every model."""
    for model in OrderingModel:
        checker = OrderingChecker(model=model)
        for i, (thread, tag) in enumerate(txns):
            checker.issue(i, thread=thread, txn_tag=tag)
        # Build a completion order: shuffle streams against each other but
        # keep each stream internally ordered.
        streams = {}
        for i, (thread, tag) in enumerate(txns):
            streams.setdefault(model.stream_key(thread, tag), []).append(i)
        pending = {k: list(v) for k, v in streams.items()}
        while pending:
            key = rng.choice(sorted(pending))
            checker.complete(pending[key].pop(0))
            if not pending[key]:
                del pending[key]
        assert checker.all_complete()


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),
            st.integers(min_value=0, max_value=1),
        ),
        min_size=2,
        max_size=20,
    )
)
def test_property_reversed_completion_flags_every_stream_inversion(txns):
    """Completing in exact reverse order must violate once per stream
    that holds more than one transaction."""
    model = OrderingModel.THREADED
    checker = OrderingChecker(model=model, strict=False)
    for i, (thread, tag) in enumerate(txns):
        checker.issue(i, thread=thread, txn_tag=tag)
    for i in reversed(range(len(txns))):
        checker.complete(i)
    streams = {}
    for thread, tag in txns:
        key = model.stream_key(thread, tag)
        streams[key] = streams.get(key, 0) + 1
    expected_bad_streams = sum(1 for n in streams.values() if n > 1)
    if expected_bad_streams:
        assert checker.violations
    else:
        assert not checker.violations
