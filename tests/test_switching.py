"""Unit tests for switching-mode departure rules."""

from repro.transport.switching import SwitchingMode


class TestWormhole:
    def test_departs_with_one_flit_and_one_slot(self):
        m = SwitchingMode.WORMHOLE
        assert m.head_may_depart(1, 10, 1)

    def test_blocked_without_downstream_space(self):
        assert not SwitchingMode.WORMHOLE.head_may_depart(10, 10, 0)

    def test_min_buffer_is_one(self):
        assert SwitchingMode.WORMHOLE.min_buffer_for(16) == 1


class TestStoreAndForward:
    def test_needs_whole_packet_buffered(self):
        m = SwitchingMode.STORE_AND_FORWARD
        assert not m.head_may_depart(5, 10, 10)
        assert m.head_may_depart(10, 10, 1)

    def test_min_buffer_is_packet(self):
        assert SwitchingMode.STORE_AND_FORWARD.min_buffer_for(16) == 16


class TestVirtualCutThrough:
    def test_needs_whole_packet_downstream(self):
        m = SwitchingMode.VIRTUAL_CUT_THROUGH
        assert not m.head_may_depart(1, 10, 9)
        assert m.head_may_depart(1, 10, 10)

    def test_min_buffer_is_packet(self):
        assert SwitchingMode.VIRTUAL_CUT_THROUGH.min_buffer_for(8) == 8


def test_str_is_name():
    assert str(SwitchingMode.WORMHOLE) == "WORMHOLE"
