"""Unit tests for the NoC packet format."""

import pytest

from repro.core.packet import NocPacket, PacketFormat, PacketKind, UserBit
from repro.core.transaction import Opcode, ResponseStatus


def make_request(**kwargs):
    defaults = dict(
        kind=PacketKind.REQUEST,
        opcode=Opcode.LOAD,
        slv_addr=3,
        mst_addr=1,
        tag=2,
        beats=4,
    )
    defaults.update(kwargs)
    return NocPacket(**defaults)


class TestPacketFormat:
    def test_base_header_bits(self):
        fmt = PacketFormat()
        assert fmt.header_bits() == 67  # documented base width

    def test_user_bits_extend_header(self):
        fmt = PacketFormat().with_user_bit(UserBit("excl", 1))
        assert fmt.header_bits() == 68

    def test_with_user_bit_idempotent(self):
        fmt = PacketFormat().with_user_bit(UserBit("excl"))
        fmt2 = fmt.with_user_bit(UserBit("excl"))
        assert fmt2 is fmt

    def test_duplicate_user_bits_rejected(self):
        with pytest.raises(ValueError):
            PacketFormat(user_bits=[UserBit("a"), UserBit("a")])

    def test_field_capacity(self):
        fmt = PacketFormat(slv_addr_bits=3, mst_addr_bits=2, tag_bits=4)
        assert fmt.max_targets() == 8
        assert fmt.max_initiators() == 4
        assert fmt.max_tags() == 16

    def test_user_bit_lookup(self):
        fmt = PacketFormat(user_bits=[UserBit("excl")])
        assert fmt.has_user_bit("excl")
        assert fmt.user_bit("excl").width == 1
        with pytest.raises(KeyError):
            fmt.user_bit("nope")

    def test_bad_user_bit_width(self):
        with pytest.raises(ValueError):
            UserBit("x", width=0)


class TestRoutingView:
    def test_request_routes_to_slave(self):
        p = make_request()
        assert p.route_destination == 3
        assert p.route_source == 1

    def test_response_routes_to_master(self):
        p = make_request().make_response(payload=[0] * 4)
        assert p.route_destination == 1
        assert p.route_source == 3

    def test_lock_marker_visible_to_transport(self):
        assert make_request(opcode=Opcode.LOCK).is_lock_related
        assert make_request(opcode=Opcode.READEX).is_lock_related
        assert not make_request(opcode=Opcode.LOAD).is_lock_related


class TestPayloadSizing:
    def test_read_request_carries_no_payload(self):
        assert make_request(opcode=Opcode.LOAD, beats=8).payload_beats == 0

    def test_write_request_carries_payload(self):
        p = make_request(opcode=Opcode.STORE, beats=8, payload=[0] * 8)
        assert p.payload_beats == 8
        assert p.payload_bits() == 8 * 4 * 8

    def test_read_response_carries_payload(self):
        p = make_request(beats=4).make_response(payload=[0] * 4)
        assert p.payload_beats == 4

    def test_write_response_carries_none(self):
        req = make_request(opcode=Opcode.STORE, beats=4, payload=[0] * 4)
        assert req.make_response().payload_beats == 0


class TestValidation:
    def test_fields_must_fit_format(self):
        fmt = PacketFormat(slv_addr_bits=2, mst_addr_bits=2, tag_bits=2)
        make_request(slv_addr=3, mst_addr=3, tag=3).validate_against(fmt)
        with pytest.raises(ValueError):
            make_request(slv_addr=4).validate_against(fmt)
        with pytest.raises(ValueError):
            make_request(tag=4).validate_against(fmt)

    def test_unknown_user_field_rejected(self):
        fmt = PacketFormat()
        with pytest.raises(KeyError):
            make_request(user={"excl": 1}).validate_against(fmt)

    def test_user_field_width_enforced(self):
        fmt = PacketFormat(user_bits=[UserBit("excl", 1)])
        make_request(user={"excl": 1}).validate_against(fmt)
        with pytest.raises(ValueError):
            make_request(user={"excl": 2}).validate_against(fmt)

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            make_request(slv_addr=-1)
        with pytest.raises(ValueError):
            make_request(tag=-1)


class TestMakeResponse:
    def test_response_echoes_identity(self):
        req = make_request(tag=5, txn_id=42)
        rsp = req.make_response(payload=[1, 2, 3, 4])
        assert rsp.kind is PacketKind.RESPONSE
        assert (rsp.slv_addr, rsp.mst_addr, rsp.tag) == (3, 1, 5)
        assert rsp.txn_id == 42

    def test_cannot_respond_to_response(self):
        rsp = make_request().make_response(payload=[0] * 4)
        with pytest.raises(ValueError):
            rsp.make_response()

    def test_status_carried(self):
        rsp = make_request().make_response(status=ResponseStatus.DECERR)
        assert rsp.status is ResponseStatus.DECERR
