"""Checkpoint/restore and fork-sweep contracts.

The uniform state-capture protocol is only worth having if a restored
run is *byte-identical* to an uninterrupted one — same trace stream,
same queue counters, same histograms, same memory images — at every
layer and from every adversarial snapshot point: mid-wormhole, inside a
degraded fault epoch with the watchdog armed, mid-CDC-crossing, and on
a fully parked timing wheel.  These tests pin that, across all three
router cores and both kernels, and pin the fork sweep's warm == cold
equivalence on top.
"""

import functools

import pytest

import test_kernel_determinism as tkd
from repro.ip.traffic import PoissonTraffic, TrafficSeedError
from repro.sim.fingerprint import fingerprint_soc
from repro.sim.snapshot import (
    SerialCounter,
    SnapshotMismatchError,
    SnapshotVersionError,
)
from repro.soc import FaultSchedule
from repro.sweep import Checkpoint, CheckpointFormatError, Override, fork
from repro.sweep.fork import run_cold

CORES = ("object", "array", "batched")

# Reuse the determinism suite's autouse id-counter isolation.
_fresh_global_ids = tkd._fresh_global_ids


def _roundtrip(build, total, at, strict=False):
    """Uninterrupted run vs checkpoint-at-``at`` + restore + continue."""
    soc = build(strict=strict)
    soc.run(total)
    reference = fingerprint_soc(soc)

    donor = build(strict=strict)
    donor.run(at)
    checkpoint = Checkpoint.capture(donor)
    assert checkpoint.cycle == at
    donor.run(97)  # mutate the donor afterwards: the checkpoint is detached

    resumed = build(strict=strict)
    checkpoint.restore_into(resumed)
    assert resumed.sim.cycle == at
    resumed.run(total - at)
    restored = fingerprint_soc(resumed)
    for key in reference:
        assert restored[key] == reference[key], f"{key} diverged"
    return checkpoint


@pytest.mark.parametrize("core", CORES)
@pytest.mark.parametrize("strict", [False, True], ids=["activity", "strict"])
def test_mid_wormhole_roundtrip(core, strict, monkeypatch):
    """Cycle 850 of the lock workload: wormholes in flight, router LOCK
    ownership held, arbiters mid-rotation."""
    monkeypatch.setenv("REPRO_ROUTER_CORE", core)
    _roundtrip(tkd.build_lock_soc, 3000, 850, strict)


@pytest.mark.parametrize("core", CORES)
@pytest.mark.parametrize("strict", [False, True], ids=["activity", "strict"])
def test_mid_fault_epoch_roundtrip(core, strict, monkeypatch):
    """Cycle 500 sits inside the [400, 900) degraded window: degraded
    route tables pushed, dead ports masked, partition watchdog armed."""
    monkeypatch.setenv("REPRO_ROUTER_CORE", core)
    _roundtrip(tkd.build_faulted_adaptive_gals_soc, 5000, 500, strict)


@pytest.mark.parametrize("core", CORES)
def test_mid_cdc_crossing_roundtrip(core, monkeypatch):
    """Cycle 777 of the GALS build: phits mid-shift on serialized links,
    entries maturing inside CDC synchronizers, three clock domains."""
    monkeypatch.setenv("REPRO_ROUTER_CORE", core)
    _roundtrip(tkd.build_gals_soc, 5000, 777, False)


def test_parked_wheel_roundtrip():
    """Checkpoint a fully drained SoC (every component parked or retired,
    wheel possibly holding stale entries): the restored system must stay
    quiescent and byte-identical."""
    soc = tkd.build_mixed_soc(strict=False)
    soc.run_to_completion()
    soc.run(16)
    assert soc.sim.active_count == 0
    checkpoint = Checkpoint.capture(soc)
    reference = fingerprint_soc(soc)

    resumed = tkd.build_mixed_soc(strict=False)
    checkpoint.restore_into(resumed)
    resumed.run(64)
    assert resumed.sim.active_count == 0
    restored = fingerprint_soc(resumed)
    reference["cycle"] += 64  # only time advanced; nothing else may move
    for key in reference:
        assert restored[key] == reference[key], f"{key} diverged"


# --------------------------------------------------------------------- #
# serialization
# --------------------------------------------------------------------- #
def test_checkpoint_bytes_and_file_roundtrip(tmp_path):
    soc = tkd.build_mixed_soc(strict=False)
    soc.run(1000)
    checkpoint = Checkpoint.capture(soc)

    clone = Checkpoint.from_bytes(checkpoint.to_bytes())
    assert clone.cycle == 1000

    path = tmp_path / "run.ckpt"
    checkpoint.save(str(path))
    loaded = Checkpoint.load(str(path))
    resumed = tkd.build_mixed_soc(strict=False)
    loaded.restore_into(resumed)
    assert resumed.sim.cycle == 1000

    soc.run(1500)
    resumed.run(1500)
    ref = fingerprint_soc(soc)
    got = fingerprint_soc(resumed)
    for key in ref:
        assert got[key] == ref[key], f"{key} diverged"


def test_checkpoint_bad_bytes():
    with pytest.raises(CheckpointFormatError):
        Checkpoint.from_bytes(b"not a checkpoint at all")
    soc = tkd.build_mixed_soc(strict=False)
    soc.run(10)
    data = bytearray(Checkpoint.capture(soc).to_bytes())
    data[len(b"repro-ckpt")] = 0xFF  # corrupt the format version byte
    with pytest.raises(CheckpointFormatError):
        Checkpoint.from_bytes(bytes(data))


# --------------------------------------------------------------------- #
# named errors
# --------------------------------------------------------------------- #
def test_snapshot_version_mismatch():
    soc = tkd.build_mixed_soc(strict=False)
    soc.run(10)
    state = soc.snapshot()
    state["__v__"] = 999
    fresh = tkd.build_mixed_soc(strict=False)
    with pytest.raises(SnapshotVersionError):
        fresh.restore(state)


def test_snapshot_envelope_version_mismatch():
    counter = SerialCounter()
    next(counter)
    envelope = counter.snapshot()
    envelope["__v__"] = 999
    with pytest.raises(SnapshotVersionError):
        SerialCounter().restore(envelope)


def test_restore_into_incongruent_build():
    soc = tkd.build_mixed_soc(strict=False)
    soc.run(10)
    checkpoint = Checkpoint.capture(soc)
    other = tkd.build_lock_soc(strict=False)
    with pytest.raises(SnapshotMismatchError):
        checkpoint.restore_into(other)


def test_traffic_requires_explicit_seed():
    with pytest.raises(TrafficSeedError):
        PoissonTraffic("bad", None, count=4, address_ranges=[(0, 0x100)])


# --------------------------------------------------------------------- #
# fork sweeps
# --------------------------------------------------------------------- #
def _mixed_builder():
    return tkd.build_mixed_soc(strict=False)


def _set_rate(rate, soc):
    soc.masters["gpu_axi"].traffic.rate = rate


def _faulted_builder():
    return tkd.build_faulted_adaptive_gals_soc(strict=False)


def _extend_faults(soc):
    events = FaultSchedule().link_down(2000, (1, 0), (1, 1)).events
    for plane in soc.fabric._planes:
        plane.fault_injector.extend_schedule(events)


RATES = (0.05, 0.2, 0.5, 0.9)
RATE_OVERRIDES = [
    Override(name=f"rate={r}", apply=functools.partial(_set_rate, r))
    for r in RATES
]


def test_fork_matches_cold_runs():
    """The acceptance bar: >= 4 overrides forked from one warm prefix,
    each byte-equal to a cold run applying the same override at the same
    cycle."""
    donor = _mixed_builder()
    donor.run(1500)
    checkpoint = Checkpoint.capture(donor)
    report = fork(
        checkpoint, RATE_OVERRIDES, builder=_mixed_builder, cycles=2500
    )
    assert report["fork_cycle"] == 1500
    assert list(report["configs"]) == [o.name for o in RATE_OVERRIDES]
    for override in RATE_OVERRIDES:
        entry = report["configs"][override.name]
        assert entry["mode"] == "fork"
        cold = run_cold(_mixed_builder, override, 1500, 2500)
        assert entry["metrics"] == cold, f"{override.name}: fork != cold"


def test_fork_pool_matches_serial():
    donor = _mixed_builder()
    donor.run(1500)
    checkpoint = Checkpoint.capture(donor)
    serial = fork(
        checkpoint, RATE_OVERRIDES, builder=_mixed_builder, cycles=1500,
        processes=0,
    )
    pooled = fork(
        checkpoint, RATE_OVERRIDES, builder=_mixed_builder, cycles=1500,
        processes=2,
    )
    assert pooled == serial


def test_fork_fault_schedule_override():
    """A what-if fault future imposed on a restored checkpoint equals a
    cold run extending the schedule at the same cycle."""
    donor = _faulted_builder()
    donor.run(1000)
    checkpoint = Checkpoint.capture(donor)
    override = Override(name="extra-fault", apply=_extend_faults)
    report = fork(
        checkpoint, [override], builder=_faulted_builder, cycles=2000
    )
    cold = run_cold(_faulted_builder, override, 1000, 2000)
    assert report["configs"]["extra-fault"]["metrics"] == cold


def test_fork_structural_override_runs_cold():
    def _vc_builder():
        return tkd.build_vc_gals_soc(strict=False)

    donor = _mixed_builder()
    donor.run(500)
    checkpoint = Checkpoint.capture(donor)
    report = fork(
        checkpoint,
        [
            Override(name="warm", apply=functools.partial(_set_rate, 0.3)),
            Override(name="vc-fabric", build=_vc_builder),
        ],
        builder=_mixed_builder,
        cycles=1000,
    )
    assert report["configs"]["warm"]["mode"] == "fork"
    assert report["configs"]["vc-fabric"]["mode"] == "cold"
    assert report["configs"]["vc-fabric"]["metrics"]["cycle"] == 1500


def test_override_validation():
    with pytest.raises(ValueError):
        Override(name="neither")
    with pytest.raises(ValueError):
        Override(name="both", apply=_extend_faults, build=_mixed_builder)
    donor = _mixed_builder()
    donor.run(10)
    checkpoint = Checkpoint.capture(donor)
    with pytest.raises(ValueError):
        fork(checkpoint, [], builder=_mixed_builder, cycles=10)
    dup = [RATE_OVERRIDES[0], RATE_OVERRIDES[0]]
    with pytest.raises(ValueError):
        fork(checkpoint, dup, builder=_mixed_builder, cycles=10)
