"""Claim C5 as a test: transport/physical knobs never change
transaction-level results (paper §1, benchmark E5).

The *same* seeded workload runs under every switching mode, several flit
widths and both routing schemes; the transaction-level fingerprint
(completed counts, final memory images, per-master completion sets) must
be byte-identical, while transport metrics are free to differ.
"""

import pytest

from repro.ip.masters import random_workload
from repro.soc import InitiatorSpec, SocBuilder, TargetSpec
from repro.transport.switching import SwitchingMode


def build(mode=SwitchingMode.WORMHOLE, flit_bits=128, routing="table",
          arbiter="priority", buffer_capacity=16):
    ranges = [(0, 0x1000), (0x1000, 0x1000)]
    builder = SocBuilder(
        mode=mode,
        flit_payload_bits=flit_bits,
        routing=routing,
        arbiter=arbiter,
        buffer_capacity=buffer_capacity,
    )
    builder.add_initiator(
        InitiatorSpec(
            "axi0", "AXI",
            random_workload("axi0", ranges, count=30, seed=11, tags=4,
                            burst_beats=(1, 4, 8)),
            protocol_kwargs={"id_count": 4},
        )
    )
    builder.add_initiator(
        InitiatorSpec(
            "ocp0", "OCP",
            random_workload("ocp0", ranges, count=30, seed=12, threads=2),
            protocol_kwargs={"threads": 2},
        )
    )
    builder.add_target(TargetSpec("mem0", size=0x1000))
    builder.add_target(TargetSpec("mem1", size=0x1000))
    return builder.build()


def transaction_fingerprint(soc):
    """Everything an IP block can observe at the transaction level."""
    completions = {}
    for name, master in soc.masters.items():
        completions[name] = (
            master.completed,
            master.errors,
            master.exokay,
            master.excl_failures,
        )
    return completions, soc.memory_image()


class TestSwitchingModeIndependence:
    def test_all_modes_same_transaction_results(self):
        results = {}
        transport_metrics = {}
        for mode in SwitchingMode:
            soc = build(mode=mode)
            soc.run_to_completion(max_cycles=200_000)
            results[mode] = transaction_fingerprint(soc)
            transport_metrics[mode] = soc.fabric.total_flits_forwarded()
        fingerprints = list(results.values())
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]
        assert all(v > 0 for v in transport_metrics.values())

    def test_modes_differ_at_transport_level(self):
        """Same transactions, different cycle counts — layering means the
        difference stays below the transaction interface."""
        cycles = {}
        for mode in (SwitchingMode.WORMHOLE, SwitchingMode.STORE_AND_FORWARD):
            soc = build(mode=mode)
            cycles[mode] = soc.run_to_completion(max_cycles=200_000)
        assert cycles[SwitchingMode.STORE_AND_FORWARD] > cycles[
            SwitchingMode.WORMHOLE
        ]


class TestPhysicalWidthIndependence:
    @pytest.mark.parametrize("flit_bits", [96, 128, 256])
    def test_width_changes_nothing_at_transaction_level(self, flit_bits):
        reference = build(flit_bits=128)
        reference.run_to_completion(max_cycles=200_000)
        candidate = build(flit_bits=flit_bits)
        candidate.run_to_completion(max_cycles=200_000)
        assert transaction_fingerprint(candidate) == transaction_fingerprint(
            reference
        )


class TestRoutingIndependence:
    def test_xy_vs_table_same_results(self):
        a = build(routing="table")
        a.run_to_completion(max_cycles=200_000)
        b = build(routing="xy")
        b.run_to_completion(max_cycles=200_000)
        assert transaction_fingerprint(a) == transaction_fingerprint(b)


class TestArbiterIndependence:
    def test_arbiter_changes_nothing_at_transaction_level(self):
        a = build(arbiter="priority")
        a.run_to_completion(max_cycles=200_000)
        b = build(arbiter="round-robin")
        b.run_to_completion(max_cycles=200_000)
        assert transaction_fingerprint(a) == transaction_fingerprint(b)
